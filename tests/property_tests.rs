//! Property-based tests over the core data structures and invariants.

use bera::core::bitflip::{flip_bit_f32, flip_bit_f64, flip_bit_u32};
use bera::core::controller::{Controller, Limits, PiGains};
use bera::core::{PiController, ProtectedPiController};
use bera::goofi::classify::{Classifier, Severity};
use bera::goofi::experiment::FaultModel;
use bera::stats::proportion::{Confidence, Proportion};
use bera::stats::summary::Summary;
use bera::tcpu::asm::assemble;
use bera::tcpu::isa::{self, Opcode};
use bera::tcpu::machine::Machine;
use bera::tcpu::scan;
use proptest::prelude::*;

/// Every fault-model variant, with representative parameter ranges.
fn any_fault_model() -> impl Strategy<Value = FaultModel> {
    prop_oneof![
        Just(FaultModel::SingleBit),
        Just(FaultModel::AdjacentDoubleBit),
        (1usize..1000).prop_map(|reassert_iterations| FaultModel::Intermittent {
            reassert_iterations,
        }),
        any::<bool>().prop_map(|value| FaultModel::StuckAt { value }),
        (1usize..100).prop_map(|width| FaultModel::Burst { width }),
    ]
}

proptest! {
    #[test]
    fn fault_model_cluster_is_in_range_and_deduplicated(
        model in any_fault_model(),
        index in 0usize..1_000_000,
        n in 1usize..5000,
    ) {
        let cluster = model.cluster(index, n);
        prop_assert!(!cluster.is_empty(), "{model}: cluster must be non-empty");
        prop_assert!(
            cluster.iter().all(|&b| b < n),
            "{model}: cluster {cluster:?} escapes population of {n}"
        );
        let mut sorted = cluster.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(
            sorted.len(),
            cluster.len(),
            "{}: cluster {:?} holds duplicates", model, cluster
        );
        // The sampled index itself is always perturbed.
        prop_assert!(cluster.contains(&(index % n)));
    }

    #[test]
    fn fault_model_single_location_models_perturb_exactly_the_index(
        index in 0usize..1_000_000,
        n in 1usize..5000,
        reassert in 1usize..1000,
        value in any::<bool>(),
    ) {
        for model in [
            FaultModel::SingleBit,
            FaultModel::Intermittent { reassert_iterations: reassert },
            FaultModel::StuckAt { value },
        ] {
            prop_assert_eq!(model.cluster(index, n), vec![index % n]);
        }
    }

    #[test]
    fn fault_model_double_bit_wraps_at_the_last_bit(n in 2usize..5000) {
        // The adjacent pair sampled at the last index wraps to bit 0
        // rather than escaping the population.
        let cluster = FaultModel::AdjacentDoubleBit.cluster(n - 1, n);
        prop_assert_eq!(cluster, vec![n - 1, 0]);
    }

    #[test]
    fn fault_model_burst_width_is_clamped(
        width in 1usize..200,
        index in 0usize..1_000_000,
        n in 1usize..100,
    ) {
        let cluster = FaultModel::Burst { width }.cluster(index, n);
        prop_assert!(
            (1..=width.min(n)).contains(&cluster.len()),
            "burst of width {width} produced {} bits over population {n}",
            cluster.len()
        );
        prop_assert!(cluster.iter().all(|&b| b < n));
    }

    #[test]
    fn fault_model_locations_stay_inside_the_scan_catalog(
        model in any_fault_model(),
        index in 0usize..1_000_000,
    ) {
        let catalog_len = scan::catalog().len();
        let locations = model.locations(index % catalog_len);
        prop_assert!(!locations.is_empty());
        prop_assert!(locations.iter().all(|&i| i < catalog_len));
    }

    #[test]
    fn fault_model_spelling_roundtrips(model in any_fault_model()) {
        let spelled = model.to_string();
        let parsed: FaultModel = spelled.parse().expect("display form parses");
        prop_assert_eq!(parsed, model);
    }

    #[test]
    fn bitflip_involutive_f64(v in any::<f64>(), bit in 0u32..64) {
        let flipped = flip_bit_f64(v, bit);
        prop_assert_eq!(flip_bit_f64(flipped, bit).to_bits(), v.to_bits());
        prop_assert_ne!(flipped.to_bits(), v.to_bits());
    }

    #[test]
    fn bitflip_involutive_f32(v in any::<f32>(), bit in 0u32..32) {
        let flipped = flip_bit_f32(v, bit);
        prop_assert_eq!(flip_bit_f32(flipped, bit).to_bits(), v.to_bits());
    }

    #[test]
    fn bitflip_involutive_u32(v in any::<u32>(), bit in 0u32..32) {
        prop_assert_eq!(flip_bit_u32(flip_bit_u32(v, bit), bit), v);
    }

    #[test]
    fn limits_clamp_always_in_range(lo in -1.0e6f64..0.0, hi in 0.0f64..1.0e6, v in any::<f64>()) {
        let l = Limits::new(lo, hi);
        let c = l.clamp(v);
        prop_assert!(c >= lo && c <= hi);
        prop_assert!(l.contains(c));
    }

    #[test]
    fn pi_output_always_within_limits(
        x0 in -1.0e15f64..1.0e15,
        r in -1.0e4f64..1.0e4,
        y in -1.0e4f64..1.0e4,
    ) {
        let mut c = PiController::paper();
        c.set_x(x0);
        let u = c.step(r, y);
        prop_assert!((0.0..=70.0).contains(&u), "u = {u}");
    }

    #[test]
    fn protected_pi_state_stays_recoverable(
        corruption in any::<f64>(),
        steps in 1usize..50,
    ) {
        let mut c = ProtectedPiController::paper();
        for _ in 0..20 {
            c.step(2000.0, 1900.0);
        }
        c.set_state(0, corruption);
        for _ in 0..steps {
            let u = c.step(2000.0, 1900.0);
            prop_assert!((0.0..=70.0).contains(&u));
        }
        // After at least one iteration the live state is back in range
        // (either it was plausible or recovery replaced it).
        let x = c.x();
        prop_assert!((0.0..=70.0).contains(&x) || x.is_finite());
    }

    #[test]
    fn anti_windup_never_grows_x_outward(
        x0 in 0.0f64..70.0,
        e in 0.0f64..1.0e4,
    ) {
        // With a large positive error and output saturated high, x must not
        // integrate upwards.
        let mut c = PiController::new(PiGains::paper(), Limits::throttle());
        c.set_x(x0);
        let before = c.x();
        c.step(e, 0.0);
        let after = c.x();
        let u = e * PiGains::paper().kp + before;
        if u > 70.0 {
            prop_assert!(after <= before, "windup: {before} -> {after}");
        }
    }

    #[test]
    fn proportion_ci_contains_estimate(successes in 0u64..1000, extra in 0u64..1000) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let p = Proportion::new(successes, trials);
        let ci = p.normal_ci95();
        prop_assert!(ci.lo <= p.estimate() && p.estimate() <= ci.hi);
        let w = p.wilson_ci(Confidence::P95);
        prop_assert!(w.lo >= 0.0 && w.hi <= 1.0);
    }

    #[test]
    fn summary_merge_matches_sequential(xs in prop::collection::vec(-1.0e6f64..1.0e6, 1..100), split in 0usize..100) {
        let split = split.min(xs.len());
        let all: Summary = xs.iter().copied().collect();
        let mut a: Summary = xs[..split].iter().copied().collect();
        let b: Summary = xs[split..].iter().copied().collect();
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
    }

    #[test]
    fn isa_encode_decode_roundtrip_r(op_bits in 0x09u32..0x18, rd in 0u8..16, ra in 0u8..16, rb in 0u8..16) {
        let op = Opcode::from_bits(op_bits).unwrap();
        let word = isa::encode_r(op, rd, ra, rb);
        let d = isa::decode(word).unwrap();
        prop_assert_eq!(d.op, op);
        prop_assert_eq!(d.rd, rd);
        prop_assert_eq!(d.ra, ra);
        prop_assert_eq!(d.rb, rb);
    }

    #[test]
    fn isa_decode_never_panics(word in any::<u32>()) {
        let _ = isa::decode(word);
        let _ = isa::disassemble(word);
    }

    #[test]
    fn scan_flip_involutive_on_random_locations(indices in prop::collection::vec(0usize..2400, 1..20)) {
        let catalog = scan::catalog();
        let mut m = Machine::new();
        let before = m.scan_snapshot();
        for &i in &indices {
            m.scan_flip(catalog[i % catalog.len()]);
        }
        for &i in indices.iter().rev() {
            m.scan_flip(catalog[i % catalog.len()]);
        }
        prop_assert_eq!(m.scan_snapshot().diff_count(&before), 0);
    }

    #[test]
    fn classifier_identical_sequences_are_never_failures(us in prop::collection::vec(0.0f64..70.0, 10..100)) {
        let c = Classifier::paper();
        let bits: Vec<u32> = us.iter().map(|&u| (u as f32).to_bits()).collect();
        prop_assert_eq!(c.classify_bits(&bits, &bits.clone()), None);
    }

    #[test]
    fn classifier_sub_threshold_is_insignificant(
        us in prop::collection::vec(1.0f64..69.0, 10..100),
        noise in prop::collection::vec(-0.09f64..0.09, 100),
    ) {
        let c = Classifier::paper();
        let observed: Vec<f64> = us
            .iter()
            .zip(noise.iter().cycle())
            .map(|(u, n)| u + n)
            .collect();
        prop_assume!(us.iter().zip(observed.iter()).any(|(a, b)| a != b));
        prop_assert_eq!(c.classify_values(&us, &observed), Severity::Insignificant);
    }

    #[test]
    fn assembler_rejects_garbage_without_panicking(src in "[a-z0-9 ,\\[\\]+._:-]{0,120}") {
        let _ = assemble(&src);
    }

    #[test]
    fn machine_never_panics_on_random_single_flips(
        loc in 0usize..2400,
        steps in 1u64..2000,
    ) {
        let program = assemble(
            ".text\nstart:\n li r1, 0x10000\n ld r2, [r1+0]\n st r2, [r1+4]\n yield\nloop:\n jmp start\n",
        ).unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        let catalog = scan::catalog();
        m.run(steps % 37);
        m.scan_flip(catalog[loc % catalog.len()]);
        // Whatever happens — yield, trap, budget — it must not panic.
        let _ = m.run(steps);
    }
}
