//! The lockstep batch-engine equivalence suite.
//!
//! The batch engine's contract (`DESIGN.md` § 8f) is the same as the
//! pruner's: a batched campaign is a pure wall-clock optimisation. Every
//! record it emits carries the classification a scalar run of that fault
//! would have produced — same outcome, deviation, detection latency and
//! outputs — differing at most in the provenance metadata that says *how*
//! the record was obtained. These tests drive that contract end to end:
//!
//! * fixed-seed 500-fault campaigns on both algorithms are compared
//!   record-for-record against their `batch_width: 0` twins;
//! * every fault model gets the same comparison — the flip models through
//!   the batch engine proper, the non-quiescent models (intermittent,
//!   stuck-at) through the eligibility gate that must bypass it, where
//!   even the bytes must match;
//! * the batch path is *load-bearing* without the pruner: a `prune: false`
//!   single-bit campaign still classifies faults analytically, from the
//!   lockstep walk alone;
//! * batch width is outcome-*and*-byte invariant: widths 1, 3, 32 and
//!   1024 produce identical record streams (grouping and split-off
//!   dedup do not depend on the chunk size);
//! * property tests generalise the fixed seeds over random seeds, both
//!   algorithms and all models.

use bera_goofi::campaign::{run_fault_list, run_scifi_campaign_observed, CampaignConfig};
use bera_goofi::experiment::{golden_run, ExperimentRecord, FaultModel, FaultSpec, Provenance};
use bera_goofi::observer::{NullObserver, Telemetry};
use bera_goofi::planner::records_equivalent;
use bera_goofi::workload::Workload;
use bera_tcpu::scan;
use proptest::prelude::*;

fn run(workload: &Workload, cfg: &CampaignConfig) -> Vec<ExperimentRecord> {
    run_scifi_campaign_observed(workload, cfg, &NullObserver).records
}

fn analytic_count(records: &[ExperimentRecord]) -> usize {
    records
        .iter()
        .filter(|r| r.provenance == Provenance::Analytic)
        .count()
}

/// Asserts record-for-record equivalence in the optimiser's sense:
/// identical classification, differing at most in provenance metadata.
fn assert_equivalent(batched: &[ExperimentRecord], scalar: &[ExperimentRecord]) {
    assert_eq!(batched.len(), scalar.len());
    for (i, (b, s)) in batched.iter().zip(scalar).enumerate() {
        assert!(
            records_equivalent(b, s),
            "fault index {i} diverges\nbatched: {b:?}\nscalar:  {s:?}"
        );
    }
}

fn batched_equivalence_500(workload: &Workload, seed: u64) {
    let mut cfg = CampaignConfig::quick(500, seed);
    cfg.threads = 0; // all cores; sharding is outcome-invariant
    let batched = run(workload, &cfg);
    cfg.batch_width = 0;
    let scalar = run(workload, &cfg);
    assert_equivalent(&batched, &scalar);
}

#[test]
fn batched_algorithm_one_is_record_for_record_identical_to_scalar() {
    batched_equivalence_500(&Workload::algorithm_one(), 41);
}

#[test]
fn batched_algorithm_two_is_record_for_record_identical_to_scalar() {
    batched_equivalence_500(&Workload::algorithm_two(), 42);
}

#[test]
fn every_fault_model_matches_its_scalar_run() {
    let workload = Workload::algorithm_one();
    let models = [
        FaultModel::SingleBit,
        FaultModel::AdjacentDoubleBit,
        FaultModel::Intermittent {
            reassert_iterations: 2,
        },
        FaultModel::StuckAt { value: false },
        FaultModel::StuckAt { value: true },
        FaultModel::Burst { width: 3 },
    ];
    for model in models {
        let mut cfg = CampaignConfig::quick(120, 43);
        cfg.fault_model = model;
        let batched = run(&workload, &cfg);
        cfg.batch_width = 0;
        let scalar = run(&workload, &cfg);

        assert_equivalent(&batched, &scalar);
        let json = |rs: &[ExperimentRecord]| -> Vec<String> {
            rs.iter()
                .map(|r| serde_json::to_string(r).expect("serialize"))
                .collect()
        };
        match model {
            // A non-quiescent injector re-asserts between trace samples,
            // so the trace walk is unsound and the eligibility gate must
            // route the whole campaign down the identical scalar path.
            FaultModel::Intermittent { .. } | FaultModel::StuckAt { .. } => {
                assert_eq!(json(&batched), json(&scalar), "{model:?} must bypass");
            }
            // The multi-bit flip models have no def/use pruner: every
            // analytic record in the batched run came from the lockstep
            // walk, and there must be some for the engine to earn its keep.
            FaultModel::AdjacentDoubleBit | FaultModel::Burst { .. } => {
                assert_eq!(analytic_count(&scalar), 0, "{model:?} has no pruner");
                assert!(
                    analytic_count(&batched) > 0,
                    "{model:?} must classify some faults in lockstep"
                );
            }
            FaultModel::SingleBit => {}
        }
    }
}

#[test]
fn batching_virtualizes_without_the_pruner() {
    // With the def/use planner off, the lockstep walk is the only thing
    // standing between a latent/overwritten fault and a full simulation;
    // it must still find them, and still agree with the scalar run.
    let workload = Workload::algorithm_one();
    let mut cfg = CampaignConfig::quick(300, 44);
    cfg.prune = false;
    let batched = run(&workload, &cfg);
    assert!(
        analytic_count(&batched) > 0,
        "the batch engine must classify analytically without the pruner"
    );
    for r in &batched {
        if r.provenance == Provenance::Analytic {
            assert!(
                matches!(
                    r.outcome,
                    bera_goofi::Outcome::Latent | bera_goofi::Outcome::Overwritten
                ),
                "lockstep record with outcome {:?}",
                r.outcome
            );
        }
    }

    cfg.batch_width = 0;
    let scalar = run(&workload, &cfg);
    assert_eq!(analytic_count(&scalar), 0);
    assert_equivalent(&batched, &scalar);
}

#[test]
fn batch_width_is_byte_invariant_and_width_one_matches_scalar() {
    let workload = Workload::algorithm_one();
    let json = |width: usize| -> Vec<String> {
        let mut cfg = CampaignConfig::quick(300, 45);
        cfg.fault_model = FaultModel::Burst { width: 3 };
        cfg.batch_width = width;
        run(&workload, &cfg)
            .iter()
            .map(|r| serde_json::to_string(r).expect("serialize"))
            .collect()
    };
    // Group chunking and split-off dedup preserve candidate order, so the
    // record stream is identical down to the bytes at any width ≥ 1.
    let reference = json(1);
    for width in [3, 32, 1024] {
        assert_eq!(
            reference,
            json(width),
            "width {width} diverged from width 1"
        );
    }
    // Width 1 still batches (groups of one), so against the true scalar
    // path only provenance metadata may differ.
    let scalar: Vec<ExperimentRecord> = json(0)
        .iter()
        .map(|s| serde_json::from_str(s).expect("parse"))
        .collect();
    let width_one: Vec<ExperimentRecord> = reference
        .iter()
        .map(|s| serde_json::from_str(s).expect("parse"))
        .collect();
    assert_equivalent(&width_one, &scalar);
}

/// A pinned fault list over the state the def/use trace cannot see —
/// PSR flags, the signature register, cache metadata, the store and fill
/// buffers — where lockstep admission now rides on visibility deltas.
/// Under every fault model the batched run must stay record-for-record
/// equivalent to its scalar twin, and for the multi-bit flip models the
/// visibility deltas must actually admit some of these replicas (without
/// them the whole set fell back to scalar simulation).
#[test]
fn untraceable_locations_batch_equivalently_across_models() {
    let workload = Workload::algorithm_one();
    let base = CampaignConfig::quick(24, 47);
    let golden = golden_run(&workload, &base.loop_cfg);
    let faults: Vec<FaultSpec> = scan::catalog()
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            use scan::BitLocation::*;
            matches!(
                l,
                Psr { .. }
                    | SigReg { .. }
                    | CacheTag { .. }
                    | CacheValid { .. }
                    | CacheDirty { .. }
                    | StoreBufAddr { .. }
                    | StoreBufData { .. }
                    | StoreBufValid
                    | FillBufAddr { .. }
                    | FillBufData { .. }
                    | FillBufParity
                    | FillBufValid
            )
        })
        .map(|(i, _)| i)
        .step_by(7)
        .flat_map(|location_index| {
            let total = golden.total_instructions;
            [total / 4, total / 2].map(|inject_at| FaultSpec {
                location_index,
                inject_at,
            })
        })
        .collect();
    assert!(faults.len() >= 40, "the pinned list must cover the set");

    let models = [
        FaultModel::SingleBit,
        FaultModel::AdjacentDoubleBit,
        FaultModel::Intermittent {
            reassert_iterations: 2,
        },
        FaultModel::StuckAt { value: false },
        FaultModel::Burst { width: 3 },
    ];
    for model in models {
        let mut cfg = base.clone();
        cfg.fault_model = model;
        let batched = run_fault_list(&workload, &cfg, &golden, &faults);
        cfg.batch_width = 0;
        let scalar = run_fault_list(&workload, &cfg, &golden, &faults);
        assert_equivalent(&batched, &scalar);

        if matches!(
            model,
            FaultModel::AdjacentDoubleBit | FaultModel::Burst { .. }
        ) {
            assert_eq!(analytic_count(&scalar), 0, "{model:?} has no pruner");
            assert!(
                analytic_count(&batched) > 0,
                "{model:?} must resolve some untraceable replicas in lockstep"
            );
        }
    }
}

#[test]
fn batch_telemetry_counts_are_coherent() {
    let workload = Workload::algorithm_two();
    let mut cfg = CampaignConfig::quick(300, 46);
    cfg.fault_model = FaultModel::AdjacentDoubleBit;
    let telemetry = Telemetry::new(cfg.faults);
    let result = run_scifi_campaign_observed(&workload, &cfg, &telemetry);
    let snap = telemetry.snapshot();

    assert!(snap.batch_groups > 0, "a flip campaign must form batches");
    assert!(snap.batch_members > 0);
    assert!(
        snap.batch_members <= snap.batch_capacity,
        "occupancy cannot exceed capacity"
    );
    assert!(
        snap.split_offs <= snap.batch_members,
        "only batched replicas can split off"
    );
    assert!((0.0..=1.0).contains(&snap.batch_occupancy()));
    assert!((0.0..=1.0).contains(&snap.split_off_rate()));
    assert!(snap.mean_lockstep_prefix() >= 0.0);
    // The convergence-splice invariant survives virtual records: every
    // `pruned_at` in the record stream was announced to the observer.
    assert_eq!(
        snap.pruned,
        result
            .records
            .iter()
            .filter(|r| r.pruned_at.is_some())
            .count()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random-seed generalisation of the fixed-seed suites above, over
    /// both algorithms and every fault model: batched and scalar
    /// campaigns agree record for record.
    #[test]
    fn batching_is_outcome_invariant_for_random_seeds(
        seed in 0u64..1_000,
        model_pick in 0usize..6,
    ) {
        let workload = if seed.is_multiple_of(2) {
            Workload::algorithm_one()
        } else {
            Workload::algorithm_two()
        };
        let mut cfg = CampaignConfig::quick(24, seed);
        cfg.fault_model = match model_pick {
            0 => FaultModel::SingleBit,
            1 => FaultModel::AdjacentDoubleBit,
            2 => FaultModel::Intermittent { reassert_iterations: 2 },
            3 => FaultModel::StuckAt { value: false },
            4 => FaultModel::StuckAt { value: true },
            _ => FaultModel::Burst { width: 3 },
        };
        let batched = run(&workload, &cfg);
        cfg.batch_width = 0;
        let scalar = run(&workload, &cfg);
        prop_assert_eq!(batched.len(), scalar.len());
        for (b, s) in batched.iter().zip(&scalar) {
            prop_assert!(records_equivalent(b, s), "{:?} vs {:?}", b, s);
        }
    }

    /// The split-off boundary is exact: whatever instant a replica
    /// diverges at, resuming the scalar engine there must classify like
    /// a scalar run that replayed the whole lockstep prefix. Narrow
    /// fault lists at random seeds exercise boundaries the fixed-seed
    /// suites may miss (checkpoint edges, injection-adjacent accesses).
    #[test]
    fn split_off_boundaries_are_exact_for_random_seeds(seed in 0u64..1_000) {
        let workload = Workload::algorithm_one();
        // prune: false maximises batch traffic — every sampled fault is a
        // batch candidate, so split-offs dominate the record stream.
        let mut cfg = CampaignConfig::quick(32, seed);
        cfg.prune = false;
        let batched = run(&workload, &cfg);
        cfg.batch_width = 0;
        let scalar = run(&workload, &cfg);
        for (b, s) in batched.iter().zip(&scalar) {
            prop_assert!(records_equivalent(b, s), "{:?} vs {:?}", b, s);
        }
    }
}
