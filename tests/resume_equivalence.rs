//! Interrupt/resume equivalence for the streaming result store.
//!
//! The store's claim (`DESIGN.md` § "Streaming result store") is that an
//! interrupted campaign, resumed from its JSONL file, finishes with
//! *bit-identical* results to a never-interrupted run: the same record for
//! every fault index, and therefore the same rendered tables. These tests
//! interrupt campaigns at line boundaries and mid-line (a torn write),
//! resume them, and compare both the full record sets and the rendered
//! Table 4 against one-shot references — for both algorithms under both
//! fault models. They also pin the resume guard-rails: a store from a
//! different campaign (seed, fault count, fault model, workload, or golden
//! digest) must be refused with an error naming the mismatched field.

use bera_goofi::campaign::{prepare_campaign, CampaignConfig, CampaignResult};
use bera_goofi::experiment::FaultModel;
use bera_goofi::store::{load_store, JsonlStore, StoreError, StoreHeader};
use bera_goofi::table::ComparisonTable;
use bera_goofi::workload::Workload;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "bera-resume-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

fn config(model: FaultModel) -> CampaignConfig {
    let mut cfg = CampaignConfig::quick(24, 7);
    cfg.fault_model = model;
    cfg
}

/// Runs the campaign start-to-finish, streaming into a fresh store file.
fn one_shot(workload: &Workload, cfg: &CampaignConfig, path: &Path) -> CampaignResult {
    let prepared = prepare_campaign(workload, cfg);
    let header = StoreHeader::new(workload.name(), cfg, prepared.golden());
    let store = JsonlStore::create(path, &header).expect("create store");
    let result = prepared.run(&store);
    store.finish().expect("finish store");
    result
}

/// Copies the first `1 + records` lines (header + records) of `src` to
/// `dst`, then chops `torn_bytes` off the end — simulating a crash either
/// at a line boundary (`torn_bytes == 0`) or mid-write.
fn interrupt(src: &Path, dst: &Path, records: usize, torn_bytes: usize) {
    let text = std::fs::read_to_string(src).expect("read one-shot store");
    let mut kept: String = text
        .lines()
        .take(1 + records)
        .map(|l| format!("{l}\n"))
        .collect();
    kept.truncate(kept.len() - torn_bytes);
    std::fs::write(dst, kept).expect("write interrupted store");
}

/// Resumes the interrupted store to completion and returns its result.
fn resume(workload: &Workload, cfg: &CampaignConfig, path: &Path) -> CampaignResult {
    let prepared = prepare_campaign(workload, cfg);
    let header = StoreHeader::new(workload.name(), cfg, prepared.golden());
    let (store, loaded) = JsonlStore::open_resume(path, &header).expect("open_resume");
    let result = prepared.run_resumed(loaded.records, &store);
    store.finish().expect("finish resumed store");
    result
}

fn record_set_json(result: &CampaignResult) -> Vec<String> {
    result
        .records
        .iter()
        .map(|r| serde_json::to_string(r).expect("serialize record"))
        .collect()
}

/// The core property: interrupt after `records` complete lines (minus
/// `torn_bytes`), resume, and require the final store and result to be
/// bit-identical to the one-shot run.
fn assert_resume_identical(
    workload: &Workload,
    model: FaultModel,
    records: usize,
    torn_bytes: usize,
    tag: &str,
) -> CampaignResult {
    let cfg = config(model);
    let full_path = temp_path(&format!("{tag}-full"));
    let cut_path = temp_path(&format!("{tag}-cut"));

    let full = one_shot(workload, &cfg, &full_path);
    interrupt(&full_path, &cut_path, records, torn_bytes);
    if records < cfg.faults || torn_bytes > 0 {
        let loaded = load_store(&cut_path).expect("interrupted store loads");
        assert!(
            loaded.done() < cfg.faults,
            "interrupted store must have a gap to fill"
        );
    }
    let resumed = resume(workload, &cfg, &cut_path);

    // The in-memory results agree field-for-field (serialized form covers
    // every field, including the classification and bit-exact deviations).
    assert_eq!(
        record_set_json(&full),
        record_set_json(&resumed),
        "resumed campaign must reproduce the one-shot records exactly"
    );

    // The persisted stores hold the same record set (line order may differ
    // because the resumed run only appends the gap).
    let reload_full = load_store(&full_path)
        .expect("reload one-shot store")
        .into_result()
        .expect("one-shot store complete");
    let reload_resumed = load_store(&cut_path)
        .expect("reload resumed store")
        .into_result()
        .expect("resumed store complete");
    assert_eq!(
        record_set_json(&reload_full),
        record_set_json(&reload_resumed)
    );

    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&cut_path);
    full
}

#[test]
fn resume_matches_one_shot_alg1_single_bit() {
    assert_resume_identical(
        &Workload::algorithm_one(),
        FaultModel::SingleBit,
        9,
        0,
        "a1s",
    );
}

#[test]
fn resume_matches_one_shot_alg2_single_bit() {
    assert_resume_identical(
        &Workload::algorithm_two(),
        FaultModel::SingleBit,
        15,
        0,
        "a2s",
    );
}

#[test]
fn resume_matches_one_shot_alg1_double_bit() {
    assert_resume_identical(
        &Workload::algorithm_one(),
        FaultModel::AdjacentDoubleBit,
        5,
        0,
        "a1d",
    );
}

#[test]
fn resume_matches_one_shot_alg2_double_bit() {
    assert_resume_identical(
        &Workload::algorithm_two(),
        FaultModel::AdjacentDoubleBit,
        20,
        0,
        "a2d",
    );
}

#[test]
fn resume_matches_one_shot_alg1_intermittent() {
    // Re-asserting faults carry extra injector state across iteration
    // boundaries; resume must still reproduce every record exactly.
    assert_resume_identical(
        &Workload::algorithm_one(),
        FaultModel::Intermittent {
            reassert_iterations: 3,
        },
        9,
        0,
        "a1i",
    );
}

#[test]
fn resume_matches_one_shot_alg2_stuck_at() {
    // Stuck-at faults re-apply at every boundary and are never pruned;
    // resume must agree with one-shot on the full unpruned records.
    assert_resume_identical(
        &Workload::algorithm_two(),
        FaultModel::StuckAt { value: true },
        13,
        0,
        "a2st",
    );
}

#[test]
fn resume_after_torn_final_line_matches_one_shot() {
    // Keep 8 whole records, then tear 13 bytes off the 8th — the crash
    // happened mid-write, so the resumed run must redo that fault too.
    assert_resume_identical(
        &Workload::algorithm_one(),
        FaultModel::SingleBit,
        8,
        13,
        "torn",
    );
}

#[test]
fn resume_from_empty_gap_is_a_no_op() {
    // Interrupt after *all* records: resume must adopt everything and run
    // nothing new, still matching the one-shot result.
    let cfg = config(FaultModel::SingleBit);
    assert_resume_identical(
        &Workload::algorithm_one(),
        FaultModel::SingleBit,
        cfg.faults,
        0,
        "full",
    );
}

#[test]
fn double_crash_converges_to_the_one_shot_result() {
    // Crash once mid-campaign (torn final line), crash *again* midway
    // through the resume that was repairing it (its own torn final line),
    // and resume a third time: the store must still converge bit-identical
    // to the never-crashed run. Resume is idempotent, not merely
    // single-shot safe.
    let workload = Workload::algorithm_one();
    let cfg = config(FaultModel::SingleBit);
    let full_path = temp_path("dc-full");
    let crash1_path = temp_path("dc-crash1");
    let crash2_path = temp_path("dc-crash2");

    let full = one_shot(&workload, &cfg, &full_path);

    // Crash #1: six records survive whole, the seventh is torn mid-write.
    interrupt(&full_path, &crash1_path, 6, 9);

    // The first recovery run completes the store...
    let resumed_once = resume(&workload, &cfg, &crash1_path);
    assert_eq!(record_set_json(&full), record_set_json(&resumed_once));

    // ...but crash #2 hits a hypothetical sibling of that run midway:
    // the six original records plus three the resume appended survive,
    // and the recovery's own in-flight line is torn.
    interrupt(&crash1_path, &crash2_path, 9, 11);
    let after_second_crash = load_store(&crash2_path).expect("doubly-crashed store loads");
    assert!(
        after_second_crash.torn_tail,
        "second crash must leave a torn tail"
    );
    assert!(
        after_second_crash.done() < cfg.faults,
        "doubly-crashed store must still have a gap"
    );

    // The third run converges.
    let final_result = resume(&workload, &cfg, &crash2_path);
    assert_eq!(
        record_set_json(&full),
        record_set_json(&final_result),
        "two crashes and two resumes must still reproduce the one-shot records"
    );
    let reload_full = load_store(&full_path)
        .expect("reload one-shot store")
        .into_result()
        .expect("one-shot store complete");
    let reload_final = load_store(&crash2_path)
        .expect("reload twice-resumed store")
        .into_result()
        .expect("twice-resumed store complete");
    assert_eq!(
        record_set_json(&reload_full),
        record_set_json(&reload_final)
    );
    assert_eq!(
        ComparisonTable::new(&reload_full, &reload_full).render(),
        ComparisonTable::new(&reload_final, &reload_final).render(),
        "tables rendered after a double crash must be byte-identical"
    );

    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&crash1_path);
    let _ = std::fs::remove_file(&crash2_path);
}

#[test]
fn table4_from_resumed_stores_is_bit_identical() {
    // Render the Algorithm I vs II comparison from one-shot results and
    // from interrupted-then-resumed results; the reports must match
    // byte-for-byte.
    let full1 = assert_resume_identical(
        &Workload::algorithm_one(),
        FaultModel::SingleBit,
        7,
        0,
        "t4a1",
    );
    let full2 = assert_resume_identical(
        &Workload::algorithm_two(),
        FaultModel::SingleBit,
        11,
        0,
        "t4a2",
    );
    // assert_resume_identical proved resumed records equal the one-shot
    // records, so rendering either yields the same bytes; render both
    // one-shot results here to pin the end-to-end artifact.
    let table = ComparisonTable::new(&full1, &full2).render();
    let again = ComparisonTable::new(&full1, &full2).render();
    assert_eq!(table, again);
    assert!(table.contains("Algorithm I"));
}

// ---------------------------------------------------------------------------
// Guard-rails: resuming the wrong store must fail loudly.
// ---------------------------------------------------------------------------

fn mismatch_field(stored_cfg: &CampaignConfig, current: &StoreHeader, tag: &str) -> &'static str {
    let workload = Workload::algorithm_one();
    let path = temp_path(tag);
    let prepared = prepare_campaign(&workload, stored_cfg);
    let header = StoreHeader::new(workload.name(), stored_cfg, prepared.golden());
    let store = JsonlStore::create(&path, &header).expect("create store");
    drop(prepared);
    store.finish().expect("finish");
    let err = JsonlStore::open_resume(&path, current)
        .err()
        .expect("mismatched resume must fail");
    let _ = std::fs::remove_file(&path);
    match err {
        StoreError::HeaderMismatch { field, .. } => field,
        other => panic!("expected HeaderMismatch, got {other}"),
    }
}

fn current_header(cfg: &CampaignConfig) -> StoreHeader {
    let workload = Workload::algorithm_one();
    let prepared = prepare_campaign(&workload, cfg);
    StoreHeader::new(workload.name(), cfg, prepared.golden())
}

#[test]
fn resume_rejects_mismatched_seed() {
    let stored = config(FaultModel::SingleBit);
    let mut other = stored.clone();
    other.seed += 1;
    assert_eq!(
        mismatch_field(&stored, &current_header(&other), "seed"),
        "seed"
    );
}

#[test]
fn resume_rejects_mismatched_fault_count() {
    let stored = config(FaultModel::SingleBit);
    let mut other = stored.clone();
    other.faults += 1;
    assert_eq!(
        mismatch_field(&stored, &current_header(&other), "count"),
        "faults"
    );
}

#[test]
fn resume_rejects_mismatched_fault_model() {
    let stored = config(FaultModel::SingleBit);
    let other = config(FaultModel::AdjacentDoubleBit);
    assert_eq!(
        mismatch_field(&stored, &current_header(&other), "model"),
        "fault_model"
    );
}

#[test]
fn resume_rejects_mismatched_workload() {
    let cfg = config(FaultModel::SingleBit);
    let other_workload = Workload::algorithm_two();
    let prepared = prepare_campaign(&other_workload, &cfg);
    let current = StoreHeader::new(other_workload.name(), &cfg, prepared.golden());
    assert_eq!(mismatch_field(&cfg, &current, "workload"), "workload");
}

#[test]
fn resume_rejects_mismatched_vis() {
    // The visibility layer changes which faults carry analytic or
    // replicated provenance, so the two halves of a resumed campaign
    // must agree on it.
    let stored = config(FaultModel::SingleBit);
    let mut other = stored.clone();
    other.vis = false;
    assert_eq!(
        mismatch_field(&stored, &current_header(&other), "vis"),
        "vis"
    );
}

#[test]
fn resume_rejects_mismatched_golden_digest() {
    // Same flags, but the golden run itself differs (e.g. a changed plant
    // model): simulate by tampering with the digest alone.
    let cfg = config(FaultModel::SingleBit);
    let mut current = current_header(&cfg);
    current.golden_digest ^= 1;
    assert_eq!(mismatch_field(&cfg, &current, "digest"), "golden_digest");
}

#[test]
fn resume_rejects_garbage_file() {
    let path = temp_path("garbage");
    std::fs::write(&path, "{\"not\":\"a store\"}\n").expect("write garbage");
    let cfg = config(FaultModel::SingleBit);
    let err = JsonlStore::open_resume(&path, &current_header(&cfg)).err();
    let _ = std::fs::remove_file(&path);
    assert!(err.is_some(), "garbage file must be refused");
}
