//! Cross-validation between the three implementations of the same
//! algorithms: native Rust controllers, the generic Section 4.3 wrapper,
//! and the tcpu assembly workloads running on the CPU simulator.

use bera::core::controller::Limits;
use bera::core::{Controller, PiController, Protected, ProtectedPiController, Siso};
use bera::plant::{Engine, Profiles};
use bera::tcpu::machine::{Machine, RunExit, PORT_R, PORT_U, PORT_Y};

const DT: f64 = 0.0154;

fn run_native<C: Controller>(mut ctrl: C, iterations: usize) -> Vec<f64> {
    let mut engine = Engine::paper();
    let profiles = Profiles::paper();
    let mut outputs = Vec::new();
    for k in 0..iterations {
        let t = k as f64 * DT;
        // Quantise through f32 exactly as the tcpu I/O ports do.
        let r = f64::from(profiles.reference(t) as f32);
        let y = f64::from(engine.speed_rpm() as f32);
        let u = ctrl.step(r, y);
        outputs.push(u);
        engine.advance(u, profiles.load(t), DT);
    }
    outputs
}

fn run_tcpu(workload: &bera::goofi::Workload, iterations: usize) -> Vec<f64> {
    let mut m = Machine::new();
    m.load_program(workload.program());
    let mut engine = Engine::paper();
    let profiles = Profiles::paper();
    let mut outputs = Vec::new();
    for k in 0..iterations {
        let t = k as f64 * DT;
        m.set_port_f32(PORT_R, profiles.reference(t) as f32);
        m.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
        assert_eq!(m.run(1_000_000), RunExit::Yield, "iteration {k}");
        let u = f64::from(m.port_out_f32(PORT_U));
        outputs.push(u);
        engine.advance(u, profiles.load(t), DT);
    }
    outputs
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn three_implementations_of_algorithm_two_agree() {
    let n = 650;
    let native = run_native(ProtectedPiController::paper(), n);
    let generic = run_native(
        Siso::new(
            Protected::uniform(PiController::paper(), Limits::throttle()),
            Limits::throttle(),
        ),
        n,
    );
    let tcpu = run_tcpu(&bera::goofi::Workload::algorithm_two(), n);

    assert_eq!(
        max_abs_diff(&native, &generic),
        0.0,
        "hand-written and generic Algorithm II are bit-identical"
    );
    assert!(
        max_abs_diff(&native, &tcpu) < 0.5,
        "f32 target tracks the f64 reference: {}",
        max_abs_diff(&native, &tcpu)
    );
}

#[test]
fn algorithm_one_tcpu_vs_native() {
    let n = 650;
    let native = run_native(PiController::paper(), n);
    let tcpu = run_tcpu(&bera::goofi::Workload::algorithm_one(), n);
    assert!(max_abs_diff(&native, &tcpu) < 0.5);
}

#[test]
fn corrupted_state_recovery_agrees_between_native_and_tcpu() {
    // Force the same out-of-range state corruption into the native
    // controller and the cache-resident x of the tcpu workload; both
    // Algorithm II implementations must avoid a permanent lock-up.
    let n = 300;
    let kick = 200; // iteration of the corruption

    // Native.
    let mut native_out = Vec::new();
    {
        let mut ctrl = ProtectedPiController::paper();
        let mut engine = Engine::paper();
        let profiles = Profiles::paper();
        for k in 0..n {
            if k == kick {
                ctrl.set_state(0, 2.0e9);
            }
            let t = k as f64 * DT;
            let u = ctrl.step(profiles.reference(t), engine.speed_rpm());
            native_out.push(u);
            engine.advance(u, profiles.load(t), DT);
        }
    }

    // tcpu.
    let workload = bera::goofi::Workload::algorithm_two();
    let mut tcpu_out = Vec::new();
    {
        let mut m = Machine::new();
        m.load_program(workload.program());
        let mut engine = Engine::paper();
        let profiles = Profiles::paper();
        for k in 0..n {
            if k == kick {
                assert!(m.scan_write_cached(workload.x_address(), 2.0e9f32.to_bits()));
            }
            let t = k as f64 * DT;
            m.set_port_f32(PORT_R, profiles.reference(t) as f32);
            m.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
            assert_eq!(m.run(1_000_000), RunExit::Yield);
            let u = f64::from(m.port_out_f32(PORT_U));
            tcpu_out.push(u);
            engine.advance(u.clamp(0.0, 70.0), profiles.load(t), DT);
        }
    }

    for (label, out) in [("native", &native_out), ("tcpu", &tcpu_out)] {
        let locked = out[kick + 2..].iter().filter(|&&u| u >= 70.0).count();
        assert_eq!(locked, 0, "{label}: no permanent lock after recovery");
    }
}
