//! Failpoint-driven crash/recovery assurance for the campaign plane.
//!
//! Every failpoint in [`bera::goofi::failpoints::CATALOG`] is driven
//! through at least one **crash** scenario here: the `campaign` binary
//! (built with the `failpoints` feature — this whole suite is gated on
//! it) is spawned with `--failpoint id=crash[@N]`, aborts at the armed
//! boundary, and is then re-run with `--resume` and no failpoints. After
//! recovery the invariants of `ASSURANCE.md` are asserted against an
//! uncrashed baseline run of the identical configuration:
//!
//! * **I1 — no record loss**: the recovered store is complete;
//! * **I2 — no duplicate records**: every fault index appears exactly
//!   once in the recovered store file;
//! * **I3 — no duplicate claims**: each fault classifies exactly once
//!   (I2 measured on the file, plus record-for-record identity below);
//! * **I4 — header consistency**: the recovered header is byte-identical
//!   to the baseline header;
//! * **I5 — bit-identical results**: every record and the rendered
//!   Tables 2–4 match the uncrashed baseline byte-for-byte;
//! * **I6 — sidecar atomicity**: the `<store>.telemetry.json` sidecar is
//!   never present-but-truncated, whatever instant the crash hit.
//!
//! The multi-process farm (DESIGN.md § 8i) extends the same discipline
//! across process boundaries: its scenarios crash a *worker* or the
//! *merge* at each farm failpoint, recover with a clean worker plus
//! `--farm-merge`, and assert two further invariants on top of I1–I6:
//!
//! * **I7 — single ownership**: no fault index is ever recorded by two
//!   shards' segments (the lease claim/reclaim/fencing protocol held);
//! * **I8 — merge fidelity**: the merged store is byte-identical —
//!   header, records, and rendered tables — to a single-process run of
//!   the identical configuration.
//!
//! Scenario scratch space lives under `CARGO_TARGET_TMPDIR` (CI uploads
//! it when this suite fails), and `tests/assurance_map.rs` checks — with
//! or without the feature — that this file covers every catalog ID and
//! that `ASSURANCE.md` maps each one to a real test below.
//!
//! Run with: `cargo test --release --features failpoints --test crash_recovery`
#![cfg(feature = "failpoints")]

use bera::goofi::campaign::CampaignResult;
use bera::goofi::failpoints;
use bera::goofi::store::{
    decode_record, load_store, telemetry_sidecar_path, LoadedCampaign, StoreError,
};
use bera::goofi::table::{tabulate, ComparisonTable};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

/// The campaign configuration every scenario runs: small enough that a
/// debug-build subprocess finishes in well under a second, big enough
/// that mid-campaign crash points (`@N`) land strictly inside the run.
const FAULTS: usize = 12;
const BASE_ARGS: &[&str] = &[
    "--workload",
    "alg1",
    "--faults",
    "12",
    "--seed",
    "7",
    "--iterations",
    "60",
];

/// Flag sets a scenario can run under. `Scalar` disables the planner and
/// the lockstep batch pass so that every fault flows through the scalar
/// claim loop and the supervised `attempt` path — the scenarios that arm
/// those failpoints need deterministic hit counts there.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Flags {
    Default,
    Scalar,
}

impl Flags {
    fn args(self) -> &'static [&'static str] {
        match self {
            Flags::Default => &[],
            Flags::Scalar => &["--no-prune", "--no-batch"],
        }
    }
}

fn scratch_root() -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("crash-recovery");
    std::fs::create_dir_all(&root).expect("create scratch root");
    root
}

fn scratch_store(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU32 = AtomicU32::new(0);
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    scratch_root().join(format!("{}-{tag}-{n}.jsonl", std::process::id()))
}

/// Spawns the failpoints-enabled `campaign` binary on `store` with the
/// scenario flags plus `extra` (failpoint specs, `--resume`, ...).
fn run_campaign(
    store: &Path,
    threads: usize,
    flags: Flags,
    extra: &[&str],
) -> std::process::Output {
    let threads = threads.to_string();
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(BASE_ARGS)
        .args(["--threads", &threads])
        .args(flags.args())
        .args(["--out", store.to_str().expect("utf-8 scratch path")])
        .args(extra)
        .output()
        .expect("spawn campaign binary")
}

fn stderr_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The uncrashed reference store for a flag set, run exactly once and
/// shared by every scenario under those flags.
fn baseline(flags: Flags) -> &'static Path {
    static DEFAULT: OnceLock<PathBuf> = OnceLock::new();
    static SCALAR: OnceLock<PathBuf> = OnceLock::new();
    let cell = match flags {
        Flags::Default => &DEFAULT,
        Flags::Scalar => &SCALAR,
    };
    cell.get_or_init(|| {
        let store = scratch_store("baseline");
        let out = run_campaign(&store, 1, flags, &[]);
        assert!(
            out.status.success(),
            "baseline campaign failed:\n{}",
            stderr_of(&out)
        );
        store
    })
}

/// Loads a store and asserts the file-level invariant I2: every fault
/// index appears on exactly one (valid) line.
fn load_checked(path: &Path) -> LoadedCampaign {
    let text = std::fs::read_to_string(path).expect("read store");
    let mut seen = [0usize; FAULTS];
    for line in text.lines().skip(1) {
        let (index, _) = decode_record(line).expect("every line of a recovered store decodes");
        seen[index] += 1;
    }
    for (index, count) in seen.iter().enumerate() {
        assert!(
            *count <= 1,
            "fault index {index} appears {count} times in {} (duplicate record)",
            path.display()
        );
    }
    load_store(path).expect("recovered store loads")
}

fn complete_result(loaded: LoadedCampaign) -> CampaignResult {
    assert!(loaded.is_complete(), "recovered store must have no gaps");
    loaded.into_result().expect("complete store reassembles")
}

/// Asserts invariants I1–I5: the recovered store matches the uncrashed
/// baseline record-for-record, header-for-header, and table-for-table.
fn assert_recovered_identical(recovered: &Path, flags: Flags) {
    let base = load_checked(baseline(flags));
    let rec = load_checked(recovered);
    assert_eq!(
        serde_json::to_string(&base.header).unwrap(),
        serde_json::to_string(&rec.header).unwrap(),
        "recovered header must be identical to the baseline header"
    );
    let base = complete_result(base);
    let rec = complete_result(rec);
    let base_records: Vec<String> = base
        .records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    let rec_records: Vec<String> = rec
        .records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    assert_eq!(
        base_records, rec_records,
        "recovered records must be bit-identical to the uncrashed baseline"
    );
    // Tables 2/3 (per-store) and the Table-4 comparison shape render
    // byte-identically from the recovered data.
    assert_eq!(tabulate(&base).render(), tabulate(&rec).render());
    assert_eq!(
        ComparisonTable::new(&base, &base).render(),
        ComparisonTable::new(&rec, &rec).render()
    );
}

/// Invariant I6: whatever instant the crash hit, the *published* sidecar
/// path holds either nothing or complete, parseable JSON — never a torn
/// file.
fn assert_sidecar_atomic(store: &Path) {
    let side = telemetry_sidecar_path(store);
    if side.exists() {
        let json = std::fs::read_to_string(&side).expect("read sidecar");
        serde_json::from_str::<bera::goofi::observer::TelemetrySnapshot>(&json)
            .expect("a published sidecar must be complete JSON");
    }
}

/// The core scenario: crash the campaign at an armed failpoint, then
/// recover with `--resume` and demand bit-identical convergence.
///
/// `crash_specs` are passed as repeated `--failpoint` flags; the crashed
/// run must die (abort), the recovery run must succeed. `resume_crashed`
/// additionally passes `--resume` to the *crashed* run, for scenarios
/// that inject into the resume path itself.
fn crash_then_recover(
    tag: &str,
    threads: usize,
    flags: Flags,
    crash_specs: &[&str],
    resume_crashed: bool,
) -> PathBuf {
    let store = scratch_store(tag);
    let mut crash_args: Vec<&str> = Vec::new();
    for spec in crash_specs {
        crash_args.push("--failpoint");
        crash_args.push(spec);
    }
    if resume_crashed {
        crash_args.push("--resume");
    }
    let crashed = run_campaign(&store, threads, flags, &crash_args);
    assert!(
        !crashed.status.success(),
        "{tag}: the armed failpoint must crash the campaign, but it exited \
         cleanly:\n{}",
        stderr_of(&crashed)
    );
    assert_sidecar_atomic(&store);

    let recovered = run_campaign(&store, threads, flags, &["--resume"]);
    assert!(
        recovered.status.success(),
        "{tag}: recovery run failed:\n{}",
        stderr_of(&recovered)
    );
    assert_recovered_identical(&store, flags);
    assert_sidecar_atomic(&store);
    store
}

/// Copies the baseline store to `dst` and tears `torn_bytes` off the end,
/// landing mid final line — the canonical crash-mid-append disk state.
fn torn_copy_of_baseline(dst: &Path, torn_bytes: usize, flags: Flags) {
    let text = std::fs::read_to_string(baseline(flags)).expect("read baseline");
    assert!(text.ends_with('\n') && torn_bytes > 1);
    std::fs::write(dst, &text[..text.len() - torn_bytes]).expect("write torn copy");
    let loaded = load_store(dst).expect("torn copy loads");
    assert!(loaded.torn_tail, "setup must produce a torn tail");
}

// ---------------------------------------------------------------------------
// Crash scenarios: one (or more) per catalog failpoint.
// ---------------------------------------------------------------------------

#[test]
fn crash_before_header_leaves_recoverable_remnant() {
    // store.create.before-header=crash: the file exists but is empty; the
    // resume run must recognize the headerless remnant and start afresh
    // instead of refusing (or worse, misreading) it.
    crash_then_recover(
        "create-before-header",
        1,
        Flags::Default,
        &["store.create.before-header=crash"],
        false,
    );
}

#[test]
fn crash_after_header_recovers_the_whole_campaign() {
    // store.create.after-header=crash: the store is a bare header; every
    // fault is a gap the resume must fill.
    crash_then_recover(
        "create-after-header",
        1,
        Flags::Default,
        &["store.create.after-header=crash"],
        false,
    );
}

#[test]
fn crash_before_record_write_recovers() {
    // store.append.before-write=crash@5: four records durable, the fifth
    // never reached the writer.
    crash_then_recover(
        "append-before-write",
        1,
        Flags::Default,
        &["store.append.before-write=crash@5"],
        false,
    );
}

#[test]
fn crash_between_write_and_flush_recovers() {
    // store.append.after-write=crash@5: the fifth line died in the
    // userspace buffer; the file ends at a clean line boundary and the
    // fault re-runs on resume.
    crash_then_recover(
        "append-after-write",
        1,
        Flags::Default,
        &["store.append.after-write=crash@5"],
        false,
    );
}

#[test]
fn crash_after_flush_keeps_the_flushed_record() {
    // store.append.after-flush=crash@5: the fifth record is durable; the
    // resume must adopt it (not duplicate it) and run only the rest.
    crash_then_recover(
        "append-after-flush",
        1,
        Flags::Default,
        &["store.append.after-flush=crash@5"],
        false,
    );
}

#[test]
fn crash_before_resume_truncate_recovers_on_the_next_resume() {
    // Double crash: run one died mid-append (torn tail, staged from the
    // baseline), run two died during resume *before* truncating the torn
    // line (store.resume.before-truncate=crash), run three converges.
    let store = scratch_store("resume-before-truncate");
    torn_copy_of_baseline(&store, 10, Flags::Default);
    let crashed = run_campaign(
        &store,
        1,
        Flags::Default,
        &[
            "--failpoint",
            "store.resume.before-truncate=crash",
            "--resume",
        ],
    );
    assert!(
        !crashed.status.success(),
        "resume must crash at the armed truncation failpoint:\n{}",
        stderr_of(&crashed)
    );
    // The torn tail is still there — the crash hit before the truncation.
    assert!(load_store(&store).expect("store still loads").torn_tail);
    let recovered = run_campaign(&store, 1, Flags::Default, &["--resume"]);
    assert!(
        recovered.status.success(),
        "third run must converge:\n{}",
        stderr_of(&recovered)
    );
    assert_recovered_identical(&store, Flags::Default);
}

#[test]
fn crash_after_resume_truncate_recovers_on_the_next_resume() {
    // store.resume.after-truncate=crash: the torn line is gone but no new
    // record was appended; the next resume starts from a clean boundary.
    let store = scratch_store("resume-after-truncate");
    torn_copy_of_baseline(&store, 10, Flags::Default);
    let crashed = run_campaign(
        &store,
        1,
        Flags::Default,
        &[
            "--failpoint",
            "store.resume.after-truncate=crash",
            "--resume",
        ],
    );
    assert!(!crashed.status.success(), "{}", stderr_of(&crashed));
    let loaded = load_store(&store).expect("truncated store loads");
    assert!(
        !loaded.torn_tail,
        "the crash hit after truncation, so the tail must be clean"
    );
    let recovered = run_campaign(&store, 1, Flags::Default, &["--resume"]);
    assert!(recovered.status.success(), "{}", stderr_of(&recovered));
    assert_recovered_identical(&store, Flags::Default);
}

#[test]
fn crash_before_sidecar_write_preserves_the_store() {
    // sidecar.before-write=crash: all records are durable; only the
    // telemetry sidecar is missing. Recovery re-runs nothing and writes
    // the sidecar.
    let store = crash_then_recover(
        "sidecar-before-write",
        1,
        Flags::Default,
        &["sidecar.before-write=crash"],
        false,
    );
    let side = telemetry_sidecar_path(&store);
    assert!(side.exists(), "recovery must publish the sidecar");
}

#[test]
fn crash_before_sidecar_rename_never_publishes_a_torn_sidecar() {
    // sidecar.before-rename=crash: the temp file exists, the published
    // path must not (rename never happened) — and must never be partial.
    let store = crash_then_recover(
        "sidecar-before-rename",
        1,
        Flags::Default,
        &["sidecar.before-rename=crash"],
        false,
    );
    let side = telemetry_sidecar_path(&store);
    assert!(
        side.exists(),
        "recovery must publish the sidecar after the crash"
    );
}

#[test]
fn crash_mid_experiment_attempt_recovers() {
    // experiment.attempt=crash@5: the process dies inside the supervised
    // containment boundary — supervision contains panics, not aborts, so
    // this is a genuine crash mid-experiment.
    crash_then_recover(
        "attempt-crash",
        1,
        Flags::Scalar,
        &["experiment.attempt=crash@5"],
        false,
    );
}

#[test]
fn crash_between_failed_attempt_and_retry_recovers() {
    // experiment.attempt=panic@5 makes the fifth attempt (and all later
    // ones) panic; supervisor.before-retry=crash kills the process after
    // the failure but before the stride-0 retry. No record was written
    // for that fault, and the recovery run (no failpoints) classifies it
    // healthily — bit-identical to the never-sabotaged baseline.
    crash_then_recover(
        "supervisor-before-retry",
        1,
        Flags::Scalar,
        &[
            "experiment.attempt=panic@5",
            "supervisor.before-retry=crash",
        ],
        false,
    );
}

#[test]
fn crash_before_quarantine_record_recovers() {
    // Both attempts fail (panic@5 arms every later hit too), then
    // supervisor.before-quarantine=crash dies with the quarantine
    // decision made but not yet durable. The fault stays a gap, and the
    // healthy recovery run converges to the baseline.
    crash_then_recover(
        "supervisor-before-quarantine",
        1,
        Flags::Scalar,
        &[
            "experiment.attempt=panic@5",
            "supervisor.before-quarantine=crash",
        ],
        false,
    );
}

#[test]
fn crash_mid_claim_in_the_parallel_scheduler_recovers() {
    // campaign.claim=crash@6: a worker dies with a claim in flight in a
    // two-worker campaign; the store keeps whatever classified first.
    crash_then_recover(
        "claim-crash",
        2,
        Flags::Scalar,
        &["campaign.claim=crash@6"],
        false,
    );
}

#[test]
fn crash_before_self_heal_recovers() {
    // campaign.claim=panic@6 kills the workers (lost claims), then
    // campaign.self-heal=crash dies before the serial re-run of those
    // claims: exactly the state the self-healing pass exists to fix, now
    // fixed across a process boundary by the resume instead.
    crash_then_recover(
        "self-heal-crash",
        2,
        Flags::Scalar,
        &["campaign.claim=panic@6", "campaign.self-heal=crash"],
        false,
    );
}

// ---------------------------------------------------------------------------
// Farm crash scenarios: a worker (or the merge) dies at each farm
// failpoint; a clean worker + merge must converge to the single-process
// baseline (invariants I7 and I8 on top of I1–I6).
// ---------------------------------------------------------------------------

use bera::goofi::farm::{assemble_farm, done_path, lease_path, merged_path};

/// Fast lease timing so expiry-driven recovery lands in test time:
/// heartbeat 25 ms, expiry 100 ms (the enforced 2× floor comfortably met).
const FARM_ARGS: &[&str] = &[
    "--shards",
    "3",
    "--lease-heartbeat-ms",
    "25",
    "--lease-expiry-ms",
    "100",
];

fn farm_scratch(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU32 = AtomicU32::new(0);
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    scratch_root().join(format!("{}-farm-{tag}-{n}", std::process::id()))
}

/// Initializes a farm of the scenario campaign (same config as
/// `BASE_ARGS`, so the single-process `baseline` is its identity
/// reference).
fn farm_init(root: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(BASE_ARGS)
        .args(FARM_ARGS)
        .args(["--farm-init", root.to_str().expect("utf-8 scratch path")])
        .output()
        .expect("spawn campaign binary");
    assert!(
        out.status.success(),
        "farm init failed:\n{}",
        stderr_of(&out)
    );
}

/// Spawns a worker on the farm, optionally with armed failpoints.
fn farm_worker(root: &Path, id: &str, failpoint_specs: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.args(["--worker", root.to_str().expect("utf-8 scratch path")])
        .args(["--worker-id", id, "--threads", "1"]);
    for spec in failpoint_specs {
        cmd.args(["--failpoint", spec]);
    }
    cmd.output().expect("spawn campaign binary")
}

/// Spawns the merge step, optionally with armed failpoints.
fn farm_merge(root: &Path, failpoint_specs: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.args(["--farm-merge", root.to_str().expect("utf-8 scratch path")]);
    for spec in failpoint_specs {
        cmd.args(["--failpoint", spec]);
    }
    cmd.output().expect("spawn campaign binary")
}

/// Recovery + invariants for every farm scenario: a clean worker drains
/// the remaining shards (reclaiming expired leases as needed), the merge
/// folds the segments, and the result must satisfy I7 (assembly clean of
/// duplicates, no leases left behind, every shard done) and I8 (the
/// merged store bit-identical to the single-process baseline, checked via
/// the shared I1–I5 assertions).
fn assert_farm_converges(root: &Path) {
    let recovered = farm_worker(root, "recovery", &[]);
    assert!(
        recovered.status.success(),
        "recovery worker failed:\n{}",
        stderr_of(&recovered)
    );
    let merged_run = farm_merge(root, &[]);
    assert!(
        merged_run.status.success(),
        "merge failed:\n{}",
        stderr_of(&merged_run)
    );
    // I7: the assembly cross-checks every segment against the manifest —
    // a double-claimed shard would surface as a duplicate or foreign
    // index — and a finished farm holds no leases.
    let assembly = assemble_farm(root).expect("recovered farm assembles cleanly");
    assert!(assembly.is_complete(), "recovered farm must have no gaps");
    for status in &assembly.shards {
        assert!(
            status.done,
            "shard {} missing its done marker",
            status.spec.index
        );
        assert!(
            !lease_path(root, status.spec.index).exists(),
            "shard {} still holds a lease after convergence",
            status.spec.index
        );
        assert!(done_path(root, status.spec.index).exists());
    }
    // I8 (via I1–I5): the merged store against the uncrashed baseline.
    let merged = merged_path(root);
    assert_recovered_identical(&merged, Flags::Default);
    assert_sidecar_atomic(&merged);
}

#[test]
fn farm_crash_after_lease_claim_recovers_by_expiry() {
    // farm.lease.claim=crash: the worker dies the instant its first lease
    // file exists — maximum ambiguity (a lease with no progress behind
    // it). The recovery worker must wait out the expiry, reclaim, and run
    // the whole farm.
    let root = farm_scratch("lease-claim");
    farm_init(&root);
    let crashed = farm_worker(&root, "victim", &["farm.lease.claim=crash"]);
    assert!(
        !crashed.status.success(),
        "claim crash must kill the worker:\n{}",
        stderr_of(&crashed)
    );
    assert!(
        lease_path(&root, 0).exists(),
        "the crashed worker's lease must survive it"
    );
    assert_farm_converges(&root);
}

#[test]
fn farm_crash_at_heartbeat_recovers() {
    // farm.lease.heartbeat=crash: the worker dies on its heartbeat
    // thread's first refresh, mid-shard. Appends are slowed
    // (store.append.after-flush=delay:20) so the 25 ms heartbeat fires
    // while records are still streaming — the canonical
    // died-holding-a-half-segment state. The reclaiming worker resumes
    // the torn segment, re-runs only the gap, and converges.
    let root = farm_scratch("heartbeat");
    farm_init(&root);
    let crashed = farm_worker(
        &root,
        "victim",
        &[
            "farm.lease.heartbeat=crash",
            "store.append.after-flush=delay:20",
        ],
    );
    assert!(
        !crashed.status.success(),
        "heartbeat crash must kill the worker:\n{}",
        stderr_of(&crashed)
    );
    assert_farm_converges(&root);
}

#[test]
fn farm_crash_mid_reclaim_recovers() {
    // Stage an expired lease (claim-crash victim + sleep past expiry),
    // then crash a second worker at farm.lease.reclaim=crash — after the
    // rename-aside, before the stale file is deleted. The live lease path
    // is already free (the takeover is the rename), so the recovery
    // worker sweeps the stale remnant and claims normally.
    let root = farm_scratch("reclaim");
    farm_init(&root);
    let victim = farm_worker(&root, "victim", &["farm.lease.claim=crash"]);
    assert!(!victim.status.success(), "{}", stderr_of(&victim));
    std::thread::sleep(std::time::Duration::from_millis(150));
    let reclaimer = farm_worker(&root, "reclaimer", &["farm.lease.reclaim=crash"]);
    assert!(
        !reclaimer.status.success(),
        "reclaim crash must kill the worker:\n{}",
        stderr_of(&reclaimer)
    );
    assert!(
        !lease_path(&root, 0).exists(),
        "the rename-aside already freed the live lease path"
    );
    assert_farm_converges(&root);
}

#[test]
fn farm_crash_before_done_marker_recovers() {
    // farm.segment.finalize=crash: the segment is complete and flushed,
    // the telemetry sidecar written, but the done marker never became
    // durable. The reclaiming worker finds a full segment, re-runs
    // nothing, and commits the marker.
    let root = farm_scratch("finalize");
    farm_init(&root);
    let crashed = farm_worker(&root, "victim", &["farm.segment.finalize=crash"]);
    assert!(
        !crashed.status.success(),
        "finalize crash must kill the worker:\n{}",
        stderr_of(&crashed)
    );
    assert!(
        !done_path(&root, 0).exists(),
        "the crash hit before the done marker"
    );
    assert_farm_converges(&root);
}

#[test]
fn farm_crash_mid_merge_segment_scan_recovers() {
    // farm.merge.segment=crash@2: the merge dies between validating
    // segments. Nothing was published (the canonical store appears only
    // via the final rename), so re-running the merge is a pure retry.
    let root = farm_scratch("merge-segment");
    farm_init(&root);
    let worker = farm_worker(&root, "w0", &[]);
    assert!(worker.status.success(), "{}", stderr_of(&worker));
    let crashed = farm_merge(&root, &["farm.merge.segment=crash@2"]);
    assert!(
        !crashed.status.success(),
        "merge crash must kill the process:\n{}",
        stderr_of(&crashed)
    );
    assert!(
        !merged_path(&root).exists(),
        "a crashed merge must not have published a canonical store"
    );
    assert_farm_converges(&root);
}

#[test]
fn farm_crash_before_merge_publish_recovers() {
    // farm.merge.publish=crash: the merged store is fully written to the
    // temp path but the rename never happened. The published path stays
    // absent (never torn), and the re-run merge overwrites the temp file
    // from scratch.
    let root = farm_scratch("merge-publish");
    farm_init(&root);
    let worker = farm_worker(&root, "w0", &[]);
    assert!(worker.status.success(), "{}", stderr_of(&worker));
    let crashed = farm_merge(&root, &["farm.merge.publish=crash"]);
    assert!(
        !crashed.status.success(),
        "publish crash must kill the process:\n{}",
        stderr_of(&crashed)
    );
    assert!(
        !merged_path(&root).exists(),
        "the canonical store must not exist until the rename"
    );
    assert!(
        root.join("merged.jsonl.tmp").exists(),
        "the crash hit after the temp store was written"
    );
    assert_farm_converges(&root);
}

// ---------------------------------------------------------------------------
// Error and delay scenarios (in-process): return-error must surface as a
// campaign failure, never as silent data loss; delay must be harmless.
// ---------------------------------------------------------------------------

/// In-process failpoint tests share the process-global registry; this
/// gate serializes them (the subprocess scenarios above configure the
/// registry of the *child* process and need no gate).
fn registry_guard() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn in_process_campaign(
    store: &Path,
) -> (
    bera::goofi::workload::Workload,
    bera::goofi::campaign::CampaignConfig,
    bera::goofi::store::StoreHeader,
) {
    use bera::goofi::campaign::{prepare_campaign, CampaignConfig};
    use bera::goofi::store::StoreHeader;
    use bera::goofi::workload::Workload;
    let workload = Workload::algorithm_one();
    let cfg = CampaignConfig::quick(6, 3);
    let prepared = prepare_campaign(&workload, &cfg);
    let header = StoreHeader::new(workload.name(), &cfg, prepared.golden());
    let _ = store;
    (workload, cfg, header)
}

#[test]
fn injected_create_error_fails_store_creation_loudly() {
    let _g = registry_guard();
    failpoints::clear_all();
    let store = scratch_store("error-create");
    let (_w, _cfg, header) = in_process_campaign(&store);
    failpoints::configure("store.create.before-header=return-error").unwrap();
    let result = bera::goofi::store::JsonlStore::create(&store, &header);
    failpoints::clear_all();
    match result {
        Err(StoreError::Io(e)) => {
            assert!(e.to_string().contains("store.create.before-header"), "{e}");
        }
        Err(other) => panic!("injected error must surface as Io, got {other:?}"),
        Ok(_) => panic!("injected error must surface, got Ok"),
    }
}

#[test]
fn injected_append_error_surfaces_at_finish() {
    use bera::goofi::campaign::prepare_campaign;
    let _g = registry_guard();
    failpoints::clear_all();
    let store_path = scratch_store("error-append");
    let (workload, cfg, header) = in_process_campaign(&store_path);
    let store = bera::goofi::store::JsonlStore::create(&store_path, &header).unwrap();
    failpoints::configure("store.append.before-write=return-error@3").unwrap();
    let prepared = prepare_campaign(&workload, &cfg);
    let _result = prepared.run(&store);
    failpoints::clear_all();
    let finished = store.finish();
    assert!(
        finished.is_err(),
        "a dropped record must fail the campaign at finish, not vanish"
    );
}

#[test]
fn injected_resume_truncate_error_fails_open_resume() {
    let _g = registry_guard();
    failpoints::clear_all();
    let store = scratch_store("error-truncate");
    torn_copy_of_baseline(&store, 10, Flags::Default);
    // open_resume against the *stored* header: load it straight back so
    // validation passes and the torn-tail truncation path is reached.
    let header = load_store(&store).expect("torn store loads").header;
    failpoints::configure("store.resume.before-truncate=return-error").unwrap();
    let result = bera::goofi::store::JsonlStore::open_resume(&store, &header);
    failpoints::clear_all();
    assert!(
        matches!(result, Err(StoreError::Io(_))),
        "injected truncation error must surface"
    );
}

#[test]
fn delay_action_slows_but_does_not_corrupt() {
    use bera::goofi::campaign::prepare_campaign;
    let _g = registry_guard();
    failpoints::clear_all();
    let store_path = scratch_store("delay-append");
    let (workload, cfg, header) = in_process_campaign(&store_path);
    let store = bera::goofi::store::JsonlStore::create(&store_path, &header).unwrap();
    failpoints::configure("store.append.after-flush=delay:5").unwrap();
    let prepared = prepare_campaign(&workload, &cfg);
    let result = prepared.run(&store);
    failpoints::clear_all();
    store.finish().expect("delayed store finishes cleanly");
    let loaded = load_store(&store_path).expect("delayed store loads");
    assert!(loaded.is_complete());
    assert_eq!(loaded.done(), result.records.len());
}
