//! Process-kill assurance for the campaign farm (DESIGN.md § 8i): a
//! three-worker farm with one worker SIGKILLed mid-shard must still
//! complete — surviving workers reclaim the dead worker's expired lease,
//! torn-tail-recover its partial segment, and re-run only the gap — and
//! the merged result must be byte-identical (header, records, and
//! rendered Tables 2–4) to a single-process run of the same campaign.
//!
//! Unlike `tests/crash_recovery.rs` this suite needs no failpoints: the
//! kill is a real `SIGKILL` delivered at an arbitrary instant mid-shard
//! (whenever the poll first sees a record in some segment). When the
//! `failpoints` feature *is* available, the victim's appends are slowed
//! so the kill lands deep inside a shard rather than racing its end.
//!
//! Scale is environment-tunable so the same test serves tier-1 (small,
//! seconds) and the CI `farm-kill` job (paper scale, release build):
//!
//! * `FARM_KILL_FAULTS`  — campaign size (default 48)
//! * `FARM_KILL_ITERS`   — iterations per experiment (default 60)
//! * `FARM_KILL_DIR`     — scratch root (default `CARGO_TARGET_TMPDIR`;
//!   CI points this at a workspace path it uploads on failure)

use bera::goofi::farm::merged_path;
use bera::goofi::store::load_store;
use bera::goofi::table::{tabulate, ComparisonTable};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scratch_root() -> PathBuf {
    let root = std::env::var("FARM_KILL_DIR").map_or_else(
        |_| Path::new(env!("CARGO_TARGET_TMPDIR")).join("farm-kill"),
        PathBuf::from,
    );
    std::fs::create_dir_all(&root).expect("create scratch root");
    root
}

fn campaign(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(args)
        .output()
        .expect("spawn campaign binary")
}

fn spawn_worker(root: &Path, id: &str, extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.args(["--worker", root.to_str().expect("utf-8 path")])
        .args(["--worker-id", id])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn().expect("spawn worker")
}

/// `true` once any shard segment holds at least one record line (a line
/// beyond the header) — the signal that the victim is mid-shard.
fn any_segment_has_record(root: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(root.join("shards")) else {
        return false;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if !name.to_string_lossy().ends_with(".segment.jsonl") {
            continue;
        }
        if let Ok(bytes) = std::fs::read(entry.path()) {
            if bytes.iter().filter(|&&b| b == b'\n').count() >= 2 {
                return true;
            }
        }
    }
    false
}

#[test]
fn farm_survives_sigkill_mid_shard() {
    let faults = env_or("FARM_KILL_FAULTS", 48).to_string();
    let iters = env_or("FARM_KILL_ITERS", 60).to_string();
    let scratch = scratch_root();
    let tag = std::process::id();
    let root = scratch.join(format!("farm-{tag}"));
    let _ = std::fs::remove_dir_all(&root);
    let baseline = scratch.join(format!("baseline-{tag}.jsonl"));
    let _ = std::fs::remove_file(&baseline);

    let base_args: &[&str] = &[
        "--workload",
        "alg1",
        "--faults",
        &faults,
        "--seed",
        "7",
        "--iterations",
        &iters,
    ];

    // The single-process reference run.
    let base = campaign(&[base_args, &["--out", baseline.to_str().unwrap()]].concat());
    assert!(
        base.status.success(),
        "baseline run failed:\n{}",
        String::from_utf8_lossy(&base.stderr)
    );

    // The farm: 3 shards, 100 ms heartbeat, 1 s expiry so reclaim of the
    // victim's lease lands within test time.
    let init = campaign(
        &[
            base_args,
            &[
                "--farm-init",
                root.to_str().unwrap(),
                "--shards",
                "3",
                "--lease-heartbeat-ms",
                "100",
                "--lease-expiry-ms",
                "1000",
            ],
        ]
        .concat(),
    );
    assert!(
        init.status.success(),
        "farm init failed:\n{}",
        String::from_utf8_lossy(&init.stderr)
    );

    // The victim: single-threaded (and, when failpoints exist in this
    // build, slowed per append) so the SIGKILL lands mid-shard.
    let mut victim_extra: Vec<&str> = vec!["--threads", "1"];
    if cfg!(feature = "failpoints") {
        victim_extra.extend(["--failpoint", "store.append.after-flush=delay:10"]);
    }
    let mut victim = spawn_worker(&root, "victim", &victim_extra);

    // Kill the instant real progress is visible (or give up waiting if
    // the victim somehow finished everything first — the test remains
    // valid, just less adversarial).
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if any_segment_has_record(&root) {
            break;
        }
        if victim.try_wait().expect("poll victim").is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "victim produced no visible progress within the deadline"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = victim.kill(); // SIGKILL on unix: no cleanup, no flush
    let _ = victim.wait();

    // Two healthy workers drain the farm, reclaiming the victim's lease
    // once it expires.
    let mut w1 = spawn_worker(&root, "healthy-1", &[]);
    let mut w2 = spawn_worker(&root, "healthy-2", &[]);
    let s1 = w1.wait().expect("wait healthy-1");
    let s2 = w2.wait().expect("wait healthy-2");
    assert!(s1.success() && s2.success(), "healthy workers must finish");

    let merge = campaign(&["--farm-merge", root.to_str().unwrap()]);
    assert!(
        merge.status.success(),
        "merge failed:\n{}",
        String::from_utf8_lossy(&merge.stderr)
    );

    // Byte-identity: header, every record, and the rendered tables.
    let merged = load_store(&merged_path(&root)).expect("merged store loads");
    let single = load_store(&baseline).expect("baseline store loads");
    assert_eq!(
        serde_json::to_string(&merged.header).unwrap(),
        serde_json::to_string(&single.header).unwrap(),
        "merged header differs from the single-process header"
    );
    let merged = merged.into_result().expect("merged store complete");
    let single = single.into_result().expect("baseline store complete");
    assert_eq!(merged.records.len(), single.records.len());
    for (i, (a, b)) in merged.records.iter().zip(&single.records).enumerate() {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "record {i} differs between the farm and the single-process run"
        );
    }
    // Tables 2/3 and the Table-4 comparison layout, byte-for-byte.
    assert_eq!(tabulate(&single).render(), tabulate(&merged).render());
    assert_eq!(
        ComparisonTable::new(&single, &single).render(),
        ComparisonTable::new(&merged, &merged).render()
    );
}
