//! Property tests for the JSONL result-store wire format.
//!
//! Three claims are exercised over randomized [`ExperimentRecord`]s:
//!
//! 1. **Round-trip exactness** — `decode(encode(r)) == r` for every field,
//!    including non-finite `max_deviation` values (`±inf`, `NaN`), which
//!    have no JSON number representation and travel as IEEE-754 bits;
//! 2. **No half-parses** — every proper prefix of a record line (a torn
//!    final line after a crash mid-write) fails to decode; a reader can
//!    never mistake a partial record for a complete one;
//! 3. **Corruption detection** — changing any single character of a record
//!    line makes it fail to decode (structure breaks or the checksum
//!    catches it), and a store file truncated at an arbitrary byte inside
//!    its final line loads with exactly that record dropped and flagged.

use bera_goofi::campaign::{prepare_campaign, CampaignConfig};
use bera_goofi::classify::{HarnessCause, Outcome, Severity};
use bera_goofi::experiment::{ExperimentRecord, FaultSpec, Provenance};
use bera_goofi::store::{decode_record, encode_record, load_store, JsonlStore, StoreHeader};
use bera_goofi::table::TABLE_MECHANISMS;
use bera_goofi::workload::Workload;
use bera_tcpu::scan;
use proptest::prelude::*;
use proptest::strategy::Just;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

fn outcome_from(tag: usize, mech: usize, severity: usize) -> Outcome {
    match tag % 7 {
        0 => Outcome::Detected(TABLE_MECHANISMS[mech % TABLE_MECHANISMS.len()]),
        1 => Outcome::Hang,
        2 => Outcome::ValueFailure(match severity % 4 {
            0 => Severity::Permanent,
            1 => Severity::SemiPermanent,
            2 => Severity::Transient,
            _ => Severity::Insignificant,
        }),
        3 => Outcome::Latent,
        4 => Outcome::Overwritten,
        5 => Outcome::HarnessFailure(HarnessCause::Panic),
        _ => Outcome::HarnessFailure(HarnessCause::Deadline),
    }
}

/// Assembles a record from independently sampled parts. The location is
/// drawn from the real scan catalog so `part` stays consistent with it.
#[allow(clippy::too_many_arguments)]
fn build_record(
    location_index: usize,
    inject_at: u64,
    tag: usize,
    mech: usize,
    severity: usize,
    max_deviation: f64,
    first_strong: Option<usize>,
    latency: Option<u64>,
    outputs: Option<Vec<u32>>,
    pruned_at: Option<usize>,
) -> ExperimentRecord {
    let catalog = scan::catalog();
    let location = catalog[location_index % catalog.len()];
    let outcome = outcome_from(tag, mech, severity);
    let harness_error = outcome
        .is_harness_failure()
        .then(|| format!("chaos detail #{tag}"));
    // `tag` ranges over 0..7, so `tag % 3` visits every provenance.
    let provenance = match tag % 3 {
        0 => Provenance::Simulated,
        1 => Provenance::Analytic,
        _ => Provenance::Replicated,
    };
    ExperimentRecord {
        fault: FaultSpec {
            location_index: location_index % catalog.len(),
            inject_at,
        },
        part: location.part(),
        location,
        outcome,
        max_deviation,
        first_strong_iteration: first_strong,
        detection_latency: latency,
        outputs,
        pruned_at,
        provenance,
        harness_error,
    }
}

fn deviation_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
        Just(0.0f64),
        any::<f64>(),
        0.0f64..200.0,
    ]
}

fn assert_records_equal(a: &ExperimentRecord, b: &ExperimentRecord) {
    // Bit-exact on the float (covers NaN and the infinities, which compare
    // unequal / equal-to-everything-else under `==`)...
    assert_eq!(a.max_deviation.to_bits(), b.max_deviation.to_bits());
    // ...and field-for-field on everything else via the canonical
    // serialization, which covers every field of the record.
    assert_eq!(
        serde_json::to_string(a).unwrap(),
        serde_json::to_string(b).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn record_roundtrips_exactly(
        index in 0usize..100_000,
        location_index in 0usize..100_000,
        inject_at in 0u64..1_000_000,
        shape in (0usize..7, 0usize..64, 0usize..4),
        max_deviation in deviation_strategy(),
        optionals in (
            prop_oneof![Just(None), (0usize..650).prop_map(Some)],
            prop_oneof![Just(None), (0u64..1_000_000).prop_map(Some)],
            prop_oneof![
                Just(None),
                proptest::collection::vec(any::<u32>(), 0..6).prop_map(Some),
            ],
            prop_oneof![Just(None), (0usize..650).prop_map(Some)],
        ),
    ) {
        let (tag, mech, severity) = shape;
        let (first_strong, latency, outputs, pruned_at) = optionals;
        let record = build_record(
            location_index, inject_at, tag, mech, severity,
            max_deviation, first_strong, latency, outputs, pruned_at,
        );
        let line = encode_record(index, &record);
        prop_assert!(!line.contains('\n'), "a record must be a single line");
        let (decoded_index, decoded) = decode_record(&line)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(decoded_index, index);
        assert_records_equal(&record, &decoded);
    }

    #[test]
    fn no_prefix_of_a_record_half_parses(
        index in 0usize..10_000,
        location_index in 0usize..100_000,
        inject_at in 0u64..1_000_000,
        shape in (0usize..7, 0usize..64, 0usize..4),
        max_deviation in deviation_strategy(),
    ) {
        let (tag, mech, severity) = shape;
        let record = build_record(
            location_index, inject_at, tag, mech, severity,
            max_deviation, Some(3), Some(42), None, None,
        );
        let line = encode_record(index, &record);
        for cut in 0..line.len() {
            prop_assert!(
                decode_record(&line[..cut]).is_err(),
                "prefix of length {} of a {}-byte line must not decode",
                cut,
                line.len()
            );
        }
    }

    #[test]
    fn single_character_corruption_is_detected(
        index in 0usize..10_000,
        location_index in 0usize..100_000,
        inject_at in 0u64..1_000_000,
        shape in (0usize..7, 0usize..64, 0usize..4),
        max_deviation in deviation_strategy(),
        position in 0usize..10_000,
        replacement in 0usize..36,
    ) {
        let (tag, mech, severity) = shape;
        let record = build_record(
            location_index, inject_at, tag, mech, severity,
            max_deviation, None, None, None, Some(17),
        );
        let line = encode_record(index, &record);
        let chars: Vec<char> = line.chars().collect();
        let position = position % chars.len();
        let replacement = char::from_digit(replacement as u32, 36).unwrap();
        prop_assume!(chars[position] != replacement);
        let mut corrupted = chars;
        corrupted[position] = replacement;
        let corrupted: String = corrupted.into_iter().collect();
        prop_assert!(
            decode_record(&corrupted).is_err(),
            "corrupting byte {} must be detected",
            position
        );
    }
}

// ---------------------------------------------------------------------------
// File-level torn-line behaviour, against a real store on disk.
// ---------------------------------------------------------------------------

fn temp_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "bera-roundtrip-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

/// A small real store (header + 6 records) rendered once and shared.
fn reference_store_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let workload = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(6, 3);
        let prepared = prepare_campaign(&workload, &cfg);
        let header = StoreHeader::new(workload.name(), &cfg, prepared.golden());
        let path = temp_path("reference");
        let store = JsonlStore::create(&path, &header).expect("create");
        let _ = prepared.run(&store);
        store.finish().expect("finish");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        text
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_store_drops_exactly_the_torn_record(cut_back in 1usize..10_000) {
        let text = reference_store_text();
        let last_line_start = text[..text.len() - 1]
            .rfind('\n')
            .expect("store has multiple lines")
            + 1;
        // Cut somewhere strictly inside the final line (leaving at least
        // its first byte, removing at least its trailing newline).
        let span = text.len() - last_line_start;
        let cut = text.len() - 1 - (cut_back % (span - 1));
        let path = temp_path("cut");
        std::fs::write(&path, &text[..cut]).expect("write truncated store");
        let loaded = load_store(&path).expect("torn tail must still load");
        let _ = std::fs::remove_file(&path);
        prop_assert!(loaded.torn_tail, "cut at byte {} must be flagged torn", cut);
        prop_assert_eq!(loaded.done(), 5, "exactly the torn record is dropped");
        prop_assert!(!loaded.is_complete());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Crash-consistency property over the *whole file*: truncating the
    /// store at an arbitrary byte — inside the header, at a line
    /// boundary, mid-record, anywhere — either fails to load with a loud
    /// error (header gone) or loads exactly the records whose lines
    /// survived complete, bit-identical to the uncrashed file, with the
    /// torn-tail flag set iff a partial line remains. It is never
    /// silently misparsed: no phantom records, no altered records, no
    /// unflagged partial tail.
    #[test]
    fn truncation_at_any_byte_recovers_or_rejects_loudly(cut_seed in 0usize..1_000_000) {
        let text = reference_store_text();
        let bytes = text.as_bytes();
        let cut = cut_seed % (bytes.len() + 1);
        let prefix = &bytes[..cut];
        let path = temp_path("anycut");
        std::fs::write(&path, prefix).expect("write truncated store");
        let loaded = load_store(&path);
        let _ = std::fs::remove_file(&path);

        let newlines = prefix.iter().filter(|&&b| b == b'\n').count();
        if newlines == 0 {
            // Header line incomplete: the file holds no records and must
            // be rejected loudly, never half-parsed.
            prop_assert!(
                loaded.is_err(),
                "cut at byte {} leaves no complete header and must not load",
                cut
            );
            return Ok(());
        }

        let loaded = match loaded {
            Ok(l) => l,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(format!(
                "cut at byte {cut} after a complete header must load, got: {e}"
            ))),
        };
        // The complete record lines of the prefix, decoded from the
        // reference text (line 0 is the header).
        let mut complete_records: Vec<(usize, String)> = text
            .lines()
            .take(newlines)
            .skip(1)
            .map(|line| {
                let (index, record) = decode_record(line).expect("reference line decodes");
                (index, serde_json::to_string(&record).unwrap())
            })
            .collect();
        // A cut that removes only a record line's trailing newline leaves
        // the record itself intact: the loader accepts the unterminated
        // tail iff it still decodes, and only flags it torn otherwise.
        let tail_start = prefix.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        let tail_record = std::str::from_utf8(&prefix[tail_start..])
            .ok()
            .filter(|t| !t.is_empty())
            .and_then(|t| decode_record(t).ok());
        if let Some((index, record)) = &tail_record {
            complete_records.push((*index, serde_json::to_string(record).unwrap()));
        }
        prop_assert_eq!(
            loaded.done(),
            complete_records.len(),
            "cut at byte {} must load exactly the complete record lines",
            cut
        );
        for (index, expected) in &complete_records {
            let got = loaded.records[*index]
                .as_ref()
                .expect("surviving record is present");
            prop_assert_eq!(
                &serde_json::to_string(got).unwrap(),
                expected,
                "record {} must survive truncation bit-identically",
                index
            );
        }
        let torn_expected = cut > 0 && bytes[cut - 1] != b'\n' && tail_record.is_none();
        prop_assert_eq!(
            loaded.torn_tail,
            torn_expected,
            "cut at byte {} must flag the torn tail iff a partial line remains",
            cut
        );
    }
}

#[test]
fn untorn_reference_store_is_complete() {
    let text = reference_store_text();
    let path = temp_path("whole");
    std::fs::write(&path, text).expect("write store");
    let loaded = load_store(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    assert!(!loaded.torn_tail);
    assert_eq!(loaded.done(), 6);
    assert!(loaded.is_complete());
}
