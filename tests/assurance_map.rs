//! Keeps `ASSURANCE.md` honest. Runs with or without the `failpoints`
//! feature (it only reads source and docs), so plain `cargo test` fails
//! the moment the traceability table drifts from the failpoint catalog,
//! the crash/recovery suite, or the CI workflow.

use bera::goofi::failpoints::CATALOG;
use std::collections::BTreeMap;
use std::path::Path;

fn repo_file(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// One parsed row of the ASSURANCE.md traceability table.
struct Row {
    failpoint: String,
    invariants: Vec<String>,
    tests: Vec<String>,
    gate: String,
}

/// Extracts every backtick-quoted token from a table cell.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(start) = rest.find('`') {
        let tail = &rest[start + 1..];
        let end = tail
            .find('`')
            .expect("unterminated backtick in ASSURANCE.md cell");
        out.push(tail[..end].to_string());
        rest = &tail[end + 1..];
    }
    out
}

fn parse_rows(markdown: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    for line in markdown.lines() {
        let line = line.trim();
        // Data rows start with a backticked failpoint ID; this skips the
        // header row and the |---| separator.
        if !line.starts_with("| `") {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        assert_eq!(
            cells.len(),
            4,
            "ASSURANCE.md table rows must have 4 cells: {line}"
        );
        let failpoint = backticked(cells[0]);
        assert_eq!(failpoint.len(), 1, "exactly one failpoint per row: {line}");
        let invariants: Vec<String> = cells[1]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        assert!(!invariants.is_empty(), "row maps no invariant: {line}");
        let tests = backticked(cells[2]);
        assert!(!tests.is_empty(), "row names no test: {line}");
        let gate = backticked(cells[3]);
        assert_eq!(gate.len(), 1, "exactly one CI gate per row: {line}");
        rows.push(Row {
            failpoint: failpoint.into_iter().next().unwrap(),
            invariants,
            tests,
            gate: gate.into_iter().next().unwrap(),
        });
    }
    rows
}

#[test]
fn assurance_table_maps_the_catalog_exactly() {
    let rows = parse_rows(&repo_file("ASSURANCE.md"));
    let mapped: BTreeMap<&str, &Row> = rows.iter().map(|r| (r.failpoint.as_str(), r)).collect();
    assert_eq!(
        mapped.len(),
        rows.len(),
        "ASSURANCE.md maps some failpoint twice"
    );
    for def in CATALOG {
        assert!(
            mapped.contains_key(def.id),
            "catalog failpoint `{}` has no ASSURANCE.md row",
            def.id
        );
    }
    for row in &rows {
        assert!(
            CATALOG.iter().any(|d| d.id == row.failpoint),
            "ASSURANCE.md row `{}` names no catalog failpoint",
            row.failpoint
        );
    }
}

#[test]
fn assurance_invariants_are_the_declared_ones() {
    let markdown = repo_file("ASSURANCE.md");
    for row in parse_rows(&markdown) {
        for inv in &row.invariants {
            assert!(
                matches!(
                    inv.as_str(),
                    "I1" | "I2" | "I3" | "I4" | "I5" | "I6" | "I7" | "I8"
                ),
                "row `{}` cites unknown invariant `{inv}`",
                row.failpoint
            );
            let heading = format!("**{inv} —");
            assert!(
                markdown.contains(&heading),
                "invariant `{inv}` cited by `{}` is not defined above the table",
                row.failpoint
            );
        }
    }
}

#[test]
fn every_mapped_test_exists_in_the_crash_recovery_suite() {
    let suite = repo_file("tests/crash_recovery.rs");
    for row in parse_rows(&repo_file("ASSURANCE.md")) {
        for test in &row.tests {
            assert!(
                suite.contains(&format!("fn {test}(")),
                "ASSURANCE.md row `{}` names test `{test}` which does not \
                 exist in tests/crash_recovery.rs",
                row.failpoint
            );
        }
    }
}

#[test]
fn every_failpoint_has_a_crash_scenario() {
    let suite = repo_file("tests/crash_recovery.rs");
    for def in CATALOG {
        assert!(
            suite.contains(&format!("{}=crash", def.id)),
            "failpoint `{}` is never driven through a crash scenario in \
             tests/crash_recovery.rs",
            def.id
        );
    }
}

#[test]
fn the_ci_gate_column_names_a_real_workflow_job() {
    let workflow = repo_file(".github/workflows/ci.yml");
    for row in parse_rows(&repo_file("ASSURANCE.md")) {
        assert!(
            workflow.contains(&format!("\n  {}:", row.gate)),
            "ASSURANCE.md row `{}` cites CI gate `{}` which is not a job \
             in .github/workflows/ci.yml",
            row.failpoint,
            row.gate
        );
    }
}
