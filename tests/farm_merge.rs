//! Property tests for the farm's segment merge (DESIGN.md § 8i).
//!
//! Three claims are exercised against a real (small) campaign:
//!
//! 1. **Order invariance** — the canonical merged store is byte-identical
//!    no matter in which order segments were completed or in which order
//!    records landed inside each segment (workers race; the merge
//!    canonicalizes);
//! 2. **Duplicate detection** — a fault index recorded by a second
//!    shard's segment fails the merge loudly, naming the index and both
//!    shards, never silently picking a winner;
//! 3. **Torn-tail recovery** — a segment truncated mid final line loses
//!    exactly that one record, and a resuming worker re-runs exactly the
//!    gap, converging to the identical canonical merge.

use bera_goofi::campaign::{run_scifi_campaign, run_scifi_campaign_observed, CampaignConfig};
use bera_goofi::experiment::ExperimentRecord;
use bera_goofi::farm::{
    done_path, init_farm, manifest_path, merge_farm, merged_path, read_manifest, run_worker,
    segment_path, FarmError, FarmManifest, LeasePolicy,
};
use bera_goofi::observer::Telemetry;
use bera_goofi::store::{encode_record, load_store, JsonlStore};
use bera_goofi::workload::Workload;
use proptest::prelude::*;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

const FAULTS: usize = 12;
const SHARDS: usize = 3;

fn scratch(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU32 = AtomicU32::new(0);
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let root = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("farm-merge")
        .join(format!("{}-{tag}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// The expensive shared setup, run once: a canonical farm completed by a
/// single worker, its merged bytes, and the single-process reference
/// records of the identical campaign.
struct Fixture {
    root: PathBuf,
    manifest: FarmManifest,
    records: Vec<ExperimentRecord>,
    canonical_merged: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let root = scratch("canonical");
        let cfg = CampaignConfig::quick(FAULTS, 7);
        init_farm(&root, "alg1", &cfg, SHARDS, LeasePolicy::default()).expect("init farm");
        run_worker(&root, "fixture", 1, &mut |_| {}).expect("worker completes");
        merge_farm(&root).expect("merge completes");
        let manifest = read_manifest(&root).expect("manifest reads back");
        let canonical_merged = fs::read(merged_path(&root)).expect("read merged store");
        let records = run_scifi_campaign(&Workload::algorithm_one(), &cfg).records;
        assert_eq!(records.len(), FAULTS);
        Fixture {
            root,
            manifest,
            records,
            canonical_merged,
        }
    })
}

/// Forges a completed farm from the reference records without running any
/// campaign: segments are written by appending the records in the given
/// global order (each to its owning shard), then marked done. `order`
/// controls both which segment fills first and the line order within each
/// segment — exactly the degrees of freedom racing workers have.
fn forge_farm(tag: &str, order: &[usize]) -> PathBuf {
    let fx = fixture();
    let root = scratch(tag);
    fs::create_dir_all(root.join("shards")).expect("create shards dir");
    fs::copy(manifest_path(&fx.root), manifest_path(&root)).expect("copy manifest");
    let stores: Vec<JsonlStore> = fx
        .manifest
        .shards
        .iter()
        .map(|s| {
            JsonlStore::create(&segment_path(&root, s.index), &fx.manifest.header)
                .expect("create segment")
        })
        .collect();
    for &i in order {
        let shard = fx.manifest.shard_of(i).expect("index has an owner");
        stores[shard.index]
            .append(i, &fx.records[i])
            .expect("append record");
    }
    for (spec, store) in fx.manifest.shards.iter().zip(stores) {
        store.finish().expect("finish segment");
        fs::write(done_path(&root, spec.index), "forged\n").expect("done marker");
    }
    root
}

/// Deterministic Fisher–Yates permutation of `0..n` from a drawn seed
/// (the vendored proptest has no shuffle combinator).
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

/// The merged farm telemetry reports planning-rule counters **exactly** —
/// not multiplied by the shard count. Every worker plans the identical
/// full fault list, so each shard sidecar already carries the global
/// counts; the merge must deduplicate (take the maximum), not sum
/// (DESIGN.md § 8i). The reference is the single-process campaign's own
/// telemetry of the identical configuration.
#[test]
fn merged_planning_counters_are_exact_not_per_shard_sums() {
    // A dedicated farm, larger than the shared fixture: enough faults
    // that the visibility planner's analytic rules demonstrably fire.
    const PLAN_FAULTS: usize = 120;
    let cfg = CampaignConfig::quick(PLAN_FAULTS, 7);
    let telemetry = Telemetry::new(PLAN_FAULTS);
    let _ = run_scifi_campaign_observed(&Workload::algorithm_one(), &cfg, &telemetry);
    let reference = telemetry.snapshot();

    let root = scratch("plan-exact");
    init_farm(&root, "alg1", &cfg, SHARDS, LeasePolicy::default()).expect("init farm");
    run_worker(&root, "planner", 1, &mut |_| {}).expect("worker completes");
    let report = merge_farm(&root).expect("merge completes");
    let merged = report.telemetry.expect("shards wrote sidecars");

    assert!(
        reference.vis_latent
            + reference.vis_overwritten
            + reference.sig_overwritten
            + reference.value_resolved
            + reference.vis_replicated
            > 0,
        "the fixture campaign must exercise the planning rules for this test to bite"
    );
    assert_eq!(merged.vis_latent, reference.vis_latent);
    assert_eq!(merged.vis_overwritten, reference.vis_overwritten);
    assert_eq!(merged.sig_overwritten, reference.sig_overwritten);
    assert_eq!(merged.value_resolved, reference.value_resolved);
    assert_eq!(merged.vis_replicated, reference.vis_replicated);
    // Planning CPU stays a sum: each of the three shard runs really spent
    // it, so the farm figure must be at least the single-process figure.
    assert!(merged.plan_micros >= reference.plan_micros);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Claim 1: any completion order merges to the identical bytes.
    #[test]
    fn merge_is_byte_identical_for_any_segment_order(seed in any::<u64>()) {
        let order = permutation(seed, FAULTS);
        let root = forge_farm("perm", &order);
        let report = merge_farm(&root).expect("forged farm merges");
        let merged = fs::read(&report.path).expect("read merged store");
        prop_assert_eq!(
            merged,
            fixture().canonical_merged.clone(),
            "merged bytes must not depend on segment completion order"
        );
    }

    /// Claim 2: a duplicated fault index across segments is refused with
    /// an error naming the index and both shards involved.
    #[test]
    fn duplicate_index_across_segments_is_loud(
        index in 0..FAULTS,
        stranger_offset in 1..SHARDS,
    ) {
        let fx = fixture();
        let order: Vec<usize> = (0..FAULTS).collect();
        let root = forge_farm("dup", &order);
        let owner = fx.manifest.shard_of(index).expect("owner exists").index;
        let stranger = (owner + stranger_offset) % SHARDS;
        let seg = segment_path(&root, stranger);
        let mut file = fs::OpenOptions::new().append(true).open(&seg).expect("open segment");
        let line = encode_record(index, &fx.records[index]);
        file.write_all(line.as_bytes()).expect("append duplicate");
        file.write_all(b"\n").expect("append newline");
        drop(file);
        match merge_farm(&root) {
            Err(e @ (FarmError::ForeignIndex { .. } | FarmError::DuplicateIndex { .. })) => {
                let msg = e.to_string();
                prop_assert!(msg.contains(&format!("{index}")), "error names the index: {msg}");
                prop_assert!(
                    msg.contains(&format!("{owner}")) && msg.contains(&format!("{stranger}")),
                    "error names both shards: {msg}"
                );
            }
            other => prop_assert!(false, "duplicate must fail the merge, got {other:?}"),
        }
        prop_assert!(
            !merged_path(&root).exists(),
            "a refused merge must publish nothing"
        );
    }

    /// Claim 3: tearing the final line of one segment drops exactly that
    /// record, and a resuming worker converges to the canonical merge.
    #[test]
    fn torn_segment_tail_drops_one_record_then_resumes(
        shard in 0..SHARDS,
        cut in 1usize..20,
    ) {
        let fx = fixture();
        let order: Vec<usize> = (0..FAULTS).collect();
        let root = forge_farm("torn", &order);
        let seg = segment_path(&root, shard);
        let bytes = fs::read(&seg).expect("read segment");
        let spec = fx.manifest.shards[shard];
        // Cut strictly inside the final line: past its newline-stripped
        // start, short of swallowing the whole line (which would be a
        // clean boundary, not a tear).
        let last_line_start = bytes[..bytes.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .expect("segment has multiple lines") + 1;
        let last_line_len = bytes.len() - last_line_start;
        // At least the newline plus one byte must go (cutting the newline
        // alone leaves a complete, decodable line — a clean boundary, not
        // a tear), and at least one byte of the line must stay.
        let cut = 2 + cut % (last_line_len - 2);
        fs::write(&seg, &bytes[..bytes.len() - cut]).expect("tear segment");
        fs::remove_file(done_path(&root, shard)).expect("undo done marker");

        let loaded = load_store(&seg).expect("torn segment loads");
        prop_assert!(loaded.torn_tail, "the cut must read as a torn tail");
        prop_assert_eq!(
            loaded.done(),
            spec.len() - 1,
            "exactly one record is lost to the tear"
        );

        run_worker(&root, "resumer", 1, &mut |_| {}).expect("resume worker");
        let report = merge_farm(&root).expect("resumed farm merges");
        let merged = fs::read(&report.path).expect("read merged store");
        prop_assert_eq!(
            merged,
            fixture().canonical_merged.clone(),
            "resumed merge must be byte-identical to the canonical merge"
        );
    }
}
