//! The def/use pruning equivalence suite.
//!
//! The pruner's contract (`DESIGN.md` § 8e) is that a pruned campaign is a
//! pure wall-clock optimisation: every record it emits carries the same
//! classification a full simulation of that fault would have produced —
//! same outcome, deviation, detection latency and outputs — differing only
//! in the provenance metadata that says *how* the record was obtained.
//! These tests drive that contract end to end:
//!
//! * fixed-seed 500-fault campaigns on both algorithms are compared
//!   record-for-record against their `prune: false` twins;
//! * every non-transient fault model (and the parity-cache configuration)
//!   bypasses the pruner entirely and stays byte-identical;
//! * `paranoid` mode re-simulates class members in-campaign and panics on
//!   any disagreement — running it clean is itself the assertion;
//! * property tests show the planner's analysis is *load-bearing*: a
//!   perturbed golden trace (an extra read between two class members, a
//!   full write narrowed to a partial one) changes the plan.

use bera_goofi::campaign::{
    prepare_campaign, run_fault_list, run_scifi_campaign_observed, CampaignConfig, FaultList,
};
use bera_goofi::experiment::{
    golden_run, ExperimentRecord, FaultModel, FaultSpec, GoldenRun, Provenance,
};
use bera_goofi::observer::NullObserver;
use bera_goofi::planner::{plan_campaign, records_equivalent, PlanAction};
use bera_goofi::workload::Workload;
use bera_tcpu::access::{Access, AccessKind};
use bera_tcpu::scan;
use proptest::prelude::*;
use std::sync::OnceLock;

fn run(workload: &Workload, cfg: &CampaignConfig) -> Vec<ExperimentRecord> {
    run_scifi_campaign_observed(workload, cfg, &NullObserver).records
}

fn provenance_counts(records: &[ExperimentRecord]) -> (usize, usize, usize) {
    let count = |p: Provenance| records.iter().filter(|r| r.provenance == p).count();
    (
        count(Provenance::Simulated),
        count(Provenance::Analytic),
        count(Provenance::Replicated),
    )
}

/// Asserts record-for-record equivalence in the pruner's sense: identical
/// classification, differing at most in provenance metadata.
fn assert_equivalent(pruned: &[ExperimentRecord], unpruned: &[ExperimentRecord]) {
    assert_eq!(pruned.len(), unpruned.len());
    for (i, (p, u)) in pruned.iter().zip(unpruned).enumerate() {
        assert!(
            records_equivalent(p, u),
            "fault index {i} diverges\npruned:   {p:?}\nunpruned: {u:?}"
        );
    }
}

fn equivalence_500(workload: &Workload, seed: u64) {
    let mut cfg = CampaignConfig::quick(500, seed);
    cfg.threads = 0; // all cores; sharding is outcome-invariant
    cfg.batch_width = 0; // provenance counts below assume scalar execution
    let pruned = run(workload, &cfg);
    cfg.prune = false;
    let unpruned = run(workload, &cfg);

    assert_equivalent(&pruned, &unpruned);

    // The pruned run classified a substantial share analytically. (Exact-
    // bit equivalence classes are rare at 500 faults over ~2400 scan bits;
    // replication is exercised by the dedicated test below.)
    let (sim, analytic, replicated) = provenance_counts(&pruned);
    assert!(analytic > 0, "no fault classified analytically");
    assert_eq!(sim + analytic + replicated, cfg.faults);
    assert!(
        provenance_counts(&unpruned) == (cfg.faults, 0, 0),
        "an unpruned campaign simulates every fault"
    );

    // Analytic outcomes can only be the two the trace proves.
    for r in &pruned {
        if r.provenance == Provenance::Analytic {
            assert!(
                matches!(
                    r.outcome,
                    bera_goofi::Outcome::Latent | bera_goofi::Outcome::Overwritten
                ),
                "analytic record with outcome {:?}",
                r.outcome
            );
        }
    }
}

#[test]
fn pruned_algorithm_one_is_record_for_record_identical_to_unpruned() {
    equivalence_500(&Workload::algorithm_one(), 21);
}

#[test]
fn pruned_algorithm_two_is_record_for_record_identical_to_unpruned() {
    equivalence_500(&Workload::algorithm_two(), 22);
}

#[test]
fn replication_fires_at_scale_and_stays_bit_identical() {
    // Equivalence classes need two sampled faults on the *same scan bit*
    // whose injection times fall in the same first-read window — rare
    // below ~1000 faults. At 2000 faults the replication pass runs for
    // real, and every replicated record must still match the full
    // simulation of its fault.
    let workload = Workload::algorithm_one();
    let mut cfg = CampaignConfig::quick(2000, 21);
    cfg.threads = 0;
    let pruned = run(&workload, &cfg);
    let (_, _, replicated) = provenance_counts(&pruned);
    assert!(replicated > 0, "seed must produce at least one class merge");

    cfg.prune = false;
    let unpruned = run(&workload, &cfg);
    assert_equivalent(&pruned, &unpruned);

    // Replicated members carry a detection latency rebased to their own
    // injection time, never the representative's raw value copied blind.
    for (p, u) in pruned.iter().zip(&unpruned) {
        if p.provenance == Provenance::Replicated {
            assert_eq!(p.detection_latency, u.detection_latency);
        }
    }
}

#[test]
fn every_fault_model_matches_its_unpruned_run() {
    let workload = Workload::algorithm_one();
    let models = [
        FaultModel::SingleBit,
        FaultModel::AdjacentDoubleBit,
        FaultModel::Intermittent {
            reassert_iterations: 2,
        },
        FaultModel::StuckAt { value: false },
        FaultModel::StuckAt { value: true },
        FaultModel::Burst { width: 3 },
    ];
    for model in models {
        let mut cfg = CampaignConfig::quick(80, 31);
        cfg.fault_model = model;
        // The lockstep batch engine also emits analytic records for the
        // flip models; pin it off so the counts below isolate the pruner.
        cfg.batch_width = 0;
        let pruned = run(&workload, &cfg);
        cfg.prune = false;
        let unpruned = run(&workload, &cfg);

        assert_equivalent(&pruned, &unpruned);
        let (_, analytic, replicated) = provenance_counts(&pruned);
        if model == FaultModel::SingleBit {
            assert!(analytic > 0, "single-bit campaign must prune");
        } else {
            // Non-transient models bypass the planner: the two runs are the
            // same code path, so even the provenance metadata is identical.
            assert_eq!((analytic, replicated), (0, 0), "{model:?} must not prune");
            let json = |rs: &[ExperimentRecord]| -> Vec<String> {
                rs.iter()
                    .map(|r| serde_json::to_string(r).expect("serialize"))
                    .collect()
            };
            assert_eq!(json(&pruned), json(&unpruned), "{model:?}");
        }
    }
}

#[test]
fn parity_cache_campaigns_bypass_the_pruner() {
    // EDM-asynchronous observation: with the parity checker armed, cache
    // faults can trap *between* the accesses the trace records, so the
    // trace is not a sound basis for classification and the planner must
    // decline (mirroring the convergence pruner's `quiescent()` gate).
    let workload = Workload::algorithm_one();
    let mut cfg = CampaignConfig::quick(40, 13);
    cfg.loop_cfg.parity_cache = true;
    let pruned = run(&workload, &cfg);
    assert_eq!(provenance_counts(&pruned).0, cfg.faults);

    cfg.prune = false;
    let unpruned = run(&workload, &cfg);
    let json = |rs: &[ExperimentRecord]| -> Vec<String> {
        rs.iter()
            .map(|r| serde_json::to_string(r).expect("serialize"))
            .collect()
    };
    assert_eq!(json(&pruned), json(&unpruned));
}

#[test]
fn paranoid_mode_cross_checks_class_members_in_campaign() {
    // `paranoid` re-simulates members of every equivalence class and
    // panics inside the campaign on any disagreement with the replicated
    // record, so a clean completion *is* the soundness check. The records
    // themselves must be untouched by the auditing.
    let workload = Workload::algorithm_one();
    let mut cfg = CampaignConfig::quick(2000, 21);
    cfg.threads = 0;
    cfg.paranoid = 2;
    let audited = run(&workload, &cfg);
    assert!(
        provenance_counts(&audited).2 > 0,
        "seed must produce replicated records for the audit to bite"
    );

    cfg.paranoid = 0;
    let plain = run(&workload, &cfg);
    for (i, (a, p)) in audited.iter().zip(&plain).enumerate() {
        assert_eq!(
            serde_json::to_string(a).expect("serialize"),
            serde_json::to_string(p).expect("serialize"),
            "paranoid auditing perturbed record {i}"
        );
    }
}

// ---------------------------------------------------------------------------
// Plan-level properties: the trace analysis is load-bearing.
// ---------------------------------------------------------------------------

/// One traced golden run of Algorithm I under the quick loop config,
/// shared across property cases — the golden run does not depend on the
/// fault-list seed, only the sampled fault list does.
fn shared_golden() -> &'static (GoldenRun, CampaignConfig) {
    static CELL: OnceLock<(GoldenRun, CampaignConfig)> = OnceLock::new();
    CELL.get_or_init(|| {
        let cfg = CampaignConfig::quick(3000, 0);
        let golden = golden_run(&Workload::algorithm_one(), &cfg.loop_cfg);
        (golden, cfg)
    })
}

fn sample_faults(seed: u64) -> Vec<FaultSpec> {
    let (golden, cfg) = shared_golden();
    FaultList::sample(cfg.faults, seed, golden.total_instructions).faults
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random-seed generalisation of the fixed-seed suites above: pruned
    /// and unpruned campaigns agree record for record.
    #[test]
    fn pruning_is_outcome_invariant_for_random_seeds(seed in 0u64..1_000) {
        let workload = if seed.is_multiple_of(2) {
            Workload::algorithm_one()
        } else {
            Workload::algorithm_two()
        };
        let mut cfg = CampaignConfig::quick(24, seed);
        let pruned = run(&workload, &cfg);
        cfg.prune = false;
        let unpruned = run(&workload, &cfg);
        prop_assert_eq!(pruned.len(), unpruned.len());
        for (p, u) in pruned.iter().zip(&unpruned) {
            prop_assert!(records_equivalent(p, u), "{:?} vs {:?}", p, u);
        }
    }

    /// An extra read landing between two class members' injection times is
    /// visible to one but not the other: the pruner must stop merging them.
    #[test]
    fn an_extra_read_between_members_defeats_class_merging(seed in 0u64..1_000) {
        let (golden, cfg) = shared_golden();
        let faults = sample_faults(seed);
        let plan = plan_campaign(&faults, cfg, golden);

        // Find a replicated member whose injection time differs from its
        // representative's (most seeds have one; skip the case otherwise).
        let Some((member, rep)) = plan.actions().iter().enumerate().find_map(|(i, a)| {
            match a {
                PlanAction::Replicate { representative }
                    if faults[i].inject_at != faults[*representative].inject_at
                        && scan::catalog()[faults[i].location_index]
                            .trace_unit()
                            .is_some() =>
                {
                    Some((i, *representative))
                }
                _ => None,
            }
        }) else {
            return Ok(());
        };

        let unit = scan::catalog()[faults[member].location_index]
            .trace_unit()
            .expect("filtered to traceable units above");
        let lo = faults[member].inject_at.min(faults[rep].inject_at);
        let hi = faults[member].inject_at.max(faults[rep].inject_at);
        // Visible to the earlier injection only: `lo <= at < hi`.
        let mut perturbed = golden.clone();
        perturbed.trace.insert_for_test(unit, Access { at: hi - 1, kind: AccessKind::Read });
        prop_assert!(lo < hi);

        let replanned = plan_campaign(&faults, cfg, &perturbed);
        let same_class = replanned.classes().iter().any(|(r, members)| {
            let all: Vec<usize> = std::iter::once(*r).chain(members.iter().copied()).collect();
            all.contains(&member) && all.contains(&rep)
        });
        prop_assert!(
            !same_class,
            "faults {} and {} still share a class after the trace diverged",
            member, rep
        );
    }

    /// Narrowing an overwriting full-width write to a partial write must
    /// revoke the analytic `Overwritten` verdict: a partial write neither
    /// kills the flip nor (conservatively) proves a use.
    #[test]
    fn a_narrowed_write_revokes_the_overwritten_verdict(seed in 0u64..1_000) {
        let (golden, cfg) = shared_golden();
        let faults = sample_faults(seed);
        let plan = plan_campaign(&faults, cfg, golden);

        let Some(victim) = plan.actions().iter().enumerate().position(|(i, a)| {
            matches!(a, PlanAction::Analytic(bera_goofi::Outcome::Overwritten))
                && scan::catalog()[faults[i].location_index].trace_unit().is_some()
        }) else {
            return Ok(());
        };
        let unit = scan::catalog()[faults[victim].location_index]
            .trace_unit()
            .expect("filtered to traceable units above");
        // The verdict came from the first access at-or-after injection
        // being a full write; narrow exactly that one.
        let mut perturbed = golden.clone();
        let first = perturbed
            .trace
            .accesses(unit)
            .partition_point(|a| a.at < faults[victim].inject_at);
        perturbed.trace.set_kind_for_test(unit, first, AccessKind::PartialWrite);

        let replanned = plan_campaign(&faults, cfg, &perturbed);
        prop_assert!(
            !matches!(replanned.action(victim), PlanAction::Analytic(_)),
            "a partial write must not keep the analytic verdict"
        );
    }

    /// EDM-visibility soundness, half one: a `Latent` claim on an
    /// untraceable bit rests on *no* asynchronous observer sampling its
    /// unit after injection. Adding one extra EDM sample inside that
    /// window must defeat the claim and force simulation (or, at most,
    /// position-keyed replication — never an analytic verdict).
    #[test]
    fn an_extra_edm_sample_defeats_the_vis_latent_claim(seed in 0u64..1_000) {
        let (golden, cfg) = shared_golden();
        let faults = sample_faults(seed);
        let plan = plan_campaign(&faults, cfg, golden);

        // A latent verdict earned through the visibility trace: the bit
        // has no def/use unit but does have a visibility unit. (The
        // operand latch resolves by shift count, not window accesses, so
        // its `vis_unit` is `None` and it is excluded here.)
        let Some(victim) = plan.actions().iter().enumerate().position(|(i, a)| {
            let bit = scan::catalog()[faults[i].location_index];
            matches!(a, PlanAction::Analytic(bera_goofi::Outcome::Latent))
                && bit.trace_unit().is_none()
                && bit.vis_unit().is_some()
        }) else {
            return Ok(());
        };
        let unit = scan::catalog()[faults[victim].location_index]
            .vis_unit()
            .expect("filtered to visibility units above");

        let mut perturbed = golden.clone();
        perturbed.vis.insert_for_test(
            unit,
            Access { at: faults[victim].inject_at, kind: AccessKind::Read },
        );

        let replanned = plan_campaign(&faults, cfg, &perturbed);
        prop_assert!(
            !matches!(replanned.action(victim), PlanAction::Analytic(_)),
            "an extra EDM sample must defeat the latent claim"
        );
    }

    /// EDM-visibility soundness, half two: an `Overwritten` claim rests on
    /// the window *closing* with a whole-unit deposit before any sample.
    /// Shrinking that boundary — demoting the closing write to a partial
    /// one — must revoke the analytic verdict.
    #[test]
    fn shrinking_a_visibility_window_revokes_the_overwritten_claim(seed in 0u64..1_000) {
        let (golden, cfg) = shared_golden();
        let faults = sample_faults(seed);
        let plan = plan_campaign(&faults, cfg, golden);

        let Some(victim) = plan.actions().iter().enumerate().position(|(i, a)| {
            let bit = scan::catalog()[faults[i].location_index];
            matches!(a, PlanAction::Analytic(bera_goofi::Outcome::Overwritten))
                && bit.trace_unit().is_none()
                && bit.vis_unit().is_some()
        }) else {
            return Ok(());
        };
        let unit = scan::catalog()[faults[victim].location_index]
            .vis_unit()
            .expect("filtered to visibility units above");

        // The verdict came from the first window event at-or-after
        // injection being a whole-unit deposit; demote exactly that one.
        let mut perturbed = golden.clone();
        let first = perturbed
            .vis
            .accesses(unit)
            .partition_point(|a| a.at < faults[victim].inject_at);
        perturbed.vis.set_kind_for_test(unit, first, AccessKind::PartialWrite);

        let replanned = plan_campaign(&faults, cfg, &perturbed);
        prop_assert!(
            !matches!(replanned.action(victim), PlanAction::Analytic(_)),
            "a shrunk visibility window must revoke the overwritten claim"
        );
    }
}

/// A pinned fault list over the architectural state the def/use trace
/// cannot see — PSR flags, the signature register, cache tag/valid/dirty
/// metadata, the store and fill buffers — with injection times spread
/// across the run. Classification here comes from the EDM-visibility
/// layer, so these locations are exactly where its soundness is at stake.
fn pinned_untraceable_faults(golden: &GoldenRun) -> Vec<FaultSpec> {
    let locations: Vec<usize> = scan::catalog()
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            use scan::BitLocation::*;
            matches!(
                l,
                Psr { .. }
                    | SigReg { .. }
                    | CacheTag { .. }
                    | CacheValid { .. }
                    | CacheDirty { .. }
                    | StoreBufAddr { .. }
                    | StoreBufData { .. }
                    | StoreBufValid
                    | FillBufAddr { .. }
                    | FillBufData { .. }
                    | FillBufParity
                    | FillBufValid
            )
        })
        .map(|(i, _)| i)
        .collect();
    let total = golden.total_instructions;
    locations
        .iter()
        .step_by(locations.len().div_ceil(40).max(1))
        .flat_map(|&location_index| {
            [1, total / 3, 2 * total / 3, total - 1].map(|inject_at| FaultSpec {
                location_index,
                inject_at,
            })
        })
        .collect()
}

/// The EDM-visibility layer's end-to-end equivalence claim over the
/// untraceable set: under every fault model, the pinned list classifies
/// record-for-record identically whether the campaign runs with the
/// default layers, without the pruner, or without the visibility layer —
/// only provenance metadata may differ.
#[test]
fn untraceable_locations_are_equivalent_across_models_and_layers() {
    let workload = Workload::algorithm_one();
    let (golden, base) = shared_golden();
    let faults = pinned_untraceable_faults(golden);
    assert!(faults.len() >= 100, "the pinned list must cover the set");
    let models = [
        FaultModel::SingleBit,
        FaultModel::AdjacentDoubleBit,
        FaultModel::Intermittent {
            reassert_iterations: 2,
        },
        FaultModel::StuckAt { value: true },
        FaultModel::Burst { width: 3 },
    ];
    for model in models {
        let mut cfg = base.clone();
        cfg.fault_model = model;
        let default_run = run_fault_list(&workload, &cfg, golden, &faults);

        let mut no_prune = cfg.clone();
        no_prune.prune = false;
        let unpruned = run_fault_list(&workload, &no_prune, golden, &faults);

        let mut no_vis = cfg.clone();
        no_vis.vis = false;
        let unvis = run_fault_list(&workload, &no_vis, golden, &faults);

        for (i, d) in default_run.iter().enumerate() {
            assert!(
                records_equivalent(d, &unpruned[i]),
                "{model:?} fault {i} diverges without the pruner\n\
                 default:  {d:?}\nunpruned: {:?}",
                unpruned[i]
            );
            assert!(
                records_equivalent(d, &unvis[i]),
                "{model:?} fault {i} diverges without the visibility layer\n\
                 default: {d:?}\nunvis:   {:?}",
                unvis[i]
            );
        }
        if model == FaultModel::SingleBit {
            // The pinned set is invisible to the def/use trace, so any
            // analytic record here was earned by the visibility layer.
            let (_, analytic, _) = provenance_counts(&default_run);
            assert!(analytic > 0, "the visibility layer must carry this set");
            assert_eq!(
                provenance_counts(&unvis).1,
                0,
                "without it nothing on this set is analytic"
            );
        }
    }
}

/// The `instruction_cap` boundary: a fault scheduled past the end of the
/// golden run is opaque to the trace and must stay simulated.
#[test]
fn faults_past_the_run_end_are_simulated_not_pruned() {
    let workload = Workload::algorithm_one();
    let cfg = CampaignConfig::quick(1, 3);
    let prepared = prepare_campaign(&workload, &cfg);
    let golden = prepared.golden();
    let faults = [bera_goofi::FaultSpec {
        location_index: 0,
        inject_at: golden.total_instructions,
    }];
    let plan = plan_campaign(&faults, &cfg, golden);
    assert_eq!(plan.action(0), PlanAction::Simulate);
}
