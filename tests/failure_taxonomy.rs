//! Targeted injections exercising every class of the Section 4.1 taxonomy
//! through the public API.

use bera::goofi::classify::{Outcome, Severity};
use bera::goofi::experiment::{golden_run, run_experiment, FaultSpec, LoopConfig};
use bera::goofi::workload::Workload;
use bera::tcpu::edm::ErrorMechanism;
use bera::tcpu::scan::{catalog, BitLocation};

fn loc(pred: impl Fn(&BitLocation) -> bool) -> usize {
    catalog().iter().position(pred).expect("location exists")
}

fn inject(workload: &Workload, iterations: usize, location: usize, at_fraction: f64) -> Outcome {
    let cfg = LoopConfig::short(iterations);
    let golden = golden_run(workload, &cfg);
    let rec = run_experiment(
        workload,
        &cfg,
        &golden,
        FaultSpec {
            location_index: location,
            inject_at: (golden.total_instructions as f64 * at_fraction) as u64,
        },
        false,
    );
    rec.outcome
}

#[test]
fn severe_failure_from_high_exponent_x_corruption() {
    let w = Workload::algorithm_one();
    let location = loc(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 29 }));
    match inject(&w, 200, location, 0.5) {
        Outcome::ValueFailure(s) => assert!(s.is_severe(), "got {s}"),
        other => panic!("expected severe value failure, got {other:?}"),
    }
}

#[test]
fn algorithm_two_downgrades_the_same_fault() {
    let w = Workload::algorithm_two();
    let location = loc(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 29 }));
    match inject(&w, 200, location, 0.5) {
        Outcome::ValueFailure(s) => {
            assert!(!s.is_severe(), "recovery must downgrade to minor, got {s}");
        }
        Outcome::Latent | Outcome::Overwritten => {}
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn insignificant_failure_from_low_mantissa_x_corruption() {
    let w = Workload::algorithm_one();
    let location = loc(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 2 }));
    match inject(&w, 120, location, 0.5) {
        Outcome::ValueFailure(s) => assert_eq!(s, Severity::Insignificant),
        Outcome::Overwritten => {} // flip landed in the store->load shadow
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn latent_error_in_supervisor_state() {
    let w = Workload::algorithm_one();
    let location = loc(|l| matches!(l, BitLocation::Epc { bit: 12 }));
    assert_eq!(inject(&w, 60, location, 0.3), Outcome::Latent);
}

#[test]
fn overwritten_error_in_scratch_register_between_iterations() {
    // r10 is rewritten by the scrub prologue every iteration; a flip right
    // before that write leaves no trace.
    let w = Workload::algorithm_one();
    let cfg = LoopConfig::short(60);
    let golden = golden_run(&w, &cfg);
    let location = loc(|l| matches!(l, BitLocation::Reg { index: 10, bit: 3 }));
    // Inject exactly at a yield boundary: the next scrub reinitialises r10.
    let rec = run_experiment(
        &w,
        &cfg,
        &golden,
        FaultSpec {
            location_index: location,
            inject_at: 5,
        },
        false,
    );
    assert!(
        matches!(rec.outcome, Outcome::Overwritten | Outcome::Latent),
        "got {:?}",
        rec.outcome
    );
}

#[test]
fn stack_pointer_corruption_raises_storage_error() {
    let w = Workload::algorithm_one();
    // Flip a mid bit of r14 while it holds the stack pointer: the access
    // leaves the guarded window but stays in the stack segment.
    let location = loc(|l| matches!(l, BitLocation::Reg { index: 14, bit: 11 }));
    // Hit the window between the sp materialisation and the stack store.
    let cfg = LoopConfig::short(60);
    let golden = golden_run(&w, &cfg);
    let mut saw_storage_error = false;
    for at in (0..200).map(|k| golden.total_instructions / 2 + k) {
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: location,
                inject_at: at,
            },
            false,
        );
        if rec.outcome == Outcome::Detected(ErrorMechanism::StorageError) {
            saw_storage_error = true;
            break;
        }
    }
    assert!(saw_storage_error, "sp corruption must trip STORAGE ERROR");
}

#[test]
fn signature_register_corruption_raises_control_flow_error() {
    let w = Workload::algorithm_one();
    let cfg = LoopConfig::short(60);
    let golden = golden_run(&w, &cfg);
    let location = loc(|l| matches!(l, BitLocation::SigReg { bit: 5 }));
    let mut saw_cfe = false;
    // Taken branches reset the run-time signature, so only flips shortly
    // before an executed (fall-through) sig check are effective — scan a
    // wide window of injection times.
    for at in (0..600).map(|k| golden.total_instructions / 3 + k) {
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: location,
                inject_at: at,
            },
            false,
        );
        if rec.outcome == Outcome::Detected(ErrorMechanism::ControlFlowError) {
            saw_cfe = true;
            break;
        }
    }
    assert!(saw_cfe, "signature corruption must trip CONTROL FLOW ERROR");
}

#[test]
fn edac_syndrome_corruption_raises_data_error() {
    let w = Workload::algorithm_one();
    let location = loc(|l| matches!(l, BitLocation::EdacSyndrome { bit: 0 }));
    assert_eq!(
        inject(&w, 120, location, 0.4),
        Outcome::Detected(ErrorMechanism::DataError)
    );
}

#[test]
fn output_port_corruption_is_a_value_failure() {
    let w = Workload::algorithm_one();
    let cfg = LoopConfig::short(80);
    let golden = golden_run(&w, &cfg);
    let location = loc(|l| matches!(l, BitLocation::PortOut { port: 2, bit: 30 }));
    // The port latch holds u_lim between iterations; flips there reach the
    // actuator directly (until the next out instruction overwrites them).
    let rec = run_experiment(
        &w,
        &cfg,
        &golden,
        FaultSpec {
            location_index: location,
            inject_at: golden.total_instructions / 2,
        },
        false,
    );
    assert!(
        rec.outcome.is_value_failure(),
        "port corruption bypasses all checks: {:?}",
        rec.outcome
    );
}
