//! End-to-end SCIFI campaigns through the public API: the paper's
//! qualitative claims must hold on small, fast campaigns.

use bera::goofi::campaign::{run_scifi_campaign, CampaignConfig, FaultList};
use bera::goofi::classify::{Outcome, Severity};
use bera::goofi::experiment::{golden_run, LoopConfig};
use bera::goofi::table::{tabulate, ComparisonTable, RowKind};
use bera::goofi::workload::Workload;
use bera::tcpu::scan::CpuPart;

fn campaign(workload: &Workload, faults: usize, seed: u64) -> bera::goofi::CampaignResult {
    let mut cfg = CampaignConfig::quick(faults, seed);
    cfg.loop_cfg = LoopConfig::short(80);
    cfg.threads = 0; // use all cores
    run_scifi_campaign(workload, &cfg)
}

#[test]
fn every_fault_gets_exactly_one_outcome() {
    let r = campaign(&Workload::algorithm_one(), 150, 1);
    assert_eq!(r.records.len(), 150);
    let t = tabulate(&r);
    assert_eq!(t.non_effective(None) + t.effective(None), 150);
}

#[test]
fn fault_lists_cover_both_cpu_parts() {
    let r = campaign(&Workload::algorithm_one(), 200, 2);
    let cache = r
        .records
        .iter()
        .filter(|x| x.part == CpuPart::Cache)
        .count();
    let regs = r
        .records
        .iter()
        .filter(|x| x.part == CpuPart::Registers)
        .count();
    assert!(cache > 0 && regs > 0);
    assert_eq!(cache + regs, 200);
}

#[test]
fn most_errors_are_non_effective() {
    // Section 4.2: the vast majority of injected faults have no effect on
    // the output (latent or overwritten).
    let r = campaign(&Workload::algorithm_one(), 300, 3);
    let t = tabulate(&r);
    assert!(
        t.non_effective(None) * 2 > t.total_faults(),
        "non-effective {} of {}",
        t.non_effective(None),
        t.total_faults()
    );
}

#[test]
fn detections_happen_and_are_attributed() {
    let r = campaign(&Workload::algorithm_one(), 300, 4);
    let detected = r
        .records
        .iter()
        .filter(|x| matches!(x.outcome, Outcome::Detected(_)))
        .count();
    assert!(detected > 0, "some faults must be detected by the EDMs");
}

#[test]
fn comparison_table_is_consistent() {
    let a = campaign(&Workload::algorithm_one(), 150, 5);
    let b = campaign(&Workload::algorithm_two(), 150, 5);
    let cmp = ComparisonTable::new(&a, &b);
    for t in [&cmp.first, &cmp.second] {
        let severity_total = t.severity_count(Severity::Permanent, None)
            + t.severity_count(Severity::SemiPermanent, None)
            + t.severity_count(Severity::Transient, None)
            + t.severity_count(Severity::Insignificant, None);
        assert_eq!(severity_total, t.wrong_results(None));
        assert_eq!(
            t.count(RowKind::SevereWrong, None) + t.count(RowKind::MinorWrong, None),
            t.wrong_results(None)
        );
    }
}

#[test]
fn campaigns_are_reproducible_across_invocations() {
    let a = campaign(&Workload::algorithm_one(), 100, 6);
    let b = campaign(&Workload::algorithm_one(), 100, 6);
    let oa: Vec<_> = a.records.iter().map(|x| x.outcome).collect();
    let ob: Vec<_> = b.records.iter().map(|x| x.outcome).collect();
    assert_eq!(oa, ob);
}

#[test]
fn fault_list_respects_the_golden_run_length() {
    let w = Workload::algorithm_one();
    let cfg = LoopConfig::short(40);
    let golden = golden_run(&w, &cfg);
    let list = FaultList::sample(500, 9, golden.total_instructions);
    assert!(list
        .faults
        .iter()
        .all(|f| f.inject_at < golden.total_instructions));
}

#[test]
fn parity_cache_ablation_shifts_failures_to_detections() {
    let w = Workload::algorithm_one();
    let mut cfg = CampaignConfig::quick(250, 10);
    cfg.loop_cfg = LoopConfig::short(80);
    cfg.threads = 0;
    let unprotected = run_scifi_campaign(&w, &cfg);
    cfg.loop_cfg.parity_cache = true;
    let protected = run_scifi_campaign(&w, &cfg);

    let uwr = |r: &bera::goofi::CampaignResult| {
        r.records
            .iter()
            .filter(|x| x.outcome.is_value_failure() && x.part == CpuPart::Cache)
            .count()
    };
    assert!(
        uwr(&protected) <= uwr(&unprotected),
        "parity must not increase cache value failures"
    );
    let data_errors = protected
        .records
        .iter()
        .filter(|x| {
            matches!(
                x.outcome,
                Outcome::Detected(bera::tcpu::edm::ErrorMechanism::DataError)
            )
        })
        .count();
    assert!(data_errors > 0, "parity detections must appear");
}
