//! The quarantine suite: a campaign containing deliberately sabotaged
//! experiments must still run to completion.
//!
//! The supervisor's contract (`DESIGN.md` § "Supervised execution") is
//! that per-experiment harness failures — panics and wall-clock deadline
//! overruns — are contained, retried once at stride 0, and then
//! quarantined as [`Outcome::HarnessFailure`] records, while every
//! *healthy* experiment produces a record bit-identical to an
//! unsupervised run. These tests drive that contract end to end with a
//! [`ChaosHarness`] sabotaging chosen fault indices inside the
//! containment boundary: the campaign completes, the streaming store
//! records the quarantines, telemetry counts retries and failures, and
//! all untouched records match the baseline byte for byte.

use bera_goofi::campaign::{prepare_campaign, run_scifi_campaign_observed, CampaignConfig};
use bera_goofi::observer::Telemetry;
use bera_goofi::store::{load_store, JsonlStore, StoreHeader};
use bera_goofi::workload::Workload;
use bera_goofi::{ChaosHarness, HarnessCause, Outcome, SupervisorConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "bera-quarantine-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

/// The unsupervised reference: same campaign, no containment.
fn baseline(workload: &Workload, cfg: &CampaignConfig) -> Vec<String> {
    let mut bare = cfg.clone();
    bare.supervisor = None;
    run_scifi_campaign_observed(workload, &bare, &bera_goofi::observer::NullObserver)
        .records
        .iter()
        .map(|r| serde_json::to_string(r).expect("serialize record"))
        .collect()
}

#[test]
fn sabotaged_campaign_completes_with_quarantine_records() {
    let workload = Workload::algorithm_one();
    let panic_indices: BTreeSet<usize> = [3, 9].into_iter().collect();
    let stall_indices: BTreeSet<usize> = [5].into_iter().collect();

    let mut cfg = CampaignConfig::quick(16, 7);
    // Chaos sabotage keys on fault-list indices and only fires inside the
    // containment boundary of an *executed* experiment; def/use pruning
    // would classify some target indices analytically and dodge the trap.
    // The lockstep batch engine is off for the same reason: chaos runs
    // bypass it, so the unsupervised baseline must execute scalar too for
    // the byte-identity comparison below to be meaningful.
    cfg.prune = false;
    cfg.batch_width = 0;
    cfg.supervisor = Some(SupervisorConfig {
        // Generous for a healthy short(60) experiment (sub-millisecond),
        // far below the chaos stall, so only sabotage trips it.
        deadline: Some(Duration::from_millis(250)),
        chaos: Some(Arc::new(
            ChaosHarness::panicking(panic_indices.iter().copied())
                .stalling(stall_indices.iter().copied(), Duration::from_secs(1)),
        )),
    });

    let path = temp_path("sabotage");
    let prepared = prepare_campaign(&workload, &cfg);
    let header = StoreHeader::new(workload.name(), &cfg, prepared.golden());
    let store = JsonlStore::create(&path, &header).expect("create store");
    let result = prepared.run(&store);
    store.finish().expect("finish store");

    // The campaign completed: one record per fault, despite the sabotage.
    assert_eq!(result.records.len(), cfg.faults);

    let reference = baseline(&workload, &cfg);
    for (i, record) in result.records.iter().enumerate() {
        if panic_indices.contains(&i) {
            assert_eq!(record.outcome, Outcome::HarnessFailure(HarnessCause::Panic));
            let detail = record.harness_error.as_deref().expect("panic detail");
            assert!(detail.contains("forced panic"), "{detail}");
        } else if stall_indices.contains(&i) {
            assert_eq!(
                record.outcome,
                Outcome::HarnessFailure(HarnessCause::Deadline)
            );
            let detail = record.harness_error.as_deref().expect("deadline detail");
            assert!(detail.contains("wall-clock deadline"), "{detail}");
        } else {
            // Every healthy record is bit-identical to the unsupervised run.
            assert_eq!(
                serde_json::to_string(record).expect("serialize record"),
                reference[i],
                "supervision perturbed healthy fault index {i}"
            );
        }
    }

    // The persisted store holds the same quarantine records.
    let loaded = load_store(&path).expect("reload store");
    assert!(loaded.is_complete());
    let stored = loaded.into_result().expect("complete store");
    for &i in panic_indices.iter().chain(&stall_indices) {
        assert!(
            stored.records[i].outcome.is_harness_failure(),
            "store must record the quarantine at index {i}"
        );
        assert!(stored.records[i].harness_error.is_some());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn one_shot_panic_is_retried_and_classifies_normally() {
    let workload = Workload::algorithm_one();
    let mut cfg = CampaignConfig::quick(12, 3);
    // Sabotage only fires for simulated experiments — see above.
    cfg.prune = false;
    cfg.batch_width = 0;
    cfg.supervisor = Some(SupervisorConfig {
        deadline: None,
        chaos: Some(Arc::new(ChaosHarness::panicking_once([4]))),
    });

    let telemetry = Telemetry::new(cfg.faults);
    let result = run_scifi_campaign_observed(&workload, &cfg, &telemetry);

    let reference = baseline(&workload, &cfg);
    for (i, record) in result.records.iter().enumerate() {
        if i == 4 {
            // The sabotaged fault recovered on the stride-0 retry: its
            // classification matches the baseline exactly, but a full
            // replay never prunes, so `pruned_at` is honestly `None`.
            assert!(!record.outcome.is_harness_failure());
            assert!(record.pruned_at.is_none(), "stride-0 retry cannot prune");
            let mut base: bera_goofi::ExperimentRecord =
                serde_json::from_str(&reference[i]).expect("parse baseline");
            base.pruned_at = None;
            assert_eq!(
                serde_json::to_string(record).expect("serialize record"),
                serde_json::to_string(&base).expect("serialize baseline"),
                "the retried record must classify identically to the baseline"
            );
        } else {
            assert_eq!(
                serde_json::to_string(record).expect("serialize record"),
                reference[i],
                "untouched fault index {i} must be bit-identical"
            );
        }
    }

    let snap = telemetry.snapshot();
    assert_eq!(snap.retried, 1, "exactly one attempt was retried");
    assert_eq!(snap.harness_failures, 0, "nothing was quarantined");
    assert_eq!(snap.completed, cfg.faults);
}

#[test]
fn parallel_sabotaged_campaign_matches_serial() {
    let workload = Workload::algorithm_one();
    let chaos = Arc::new(ChaosHarness::panicking([1, 6, 13]));
    let mut cfg = CampaignConfig::quick(18, 5);
    // Sabotage only fires for simulated experiments — see above.
    cfg.prune = false;
    cfg.batch_width = 0;
    cfg.supervisor = Some(SupervisorConfig {
        deadline: None,
        chaos: Some(Arc::clone(&chaos)),
    });

    cfg.threads = 1;
    let serial = run_scifi_campaign_observed(&workload, &cfg, &bera_goofi::observer::NullObserver);
    cfg.threads = 4;
    let telemetry = Telemetry::new(cfg.faults);
    let parallel = run_scifi_campaign_observed(&workload, &cfg, &telemetry);

    let so: Vec<String> = serial
        .records
        .iter()
        .map(|r| serde_json::to_string(r).expect("serialize"))
        .collect();
    let po: Vec<String> = parallel
        .records
        .iter()
        .map(|r| serde_json::to_string(r).expect("serialize"))
        .collect();
    assert_eq!(so, po, "sharding must not change quarantine results");
    assert_eq!(telemetry.snapshot().harness_failures, 3);
    assert_eq!(
        parallel
            .records
            .iter()
            .filter(|r| r.outcome.is_harness_failure())
            .count(),
        3
    );
}
