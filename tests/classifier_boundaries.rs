//! Regression pins for the failure-severity classifier at its exact
//! boundaries (paper § 5: permanent / semi-permanent / transient /
//! insignificant, Figures 7–9).
//!
//! The paper's numbers depend on three knife-edges: the 0.1° strong-
//! deviation threshold (strictly greater-than), the transient horizon
//! (a strong span of `horizon` iterations is already *semi*-permanent),
//! and the actuator-limit tolerance for the permanent class. These tests
//! sit directly on each edge so any silent reinterpretation of a
//! comparison operator shows up as a failure here, not as a mysteriously
//! shifted Table 4.

use bera_goofi::classify::{Classifier, Severity};

fn c() -> Classifier {
    Classifier::paper()
}

fn constant(v: f64, n: usize) -> Vec<f64> {
    vec![v; n]
}

#[test]
fn paper_parameters_are_pinned() {
    let c = c();
    assert_eq!(c.threshold, 0.1);
    assert_eq!(c.lo, 0.0);
    assert_eq!(c.hi, 70.0);
    assert_eq!(c.limit_eps, 1e-3);
    assert_eq!(c.transient_horizon, 32);
}

// ---------------------------------------------------------------------------
// The 0.1° threshold is strict: deviation == threshold is NOT strong.
// ---------------------------------------------------------------------------

#[test]
fn deviation_exactly_at_threshold_is_insignificant() {
    // golden 0.0 keeps the arithmetic exact: |0.1 - 0.0| is the same f64
    // as the 0.1 threshold literal, and `d > threshold` must be false.
    let g = constant(0.0, 100);
    let mut o = g.clone();
    for v in o.iter_mut().take(50) {
        *v = 0.1;
    }
    assert_eq!(c().classify_values(&g, &o), Severity::Insignificant);
}

#[test]
fn deviation_one_ulp_above_threshold_is_strong() {
    let just_above = f64::from_bits(0.1f64.to_bits() + 1);
    let g = constant(0.0, 100);
    let mut o = g.clone();
    o[40] = just_above;
    assert_ne!(c().classify_values(&g, &o), Severity::Insignificant);
}

// ---------------------------------------------------------------------------
// Transient horizon: span < 32 is transient, span == 32 is semi-permanent.
// ---------------------------------------------------------------------------

fn spanned(first: usize, last: usize) -> Severity {
    let g = constant(20.0, 650);
    let mut o = g.clone();
    o[first] = 25.0; // strong but far from both actuator limits
    o[last] = 25.0;
    c().classify_values(&g, &o)
}

#[test]
fn strong_span_just_inside_horizon_is_transient() {
    // last - first == 31 < transient_horizon.
    assert_eq!(spanned(100, 131), Severity::Transient);
}

#[test]
fn strong_span_at_horizon_is_semi_permanent() {
    // last - first == 32, no longer "rapidly converging".
    assert_eq!(spanned(100, 132), Severity::SemiPermanent);
}

#[test]
fn single_strong_iteration_is_transient() {
    assert_eq!(spanned(300, 300), Severity::Transient);
}

// ---------------------------------------------------------------------------
// Permanent requires the tail pinned at a limit to within limit_eps.
// ---------------------------------------------------------------------------

fn pinned_tail(tail_value: f64) -> Severity {
    let g = constant(20.0, 650);
    let mut o = g.clone();
    for v in o.iter_mut().skip(400) {
        *v = tail_value;
    }
    c().classify_values(&g, &o)
}

#[test]
fn tail_exactly_at_upper_limit_is_permanent() {
    assert_eq!(pinned_tail(70.0), Severity::Permanent);
}

#[test]
fn tail_exactly_at_lower_limit_is_permanent() {
    assert_eq!(pinned_tail(0.0), Severity::Permanent);
}

#[test]
fn tail_within_limit_eps_of_limit_is_permanent() {
    // |70 - 69.9995| = 5e-4 <= 1e-3: still "at the limit".
    assert_eq!(pinned_tail(69.9995), Severity::Permanent);
    assert_eq!(pinned_tail(5e-4), Severity::Permanent);
}

#[test]
fn tail_just_outside_limit_eps_is_not_permanent() {
    // |70 - 69.998| = 2e-3 > 1e-3: a long strong span, but not pinned.
    assert_eq!(pinned_tail(69.998), Severity::SemiPermanent);
    assert_eq!(pinned_tail(0.002), Severity::SemiPermanent);
}

#[test]
fn pinned_only_after_first_strong_iteration_counts_from_there() {
    // The pin test covers observed[first..]: one early strong excursion
    // away from the limit defeats the permanent classification even if
    // the rest of the tail is pinned.
    let g = constant(20.0, 650);
    let mut o = g.clone();
    o[100] = 25.0; // strong, not at a limit
    for v in o.iter_mut().skip(400) {
        *v = 70.0;
    }
    assert_eq!(c().classify_values(&g, &o), Severity::SemiPermanent);
}

// ---------------------------------------------------------------------------
// Non-finite outputs and bit-level classification.
// ---------------------------------------------------------------------------

#[test]
fn non_finite_observed_output_is_a_strong_deviation() {
    let g = constant(20.0, 650);
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut o = g.clone();
        o[200] = bad;
        assert_eq!(
            c().classify_values(&g, &o),
            Severity::Transient,
            "single non-finite output at {bad}"
        );
    }
}

#[test]
fn identical_bit_sequences_are_not_a_value_failure() {
    let g: Vec<u32> = (0..650)
        .map(|k| (20.0f32 + k as f32 * 1e-4).to_bits())
        .collect();
    assert_eq!(c().classify_bits(&g, &g.clone()), None);
}

#[test]
fn lsb_flip_is_detected_but_insignificant() {
    let g: Vec<u32> = constant(20.0, 650)
        .iter()
        .map(|&v| (v as f32).to_bits())
        .collect();
    let mut o = g.clone();
    o[10] ^= 1; // one ulp of f32 20.0 — far below the 0.1° threshold
    assert_eq!(c().classify_bits(&g, &o), Some(Severity::Insignificant));
}
