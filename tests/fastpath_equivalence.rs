//! The fast-replay (predecoded block execution) equivalence suite.
//!
//! The block engine's contract (`DESIGN.md` § 8j) is that fast replay is a
//! pure wall-clock optimisation: a campaign run with the predecoded block
//! cache, the dirty-delta arena restore and the sparse convergence compare
//! produces records **byte-identical** to the same campaign stepping every
//! instruction through the scalar path. These tests drive that contract
//! end to end:
//!
//! * fixed-seed campaigns on both algorithms under all five fault models
//!   are compared record for record — serialized JSON, so *every* field
//!   (outcome, deviation, latency, provenance, outputs) must match;
//! * the single-bit campaign is additionally pinned under `--no-prune` and
//!   `--no-batch` layer configurations, so the equivalence does not lean
//!   on any other optimisation layer masking a divergence;
//! * property tests show (a) the dirty-delta arena restore lands on the
//!   same architectural state as a deep clone, byte for byte, and (b) a
//!   host write into program text invalidates the predecoded image and
//!   the machine falls back to the scalar path with identical outcomes;
//! * a store aimed at program text raises the same trap on both paths —
//!   the self-modifying-store escape hatch of the block engine.

use bera_goofi::campaign::{run_scifi_campaign, CampaignConfig};
use bera_goofi::experiment::FaultModel;
use bera_goofi::workload::Workload;
use bera_tcpu::asm::assemble;
use bera_tcpu::machine::{Machine, RunExit};
use bera_tcpu::mem;
use proptest::prelude::*;

const MODELS: [FaultModel; 5] = [
    FaultModel::SingleBit,
    FaultModel::AdjacentDoubleBit,
    FaultModel::Intermittent {
        reassert_iterations: 2,
    },
    FaultModel::StuckAt { value: true },
    FaultModel::Burst { width: 3 },
];

/// Runs the campaign and serializes every record — byte-level identity is
/// the equivalence the block engine promises, so nothing weaker than the
/// full JSON encoding will do.
fn records_json(workload: &Workload, cfg: &CampaignConfig) -> Vec<String> {
    run_scifi_campaign(workload, cfg)
        .records
        .iter()
        .map(|r| serde_json::to_string(r).expect("records serialize"))
        .collect()
}

/// Asserts that `cfg` classifies identically with fast replay on and off.
fn assert_fastpath_identical(workload: &Workload, cfg: &CampaignConfig, label: &str) {
    let mut fast_cfg = cfg.clone();
    fast_cfg.loop_cfg.fast_replay = true;
    let mut scalar_cfg = cfg.clone();
    scalar_cfg.loop_cfg.fast_replay = false;
    let fast = records_json(workload, &fast_cfg);
    let scalar = records_json(workload, &scalar_cfg);
    assert_eq!(fast.len(), scalar.len(), "{label}: record counts differ");
    for (i, (f, s)) in fast.iter().zip(&scalar).enumerate() {
        assert_eq!(f, s, "{label}: fault index {i} diverges");
    }
}

#[test]
fn both_algorithms_all_models_are_bit_identical() {
    for workload in [Workload::algorithm_one(), Workload::algorithm_two()] {
        for model in MODELS {
            let mut cfg = CampaignConfig::quick(60, 41);
            cfg.fault_model = model;
            assert_fastpath_identical(&workload, &cfg, &format!("{} / {model:?}", workload.name()));
        }
    }
}

#[test]
fn single_bit_is_bit_identical_across_layer_configurations() {
    let workload = Workload::algorithm_one();
    let base = CampaignConfig::quick(300, 42);

    assert_fastpath_identical(&workload, &base, "default layers");

    let mut no_prune = base.clone();
    no_prune.prune = false;
    assert_fastpath_identical(&workload, &no_prune, "--no-prune");

    let mut no_batch = base.clone();
    no_batch.batch_width = 0;
    assert_fastpath_identical(&workload, &no_batch, "--no-batch");
}

// ---------------------------------------------------------------------------
// Machine-level properties: arena restore and block invalidation.
// ---------------------------------------------------------------------------

/// A small self-contained loop in the test ISA: memory traffic, a call, a
/// compare-and-branch and a periodic `yield`, so both the block engine and
/// the dirty log see realistic churn.
const LOOP_SRC: &str = r#"
    .data 0x10000
    acc: .word 1
    .text
    start:
        li r1, 0x10000
        li r2, 0
        li r3, 25
    loop:
        ld r4, [r1+0]
        addi r4, r4, 3
        mul r5, r4, r4
        and r5, r5, r4
        st r4, [r1+0]
        call bump
        cmp r2, r3
        blt loop
        yield
        li r2, 0
        jmp loop
    bump:
        addi r2, r2, 1
        ret
"#;

fn loop_machine() -> Machine {
    let program = assemble(LOOP_SRC).expect("test program assembles");
    let mut m = Machine::new();
    m.load_program(&program);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Dirty-delta restore equals deep-clone restore: an arena machine
    /// that diverged arbitrarily from its resident checkpoint, restored
    /// onto a later golden checkpoint by undoing only its dirty set plus
    /// the golden write window, is architecturally identical to a deep
    /// clone of that checkpoint — and replays bit-identically afterwards.
    #[test]
    fn dirty_delta_restore_equals_deep_clone(
        warmup in 1u64..2_000,
        diverge in 1u64..2_000,
        advance in 1u64..2_000,
        poke_slot in 0u32..64,
        poke_word in any::<u32>(),
    ) {
        let mut golden = loop_machine();
        golden.run(warmup);
        let resident = golden.clone();

        // The arena diverges from the resident checkpoint: one poked word
        // (any value — traps along the way are fine) plus its own run.
        let mut arena = resident.clone();
        arena.begin_dirty_log();
        prop_assert!(arena.poke_word(mem::RAM_BASE + poke_slot * 4, poke_word));
        arena.run(diverge);

        // The golden run advances to a later checkpoint; its dirty log is
        // exactly the write window `restore_delta_from` expects.
        let mut later = resident.clone();
        later.begin_dirty_log();
        later.run(advance);
        let window: Vec<u32> = later.dirty_words().expect("log active").to_vec();

        arena.restore_delta_from(&later, &[window]);
        prop_assert!(arena.state_equals(&later));
        prop_assert_eq!(arena.instr_count(), later.instr_count());

        // The restored machine is indistinguishable from a deep clone.
        let mut deep = later.clone();
        prop_assert_eq!(arena.run(3_000), deep.run(3_000));
        prop_assert!(arena.state_equals(&deep));
        prop_assert_eq!(arena.instr_count(), deep.instr_count());
    }

    /// (b) A host write into program text invalidates the predecoded
    /// image: the fast machine refuses to replay another block (its block
    /// counter freezes) and falls back to the scalar path, staying
    /// bit-identical to an always-scalar twin through and past the patch.
    #[test]
    fn rom_patch_invalidates_blocks_and_falls_back_scalar(
        pre in 1u64..1_500,
        post in 1u64..3_000,
        slot in 0u32..24,
        patch_sel in 0usize..3,
    ) {
        let patch = [0xFFFF_FFFFu32, 0, 0x0000_0001][patch_sel];
        let mut fast = loop_machine();
        let mut scalar = loop_machine();
        scalar.set_fast_replay(false);

        prop_assert_eq!(fast.run(pre), scalar.run(pre));
        prop_assert!(fast.state_equals(&scalar));

        // Patch the same ROM word on both machines. Whether or not the
        // slot is on the executed path, and whether or not the word still
        // decodes, behaviour must stay identical — the fast machine just
        // stops replaying blocks.
        let addr = mem::ROM_BASE + slot * 4;
        fast.poke_rom_word(addr, patch);
        scalar.poke_rom_word(addr, patch);
        let blocks_at_patch = fast.block_instructions();

        prop_assert_eq!(fast.run(post), scalar.run(post));
        prop_assert!(fast.state_equals(&scalar));
        prop_assert_eq!(fast.instr_count(), scalar.instr_count());
        prop_assert_eq!(
            fast.block_instructions(),
            blocks_at_patch,
            "a stale table must not replay another block"
        );
    }
}

/// A store aimed at program text — the self-modifying-store case — raises
/// the same trap at the same instruction on both paths: ROM is not
/// writable data memory, so the EDM fires instead of silently desyncing
/// the predecoded image.
#[test]
fn store_into_program_text_traps_identically_on_both_paths() {
    const SELF_MOD_SRC: &str = r#"
        .text
        start:
            li r1, 0x1000
            li r4, 7
            st r4, [r1+0]
            yield
    "#;
    let program = assemble(SELF_MOD_SRC).expect("test program assembles");
    let mut fast = Machine::new();
    fast.load_program(&program);
    let mut scalar = Machine::new();
    scalar.load_program(&program);
    scalar.set_fast_replay(false);

    let fast_exit = fast.run(100);
    let scalar_exit = scalar.run(100);
    assert_eq!(fast_exit, scalar_exit);
    assert!(
        matches!(fast_exit, RunExit::Trap(_)),
        "a ROM store must trap, got {fast_exit:?}"
    );
    assert!(fast.state_equals(&scalar));
    assert_eq!(fast.instr_count(), scalar.instr_count());
}
