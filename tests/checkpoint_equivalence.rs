//! Equivalence of the checkpointed campaign engine with from-reset replay.
//!
//! The fast path (golden-run checkpoints + convergence pruning, see
//! `DESIGN.md` § "Campaign execution engine") claims to be a pure
//! optimisation: for any fault, the classified outcome must be
//! bit-identical to re-executing the whole run from reset. These tests
//! check that claim directly over sampled fault lists on both workloads,
//! and property-test the convergence filter's soundness precondition: a
//! machine that differs from the golden checkpoint in *any* scan-chain bit
//! or memory word must never compare as converged.

use bera_goofi::campaign::FaultList;
use bera_goofi::experiment::{golden_run, run_experiment_with_model, FaultModel, LoopConfig};
use bera_goofi::workload::Workload;
use bera_tcpu::mem::{RAM_BASE, RAM_SIZE, STACK_BASE, STACK_SIZE};
use bera_tcpu::scan;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Runs `faults` sampled faults under both engines and asserts every
/// observable field of every record is identical. When `require_prunes`
/// is set, the fault set must exercise convergence pruning (so the fast
/// path is actually tested); models that legitimately never converge —
/// stuck-at, or intermittents whose re-assertions outlive the run — pass
/// `false`. Returns how many checkpointed records pruned.
fn assert_equivalent(
    workload: &Workload,
    faults: usize,
    seed: u64,
    model: FaultModel,
    require_prunes: bool,
) -> usize {
    let mut from_reset = LoopConfig::short(60);
    from_reset.checkpoint_stride = 0;
    let mut checkpointed = LoopConfig::short(60);
    checkpointed.checkpoint_stride = 5;

    let golden_plain = golden_run(workload, &from_reset);
    let golden_ckpt = golden_run(workload, &checkpointed);
    assert_eq!(
        golden_plain.outputs, golden_ckpt.outputs,
        "checkpoint capture must not perturb the golden run"
    );
    assert_eq!(
        golden_plain.total_instructions,
        golden_ckpt.total_instructions
    );
    assert!(!golden_ckpt.checkpoints.is_empty());

    let list = FaultList::sample(faults, seed, golden_plain.total_instructions);
    let mut pruned = 0usize;
    for &fault in &list.faults {
        let slow =
            run_experiment_with_model(workload, &from_reset, &golden_plain, fault, model, true);
        let fast =
            run_experiment_with_model(workload, &checkpointed, &golden_ckpt, fault, model, true);
        assert_eq!(slow.outcome, fast.outcome, "fault {fault:?}");
        assert_eq!(slow.max_deviation, fast.max_deviation, "fault {fault:?}");
        assert_eq!(
            slow.first_strong_iteration, fast.first_strong_iteration,
            "fault {fault:?}"
        );
        assert_eq!(
            slow.detection_latency, fast.detection_latency,
            "fault {fault:?}"
        );
        assert_eq!(slow.outputs, fast.outputs, "fault {fault:?}");
        assert!(slow.pruned_at.is_none(), "stride 0 must never prune");
        pruned += usize::from(fast.pruned_at.is_some());
    }
    assert!(
        !require_prunes || pruned > 0,
        "the fault set must exercise convergence pruning, or this test is vacuous"
    );
    pruned
}

#[test]
fn checkpointed_engine_matches_from_reset_algorithm_one() {
    assert_equivalent(
        &Workload::algorithm_one(),
        220,
        17,
        FaultModel::SingleBit,
        true,
    );
}

#[test]
fn checkpointed_engine_matches_from_reset_algorithm_two() {
    assert_equivalent(
        &Workload::algorithm_two(),
        220,
        23,
        FaultModel::SingleBit,
        true,
    );
}

#[test]
fn checkpointed_engine_matches_from_reset_double_bit_model() {
    assert_equivalent(
        &Workload::algorithm_one(),
        200,
        5,
        FaultModel::AdjacentDoubleBit,
        true,
    );
}

#[test]
fn checkpointed_engine_matches_from_reset_intermittent_model() {
    // Re-assertions land at iteration boundaries counted from injection,
    // so they are stride-independent; once the budget is exhausted the
    // injector goes quiescent and pruning may resume. Equivalence must
    // hold either way, so pruning is not required here.
    assert_equivalent(
        &Workload::algorithm_one(),
        150,
        29,
        FaultModel::Intermittent {
            reassert_iterations: 2,
        },
        false,
    );
}

#[test]
fn checkpointed_engine_matches_from_reset_burst_model() {
    assert_equivalent(
        &Workload::algorithm_one(),
        150,
        31,
        FaultModel::Burst { width: 4 },
        true,
    );
}

#[test]
fn stuck_at_faults_are_never_pruned() {
    // A stuck-at fault re-applies at every iteration boundary, so the
    // machine can never be proven convergent with the golden run: the
    // injector never reports quiescent and pruning must never fire —
    // while stride equivalence still holds on the full unpruned replay.
    for value in [false, true] {
        let pruned = assert_equivalent(
            &Workload::algorithm_one(),
            60,
            37,
            FaultModel::StuckAt { value },
            false,
        );
        assert_eq!(
            pruned, 0,
            "stuck-at({value}) faults can still re-assert; pruning would be unsound"
        );
    }
}

#[test]
fn intermittent_never_prunes_while_reassertable() {
    // A re-assertion budget larger than the run's iteration count means
    // the fault never goes quiescent inside the run: no record may prune.
    let pruned = assert_equivalent(
        &Workload::algorithm_one(),
        60,
        41,
        FaultModel::Intermittent {
            reassert_iterations: 10_000,
        },
        false,
    );
    assert_eq!(
        pruned, 0,
        "pruning while a re-assertion is pending would diverge from from-reset replay"
    );
}

/// Golden context shared by the property tests (built once: the properties
/// only need checkpoints to perturb, not fresh runs).
fn shared_golden() -> &'static bera_goofi::GoldenRun {
    static GOLDEN: OnceLock<bera_goofi::GoldenRun> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let mut cfg = LoopConfig::short(24);
        cfg.checkpoint_stride = 4;
        golden_run(&Workload::algorithm_one(), &cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Flipping any single scan-chain bit of a checkpoint machine must
    /// break both the exact-equality proof and the digest filter, so
    /// convergence pruning can never fire against a state that differs in
    /// that bit.
    #[test]
    fn any_scan_bit_difference_defeats_convergence(
        raw_location in 0usize..1_000_000,
        raw_checkpoint in 0usize..1_000,
    ) {
        let golden = shared_golden();
        let ckpt = &golden.checkpoints[raw_checkpoint % golden.checkpoints.len()];
        let location = scan::catalog()[raw_location % scan::catalog().len()];
        let mut perturbed = ckpt.machine.clone();
        perturbed.scan_flip(location);
        prop_assert!(
            !perturbed.state_equals(&ckpt.machine),
            "scan flip of {location:?} must break state equality"
        );
        prop_assert_ne!(perturbed.state_digest(), ckpt.machine.state_digest());
    }

    /// Changing any RAM or stack word must likewise defeat both the
    /// equality proof and the digest filter.
    #[test]
    fn any_memory_word_difference_defeats_convergence(
        raw_word in 0usize..1_000_000,
        raw_checkpoint in 0usize..1_000,
        xor in 1u32..u32::MAX,
    ) {
        let golden = shared_golden();
        let ckpt = &golden.checkpoints[raw_checkpoint % golden.checkpoints.len()];
        let ram_words = (RAM_SIZE / 4) as usize;
        let stack_words = (STACK_SIZE / 4) as usize;
        let idx = raw_word % (ram_words + stack_words);
        let addr = if idx < ram_words {
            RAM_BASE + (idx as u32) * 4
        } else {
            STACK_BASE + ((idx - ram_words) as u32) * 4
        };
        let mut perturbed = ckpt.machine.clone();
        let current = perturbed.memory().read_word(addr).expect("mapped data word").0;
        prop_assert!(perturbed.poke_word(addr, current ^ xor));
        prop_assert!(
            !perturbed.state_equals(&ckpt.machine),
            "memory poke at {addr:#x} must break state equality"
        );
        prop_assert_ne!(perturbed.state_digest(), ckpt.machine.state_digest());
    }
}
