//! Vendored minimal stand-in for `serde_json`.
//!
//! Emits and parses JSON through the serde shim's [`serde::Value`] tree.
//! Matches the real crate where observable here: pretty output uses
//! two-space indentation, non-finite floats serialize as `null` (handled by
//! the `Serialize` impl for `f64`), and floats print in shortest
//! round-trip form.

use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for values producible by the serde shim; the `Result` return
/// mirrors the real crate's signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for values producible by the serde shim.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns an error describing the first syntax error or shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_value(&value).map_err(Error)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(v: &serde::Value, indent: usize, out: &mut String) {
    match v {
        serde::Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push(']');
        }
        serde::Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push('}');
        }
        other => write_scalar(other, out),
    }
}

fn write_value_compact(v: &serde::Value, out: &mut String) {
    match v {
        serde::Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(item, out);
            }
            out.push(']');
        }
        serde::Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value_compact(item, out);
            }
            out.push('}');
        }
        other => write_scalar(other, out),
    }
}

fn write_scalar(v: &serde::Value, out: &mut String) {
    match v {
        serde::Value::Null => out.push_str("null"),
        serde::Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        serde::Value::U64(n) => out.push_str(&n.to_string()),
        serde::Value::I64(n) => out.push_str(&n.to_string()),
        // Rust's float Display is shortest-round-trip, so values survive an
        // emit/parse cycle exactly. Non-finite floats never reach here (the
        // Serialize impl maps them to Null).
        serde::Value::F64(x) => out.push_str(&x.to_string()),
        serde::Value::Str(s) => write_string(s, out),
        serde::Value::Seq(_) => out.push_str("[]"),
        serde::Value::Map(_) => out.push_str("{}"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<serde::Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(serde::Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", serde::Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", serde::Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", serde::Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: serde::Value) -> Result<serde::Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<serde::Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(serde::Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(serde::Value::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<serde::Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(serde::Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(serde::Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    Error(format!("bad \\u escape at offset {}", self.pos))
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                Error(format!("bad \\u escape at offset {}", self.pos))
                            })?;
                            // Surrogate pairs are not needed for this
                            // workspace's output (escapes only cover control
                            // characters); reject them rather than mis-decode.
                            let c = char::from_u32(code).ok_or_else(|| {
                                Error(format!("unsupported \\u escape at offset {}", self.pos))
                            })?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at offset {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<serde::Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(serde::Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            // Floats of large magnitude Display without a `.` or exponent
            // (e.g. `-3.9e232` prints as 233 digits); fall back to f64 when
            // the integer overflows so such values still round-trip.
            text.parse::<i64>()
                .map(serde::Value::I64)
                .or_else(|_| text.parse::<f64>().map(serde::Value::F64))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(serde::Value::U64)
                .or_else(|_| text.parse::<f64>().map(serde::Value::F64))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scalar_roundtrip() {
        let json = super::to_string_pretty(&vec![1u32, 2, 3]).unwrap();
        let back: Vec<u32> = super::from_str(&json).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let xs = vec![0.1f64, -1.5e-8, 12345.6789, 2.0];
        let json = super::to_string(&xs).unwrap();
        let back: Vec<f64> = super::from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\"quoted\"\tand \\ backslash \u{1}".to_string();
        let json = super::to_string(&s).unwrap();
        let back: String = super::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(super::from_str::<bool>("true x").is_err());
    }
}
