//! Vendored minimal stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / `prop_assume!`,
//! strategies for primitive ranges and `any::<T>()`, `prop_map`,
//! `prop_oneof!`, `Just`, `prop::collection::vec`, `prop_recursive`, and a
//! single-character-class string strategy (`"[abc]{lo,hi}"`).
//!
//! Differences from the real crate, acceptable for these tests:
//! - cases are generated from a fixed per-test seed (derived from the test
//!   name), so runs are deterministic and reproducible;
//! - failing cases are reported but not shrunk.

/// The generator handed to strategies (deterministic, seeded per test).
pub type TestRng = rand::rngs::StdRng;

pub mod strategy {
    //! Strategy trait and combinators.

    use super::TestRng;
    use rand::RngExt;
    use std::sync::Arc;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a recursive strategy: up to `depth` nested applications
        /// of `recurse` over this leaf strategy. The `_desired_size` /
        /// `_expected_branch_size` tuning knobs of the real crate are
        /// accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                // Each level picks a leaf half the time, so expected depth
                // stays small while still exercising full nesting.
                current = Union::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
            }
            current
        }
    }

    /// Object-safe sampling, so strategies can live behind `Arc<dyn …>`.
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between type-erased alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_int_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range");
                    let unit: $t = rng.random();
                    self.start + (self.end - self.start) * unit
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty : $u:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    self.start.wrapping_add(rng.random_range(0..span) as $t)
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8: u8, i16: u16, i32: u32, i64: u64);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

    /// `&'static str` as a strategy: a single-character-class pattern of the
    /// form `[class]{lo,hi}` (the only regex shape this workspace uses).
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self);
            let len = rng.random_range(lo..hi + 1);
            (0..len)
                .map(|_| chars[rng.random_range(0..chars.len())])
                .collect()
        }
    }

    /// Parses `[class]{lo,hi}` into (member characters, lo, hi). The class
    /// supports `\x` escapes, `a-z` ranges, and a literal `-` first or last.
    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let body: Vec<char> = pattern
            .strip_prefix('[')
            .unwrap_or_else(|| panic!("unsupported string strategy pattern `{pattern}`"))
            .chars()
            .collect();
        // The class ends at the first *unescaped* `]` (the class itself may
        // contain `\[` and `\]`).
        let mut close = None;
        let mut j = 0;
        while j < body.len() {
            match body[j] {
                '\\' => j += 2,
                ']' => {
                    close = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        let close =
            close.unwrap_or_else(|| panic!("unsupported string strategy pattern `{pattern}`"));
        let rest: String = body[close + 1..].iter().collect();
        let mut chars: Vec<char> = Vec::new();
        let pending: Vec<char> = body[..close].to_vec();
        let mut i = 0;
        while i < pending.len() {
            let c = pending[i];
            if c == '\\' && i + 1 < pending.len() {
                chars.push(pending[i + 1]);
                i += 2;
            } else if c == '-' && !chars.is_empty() && i + 1 < pending.len() {
                let start = *chars.last().unwrap();
                let end = pending[i + 1];
                for code in (start as u32 + 1)..=(end as u32) {
                    chars.push(char::from_u32(code).unwrap());
                }
                i += 2;
            } else {
                chars.push(c);
                i += 1;
            }
        }
        let bounds = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported string strategy pattern `{pattern}`"));
        let (lo, hi) = bounds
            .split_once(',')
            .unwrap_or_else(|| panic!("unsupported repetition in `{pattern}`"));
        (
            chars,
            lo.trim().parse().expect("bad lower bound"),
            hi.trim().parse().expect("bad upper bound"),
        )
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitives.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value (full bit range for numerics).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    // Full bit patterns, including NaNs and infinities, like the real crate
    // can produce.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over all values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `prop::collection::vec`.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test configuration, case errors, and RNG construction.

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case failed an assertion: the test fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`: retried, not counted.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Builds the deterministic per-test generator: seeded by an FNV-1a
    /// hash of the test name, so each test sees its own stable sequence.
    #[must_use]
    pub fn new_rng(test_name: &str) -> super::TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        <super::TestRng as rand::SeedableRng>::seed_from_u64(h)
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            let mut rng = $crate::test_runner::new_rng(stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20),
                    "proptest `{}`: too many rejected cases",
                    stringify!($name),
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::sample(&strategy, &mut rng);
                let case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest `{}` failed: {}\n    case: {}",
                            stringify!($name),
                            msg,
                            case_desc,
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test (fails the case, not the
/// whole process, so the failing inputs are reported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?} != {:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?} != {:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (it is re-drawn and not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_class_pattern_samples_in_class() {
        let strat = "[a-c0-1 ,\\[\\]._:-]{0,20}";
        let mut rng = crate::test_runner::new_rng("string_class");
        for _ in 0..200 {
            let s = Strategy::sample(&strat, &mut rng);
            assert!(s.len() <= 20);
            for c in s.chars() {
                assert!(
                    matches!(
                        c,
                        'a'..='c' | '0' | '1' | ' ' | ',' | '[' | ']' | '.' | '_' | ':' | '-'
                    ),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(x in 0u32..10, v in prop::collection::vec(0usize..5, 1..4)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_just_produce_expected(v in prop_oneof![Just(1u8), Just(2u8), (3u8..5)]) {
            prop_assert!(matches!(v, 1 | 2 | 3 | 4));
        }
    }
}
