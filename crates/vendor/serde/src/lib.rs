//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a dependency-free replacement implementing exactly the surface the
//! repo uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus JSON export/import through the sibling `serde_json` shim.
//!
//! Instead of serde's visitor-based data model, everything round-trips
//! through an owned [`Value`] tree. Enum representation follows serde's
//! externally-tagged default: unit variants serialize as strings, data
//! variants as single-entry maps.

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a human-readable description of the mismatch.
pub type DeError = String;

/// An owned, JSON-shaped value tree — the intermediate data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a struct field by name.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a map or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{name}`")),
            other => Err(format!("expected map with field `{name}`, got {other:?}")),
        }
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns a description of the first shape or range mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(format!("expected unsigned integer, got {other:?}")),
                };
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| format!("integer {n} out of range"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| format!("integer {n} out of range"))?,
                    other => return Err(format!("expected integer, got {other:?}")),
                };
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // Mirrors serde_json: non-finite floats have no JSON representation
        // and become null.
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(format!("expected 2-element sequence, got {other:?}")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(format!("expected 3-element sequence, got {other:?}")),
        }
    }
}

impl<K, V> Serialize for std::collections::HashMap<K, V>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Keys may be non-strings (enums, tuples), so a map serializes as a
        // sequence of [key, value] pairs. Sorted by the key's rendering so
        // output is deterministic despite HashMap iteration order.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let kv = k.to_value();
                (format!("{kv:?}"), Value::Seq(vec![kv, v.to_value()]))
            })
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Seq(pairs.into_iter().map(|(_, p)| p).collect())
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|pair| <(K, V)>::from_value(pair))
                .collect(),
            other => Err(format!("expected sequence of pairs, got {other:?}")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {n}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let a: [u32; 2] = [9, 10];
        assert_eq!(<[u32; 2]>::from_value(&a.to_value()).unwrap(), a);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn field_lookup() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.field("a").unwrap(), &Value::U64(1));
        assert!(v.field("b").is_err());
    }
}
