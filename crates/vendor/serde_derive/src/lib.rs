//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! minimal serde stand-in (see `crates/vendor/serde`).
//!
//! Implemented without `syn`/`quote` (no crates.io access): the item is
//! parsed directly from the token stream and the impl is emitted as source
//! text. Supports the shapes this workspace uses — non-generic structs with
//! named fields, tuple structs, and enums with unit, tuple, and struct
//! variants (externally tagged, matching serde's default representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The field list of a struct or enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        generics: Vec<String>,
        fields: Fields,
    },
    Enum {
        name: String,
        generics: Vec<String>,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct {
            name,
            generics,
            fields,
        } => serialize_struct(&name, &generics, &fields),
        Item::Enum {
            name,
            generics,
            variants,
        } => serialize_enum(&name, &generics, &variants),
    };
    code.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct {
            name,
            generics,
            fields,
        } => deserialize_struct(&name, &generics, &fields),
        Item::Enum {
            name,
            generics,
            variants,
        } => deserialize_enum(&name, &generics, &variants),
    };
    code.parse().expect("generated Deserialize impl must parse")
}

/// `impl<A: serde::Trait, ...> serde::Trait for Name<A, ...>` header parts
/// for a type with the given plain type parameters: the bracketed bound
/// list and the parameterised type name.
fn impl_header(name: &str, generics: &[String], bound: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), name.to_string());
    }
    let bounds: Vec<String> = generics.iter().map(|g| format!("{g}: {bound}")).collect();
    (
        format!("<{}>", bounds.join(", ")),
        format!("{name}<{}>", generics.join(", ")),
    )
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&name, &tokens, &mut i);
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct {
                name,
                generics,
                fields,
            }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("expected enum body for `{name}`");
            };
            Item::Enum {
                name,
                generics,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Parses an optional `<A, B, ...>` type-parameter list of plain,
/// unbounded type parameters. Lifetimes, const parameters, bounds, and
/// defaults are rejected — no type in this workspace needs them.
fn parse_generics(name: &str, tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut generics = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return generics;
    }
    *i += 1;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                *i += 1;
                return generics;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => *i += 1,
            Some(TokenTree::Ident(id)) => {
                generics.push(id.to_string());
                *i += 1;
            }
            other => panic!(
                "serde stand-in derives only support plain type parameters \
                 (`{name}`): unexpected {other:?}"
            ),
        }
    }
}

/// Skips any number of `#[...]` attribute pairs (doc comments included).
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        *i += 1; // the bracketed group
    }
}

/// Skips `pub`, `pub(crate)`, `pub(super)`, etc.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if *id.to_string() == *"pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Advances past tokens until a comma at angle-bracket depth zero, leaving
/// `i` just past that comma (or at end of input). Tracks `<`/`>` so commas
/// inside `HashMap<K, V>`-style type arguments are not split points.
fn skip_to_next_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0u32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parses `name1: Type1, name2: Type2, ...` — the body of a braced struct or
/// struct variant. Only the field names are recorded; types are inferred at
/// the construction site in the generated code.
fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    loop {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        skip_to_next_comma(&tokens, &mut i);
    }
    Fields::Named(names)
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        count += 1;
        skip_to_next_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    loop {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            _ => Fields::Unit,
        };
        // Explicit discriminant (`= 0x0A`): skip to the separating comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            skip_to_next_comma(&tokens, &mut i);
        } else if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

const DERIVED_ATTRS: &str = "#[automatically_derived]\n#[allow(clippy::all, clippy::pedantic)]\n";

fn serialize_struct(name: &str, generics: &[String], fields: &Fields) -> String {
    let (bounds, ty) = impl_header(name, generics, "serde::Serialize");
    let body = match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
    };
    format!(
        "{DERIVED_ATTRS}impl{bounds} serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, generics: &[String], fields: &Fields) -> String {
    let (bounds, ty) = impl_header(name, generics, "serde::Deserialize");
    let body = match fields {
        Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
        Fields::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "match v {{\n\
                 serde::Value::Seq(items) if items.len() == {n} => Ok({name}({items})),\n\
                 other => Err(format!(\"expected {n}-element sequence for {name}, got {{other:?}}\")),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
    };
    format!(
        "{DERIVED_ATTRS}impl{bounds} serde::Deserialize for {ty} {{\n\
         fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, generics: &[String], variants: &[Variant]) -> String {
    let (bounds, ty) = impl_header(name, generics, "serde::Serialize");
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                ));
            }
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let inner = if *n == 1 {
                    "serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({binders}) => \
                     serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                    binders = binders.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {fields} }} => serde::Value::Map(vec![\
                     (\"{vn}\".to_string(), serde::Value::Map(vec![{entries}]))]),\n",
                    fields = fields.join(", "),
                    entries = entries.join(", ")
                ));
            }
        }
    }
    format!(
        "{DERIVED_ATTRS}impl{bounds} serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, generics: &[String], variants: &[Variant]) -> String {
    let (bounds, ty) = impl_header(name, generics, "serde::Deserialize");
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .collect();
    let data: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .collect();

    let str_arm = if unit.is_empty() {
        format!("serde::Value::Str(s) => Err(format!(\"unknown variant `{{s}}` for {name}\")),\n")
    } else {
        let mut arms = String::new();
        for v in &unit {
            let vn = &v.name;
            arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
        }
        format!(
            "serde::Value::Str(s) => match s.as_str() {{\n{arms}\
             other => Err(format!(\"unknown variant `{{other}}` for {name}\")),\n}},\n"
        )
    };

    let map_arm = if data.is_empty() {
        String::new()
    } else {
        let mut arms = String::new();
        for v in &data {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => unreachable!(),
                Fields::Tuple(1) => {
                    arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                    ));
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                        .collect();
                    arms.push_str(&format!(
                        "\"{vn}\" => match inner {{\n\
                         serde::Value::Seq(items) if items.len() == {n} => \
                         Ok({name}::{vn}({items})),\n\
                         other => Err(format!(\
                         \"expected {n}-element sequence for `{vn}`, got {{other:?}}\")),\n\
                         }},\n",
                        items = items.join(", ")
                    ));
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: serde::Deserialize::from_value(inner.field(\"{f}\")?)?")
                        })
                        .collect();
                    arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                        inits.join(", ")
                    ));
                }
            }
        }
        format!(
            "serde::Value::Map(entries) if entries.len() == 1 => {{\n\
             let (tag, inner) = &entries[0];\n\
             match tag.as_str() {{\n{arms}\
             other => Err(format!(\"unknown variant `{{other}}` for {name}\")),\n\
             }}\n}},\n"
        )
    };

    format!(
        "{DERIVED_ATTRS}impl{bounds} serde::Deserialize for {ty} {{\n\
         fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
         match v {{\n{str_arm}{map_arm}\
         other => Err(format!(\"unexpected value for {name}: {{other:?}}\")),\n\
         }}\n}}\n}}"
    )
}
