//! Vendored minimal stand-in for `rand` (0.10-era API names).
//!
//! Provides exactly what this workspace uses: a seedable deterministic
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! methods `random_range` (integer ranges) and `random::<f64>()`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — not the real
//! StdRng's ChaCha12, so sampled sequences differ from upstream `rand` for
//! the same seed, but they are deterministic and identical across platforms,
//! which is all the campaign machinery relies on.

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value methods this workspace calls (named after rand 0.10's
/// `Rng`-successor extension trait).
pub trait RngExt {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over their full range).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}

/// Range types accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngExt>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform draw from `[0, span)` via Lemire's multiply-with-
/// rejection method.
fn uniform_below<R: RngExt>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        let low = wide as u64;
        if low >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(usize, u64, u32, u16, u8);

/// Types producible by [`RngExt::random`].
pub trait Random {
    /// Draws one value from the type's standard distribution.
    fn random<R: RngExt>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngExt>(rng: &mut R) -> f64 {
        // 53 high bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngExt>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for u64 {
    fn random<R: RngExt>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngExt>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: RngExt>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let u = rng.random_range(0u64..3);
            assert!(u < 3);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
