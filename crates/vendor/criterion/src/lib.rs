//! Vendored minimal stand-in for `criterion`.
//!
//! Provides the benchmark-group API surface this workspace's `harness =
//! false` benches use, with real wall-clock measurement: each
//! `bench_function` is calibrated, then timed over `sample_size` samples,
//! and the min/median/max are printed in criterion's familiar
//! `name  time: [low median high]` shape. No plotting, no statistical
//! regression — the numbers are honest medians, which is what
//! EXPERIMENTS.md records.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (accepted, echoed in the
/// report header).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver, handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Records the per-iteration throughput (reported alongside timings).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self
            .sample_size
            .unwrap_or(self._criterion.default_sample_size);
        let mut bencher = Bencher {
            samples,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(m) => {
                let per_elem = match self.throughput {
                    Some(Throughput::Elements(n)) if n > 0 => {
                        let rate = n as f64 / m.median.as_secs_f64();
                        format!("  thrpt: {rate:.3e} elem/s")
                    }
                    Some(Throughput::Bytes(n)) if n > 0 => {
                        let rate = n as f64 / m.median.as_secs_f64();
                        format!("  thrpt: {rate:.3e} B/s")
                    }
                    _ => String::new(),
                };
                println!(
                    "{}/{id}  time: [{} {} {}]{per_elem}",
                    self.name,
                    format_duration(m.min),
                    format_duration(m.median),
                    format_duration(m.max),
                );
            }
            None => println!("{}/{id}  (no measurement: iter was not called)", self.name),
        }
        self
    }

    /// Ends the group (parity with the real API; reporting is immediate).
    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    min: Duration,
    median: Duration,
    max: Duration,
}

/// Times a closure over the group's configured number of samples.
pub struct Bencher {
    samples: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, a calibration pass choosing
    /// how many iterations fit a ~5 ms sample, then `samples` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());

        let calibration = Instant::now();
        std::hint::black_box(routine());
        let once = calibration.elapsed().max(Duration::from_nanos(1));

        const TARGET_SAMPLE: Duration = Duration::from_millis(5);
        let iters_per_sample = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 100_000);

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            times.push(start.elapsed() / iters_per_sample as u32);
        }
        times.sort_unstable();
        self.result = Some(Measurement {
            min: times[0],
            median: times[times.len() / 2],
            max: times[times.len() - 1],
        });
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn measures_something() {
        let mut c = super::Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn format_scales() {
        use std::time::Duration;
        assert!(super::format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(super::format_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(super::format_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(super::format_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
