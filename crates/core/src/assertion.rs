//! Executable assertions.
//!
//! An *executable assertion* is a software-implemented check verifying that
//! a variable fulfils limitations given by a specification (footnote 2 of
//! the paper). The checks here encode **physical constraints of the
//! controlled object** — e.g. a throttle angle must lie in `[0, 70]`
//! degrees — so that a corrupted controller variable can be recognised
//! without any reference computation.

use crate::controller::Limits;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A check over a value of type `T`.
///
/// `check` returns `true` when the value is plausible and `false` when it
/// violates the constraint (an *assertion trip*). Assertions must be pure:
/// calling `check` repeatedly on the same value must give the same answer.
pub trait Assertion<T: ?Sized> {
    /// Returns `true` when `value` satisfies the constraint.
    fn check(&self, value: &T) -> bool;

    /// Notifies a *stateful* assertion that `value` was accepted, so it can
    /// update its history (e.g. the previous-sample window of
    /// [`RateAssertion`]). Stateless assertions ignore this.
    fn commit(&mut self, _value: &T) {}

    /// A human-readable description of the constraint for reports.
    fn describe(&self) -> String {
        "assertion".to_string()
    }
}

/// Range assertion: the value must lie within physical limits
/// (the `in_range` check of Algorithm II).
///
/// # Example
///
/// ```
/// use bera_core::{Assertion, RangeAssertion};
/// let a = RangeAssertion::throttle();
/// assert!(a.check(&35.0));
/// assert!(!a.check(&70.5));
/// assert!(!a.check(&f64::NAN));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeAssertion {
    limits: Limits,
}

impl RangeAssertion {
    /// Creates a range assertion over `limits`.
    #[must_use]
    pub fn new(limits: Limits) -> Self {
        RangeAssertion { limits }
    }

    /// The paper's throttle constraint: `[0, 70]` degrees.
    #[must_use]
    pub fn throttle() -> Self {
        RangeAssertion::new(Limits::throttle())
    }

    /// The limits this assertion enforces.
    #[must_use]
    pub fn limits(&self) -> Limits {
        self.limits
    }
}

impl Assertion<f64> for RangeAssertion {
    fn check(&self, value: &f64) -> bool {
        self.limits.contains(*value)
    }

    fn describe(&self) -> String {
        format!("in_range{}", self.limits)
    }
}

/// Rate assertion: the value must not move faster than the physical process
/// allows between two consecutive samples.
///
/// This is the "more sophisticated assertion" the paper's conclusion calls
/// for: it catches in-range corruptions such as the 10° → 69° state jump of
/// Figure 10, which a pure range check cannot detect.
///
/// The assertion compares against the *previous accepted* value, so the
/// caller must [`RateAssertion::commit`] each accepted sample.
///
/// # Example
///
/// ```
/// use bera_core::RateAssertion;
/// let mut a = RateAssertion::new(5.0);
/// assert!(a.admit(3.0));   // first sample always admitted
/// a.commit(3.0);
/// assert!(a.admit(7.9));   // |7.9 - 3.0| < 5
/// assert!(!a.admit(69.0)); // physically impossible jump
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateAssertion {
    max_delta: f64,
    previous: Option<f64>,
}

impl RateAssertion {
    /// Creates a rate assertion allowing at most `max_delta` change per
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `max_delta` is not a positive finite number.
    #[must_use]
    pub fn new(max_delta: f64) -> Self {
        assert!(
            max_delta.is_finite() && max_delta > 0.0,
            "max_delta must be positive and finite"
        );
        RateAssertion {
            max_delta,
            previous: None,
        }
    }

    /// Checks `value` against the last committed sample. The first sample is
    /// always admitted. NaN is always rejected.
    #[must_use]
    pub fn admit(&self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        match self.previous {
            None => true,
            Some(prev) => (value - prev).abs() <= self.max_delta,
        }
    }

    /// Records `value` as the last accepted sample.
    pub fn commit(&mut self, value: f64) {
        self.previous = Some(value);
    }

    /// Forgets the history (controller reset).
    pub fn reset(&mut self) {
        self.previous = None;
    }

    /// Maximum admitted per-sample change.
    #[must_use]
    pub fn max_delta(&self) -> f64 {
        self.max_delta
    }
}

impl Assertion<f64> for RateAssertion {
    fn check(&self, value: &f64) -> bool {
        self.admit(*value)
    }

    fn commit(&mut self, value: &f64) {
        RateAssertion::commit(self, *value);
    }

    fn describe(&self) -> String {
        format!("|Δ| ≤ {}", self.max_delta)
    }
}

/// Conjunction of two assertions: both must hold.
///
/// # Example
///
/// ```
/// use bera_core::assertion::{All, Assertion};
/// use bera_core::{RangeAssertion, RateAssertion};
/// let mut rate = RateAssertion::new(2.0);
/// rate.commit(10.0);
/// let a = All::new(RangeAssertion::throttle(), rate);
/// assert!(a.check(&11.0));
/// assert!(!a.check(&69.0)); // in range, but impossible jump
/// assert!(!a.check(&-1.0)); // out of range
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct All<A, B> {
    first: A,
    second: B,
}

impl<A, B> All<A, B> {
    /// Combines two assertions conjunctively.
    #[must_use]
    pub fn new(first: A, second: B) -> Self {
        All { first, second }
    }
}

impl<T, A: Assertion<T>, B: Assertion<T>> Assertion<T> for All<A, B> {
    fn check(&self, value: &T) -> bool {
        self.first.check(value) && self.second.check(value)
    }

    fn commit(&mut self, value: &T) {
        self.first.commit(value);
        self.second.commit(value);
    }

    fn describe(&self) -> String {
        format!("({}) ∧ ({})", self.first.describe(), self.second.describe())
    }
}

/// An assertion that always passes — used to disable protection on selected
/// variables in ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AlwaysTrue;

impl<T> Assertion<T> for AlwaysTrue {
    fn check(&self, _value: &T) -> bool {
        true
    }

    fn describe(&self) -> String {
        "true".to_string()
    }
}

impl fmt::Display for RangeAssertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_assertion_boundaries() {
        let a = RangeAssertion::throttle();
        assert!(a.check(&0.0));
        assert!(a.check(&70.0));
        assert!(!a.check(&-f64::EPSILON));
        assert!(!a.check(&70.000001));
    }

    #[test]
    fn range_assertion_rejects_non_finite() {
        let a = RangeAssertion::throttle();
        assert!(!a.check(&f64::NAN));
        assert!(!a.check(&f64::INFINITY));
        assert!(!a.check(&f64::NEG_INFINITY));
    }

    #[test]
    fn rate_assertion_first_sample_admitted() {
        let a = RateAssertion::new(0.1);
        assert!(a.admit(1.0e9), "no history yet: anything finite admitted");
    }

    #[test]
    fn rate_assertion_tracks_committed_only() {
        let mut a = RateAssertion::new(1.0);
        a.commit(0.0);
        assert!(a.admit(0.5));
        // Not committed — the window does not move.
        assert!(a.admit(0.9));
        assert!(!a.admit(1.5));
    }

    #[test]
    fn rate_assertion_reset_forgets() {
        let mut a = RateAssertion::new(1.0);
        a.commit(100.0);
        assert!(!a.admit(0.0));
        a.reset();
        assert!(a.admit(0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rate_assertion_rejects_bad_delta() {
        let _ = RateAssertion::new(-1.0);
    }

    #[test]
    fn all_combinator_is_conjunction() {
        let a = All::new(RangeAssertion::throttle(), AlwaysTrue);
        assert!(a.check(&10.0));
        assert!(!a.check(&-10.0));
    }

    #[test]
    fn describe_mentions_limits() {
        assert!(RangeAssertion::throttle().describe().contains("70"));
        assert!(RateAssertion::new(2.5).describe().contains("2.5"));
    }

    #[test]
    fn figure10_scenario_detected_by_rate_assertion() {
        // The paper's residual failure: x jumps from ~10 to 69 degrees, both
        // in range. A rate assertion bounded by physical throttle slew
        // catches it.
        let range = RangeAssertion::throttle();
        let mut rate = RateAssertion::new(5.0);
        rate.commit(10.0);
        let corrupted = 69.0;
        assert!(range.check(&corrupted), "range check is blind to this");
        assert!(!rate.check(&corrupted), "rate check detects it");
    }
}
