//! Multiple-input multiple-output (MIMO) controllers.
//!
//! The paper's conclusion announces future work on "multiple input and
//! multiple output control algorithms such as jet-engine controllers". This
//! module provides that extension: a discrete-time state-space controller
//!
//! ```text
//! x(k+1) = A·x(k) + B·e(k)
//! u(k)   = sat(C·x(k) + D·e(k))
//! ```
//!
//! which implements [`StateController`] and can therefore be wrapped with
//! [`Protected`](crate::Protected) to obtain executable assertions and best
//! effort recovery over every state and output — the paper's Section 4.3
//! recipe at full generality.

use crate::controller::Limits;
use crate::recovery::StateController;
use serde::{Deserialize, Serialize};

/// A dense matrix stored row-major, sized at construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// A `rows × cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix::new(rows, cols, vec![0.0; rows * cols])
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Computes `out += self · v`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree.
    pub fn mul_add_vec(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let acc: f64 = row.iter().zip(v).map(|(a, b)| a * b).sum();
            *slot += acc;
        }
    }
}

/// The `(A, B, C, D)` quadruple of a discrete-time state-space system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSpace {
    /// State transition matrix (n × n).
    pub a: Matrix,
    /// Input matrix (n × m).
    pub b: Matrix,
    /// Output matrix (p × n).
    pub c: Matrix,
    /// Feedthrough matrix (p × m).
    pub d: Matrix,
}

impl StateSpace {
    /// Validates dimensional consistency and constructs the system.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimensions are inconsistent.
    #[must_use]
    pub fn new(a: Matrix, b: Matrix, c: Matrix, d: Matrix) -> Self {
        assert_eq!(a.rows(), a.cols(), "A must be square");
        assert_eq!(b.rows(), a.rows(), "B row count must match A");
        assert_eq!(c.cols(), a.rows(), "C column count must match A");
        assert_eq!(d.rows(), c.rows(), "D row count must match C");
        assert_eq!(d.cols(), b.cols(), "D column count must match B");
        StateSpace { a, b, c, d }
    }

    /// Number of state variables.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.c.rows()
    }

    /// A two-spool jet-engine-style demo controller: two PI loops with
    /// light cross-coupling, controlling fuel flow and nozzle area from two
    /// speed errors. Stable, diagonally dominant.
    #[must_use]
    pub fn jet_engine_demo() -> Self {
        // States: two integrators (one per loop).
        let a = Matrix::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let b = Matrix::new(2, 2, vec![0.004, 0.0005, 0.0005, 0.003]);
        let c = Matrix::new(2, 2, vec![1.0, 0.05, 0.05, 1.0]);
        let d = Matrix::new(2, 2, vec![0.02, 0.002, 0.002, 0.015]);
        StateSpace::new(a, b, c, d)
    }
}

/// A discrete state-space controller with per-output saturation, intended
/// to be wrapped with [`Protected`](crate::Protected).
///
/// Inputs to [`StateController::compute`] are the error signals
/// `e_1 … e_m`; outputs are the limited actuator commands.
///
/// # Example
///
/// ```
/// use bera_core::{MimoController, StateSpace, Protected, StateController};
/// use bera_core::controller::Limits;
///
/// let sys = StateSpace::jet_engine_demo();
/// let ctrl = MimoController::new(sys, vec![Limits::new(0.0, 1.0); 2]);
/// let mut protected = Protected::uniform(ctrl, Limits::new(-10.0, 10.0));
/// let mut u = [0.0; 2];
/// protected.compute(&[0.3, -0.1], &mut u);
/// assert!(u.iter().all(|v| v.is_finite()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MimoController {
    sys: StateSpace,
    limits: Vec<Limits>,
    x: Vec<f64>,
}

impl MimoController {
    /// Creates the controller with zero initial state.
    ///
    /// # Panics
    ///
    /// Panics if `limits.len() != sys.num_outputs()`.
    #[must_use]
    pub fn new(sys: StateSpace, limits: Vec<Limits>) -> Self {
        assert_eq!(
            limits.len(),
            sys.num_outputs(),
            "one limit per output signal"
        );
        let n = sys.num_states();
        MimoController {
            sys,
            limits,
            x: vec![0.0; n],
        }
    }

    /// The underlying state-space system.
    #[must_use]
    pub fn system(&self) -> &StateSpace {
        &self.sys
    }

    /// Per-output saturation limits.
    #[must_use]
    pub fn output_limits(&self) -> &[Limits] {
        &self.limits
    }
}

impl StateController for MimoController {
    fn num_states(&self) -> usize {
        self.sys.num_states()
    }

    fn num_outputs(&self) -> usize {
        self.sys.num_outputs()
    }

    fn states(&self) -> Vec<f64> {
        self.x.clone()
    }

    fn set_states(&mut self, states: &[f64]) {
        assert_eq!(states.len(), self.x.len(), "state dimension mismatch");
        self.x.copy_from_slice(states);
    }

    fn compute(&mut self, inputs: &[f64], outputs: &mut [f64]) {
        assert_eq!(inputs.len(), self.sys.num_inputs(), "input dimension");
        assert_eq!(outputs.len(), self.sys.num_outputs(), "output dimension");

        // u = sat(C x + D e)
        outputs.iter_mut().for_each(|v| *v = 0.0);
        self.sys.c.mul_add_vec(&self.x, outputs);
        self.sys.d.mul_add_vec(inputs, outputs);
        for (u, lim) in outputs.iter_mut().zip(self.limits.iter()) {
            *u = lim.clamp(*u);
        }

        // x' = A x + B e
        let mut next = vec![0.0; self.x.len()];
        self.sys.a.mul_add_vec(&self.x, &mut next);
        self.sys.b.mul_add_vec(inputs, &mut next);
        self.x = next;
    }

    fn reset_states(&mut self) {
        self.x.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::Protected;

    #[test]
    fn matrix_mul_add() {
        let m = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![10.0, 20.0];
        m.mul_add_vec(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![16.0, 35.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn matrix_bad_data_panics() {
        let _ = Matrix::new(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn statespace_dimensions_validated() {
        let ok = StateSpace::jet_engine_demo();
        assert_eq!(ok.num_states(), 2);
        assert_eq!(ok.num_inputs(), 2);
        assert_eq!(ok.num_outputs(), 2);
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn statespace_nonsquare_a_panics() {
        let _ = StateSpace::new(
            Matrix::zeros(2, 3),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        );
    }

    #[test]
    fn pure_integrator_accumulates() {
        // A = I, B = I, C = I, D = 0: x accumulates the inputs.
        let sys = StateSpace::new(
            Matrix::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            Matrix::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            Matrix::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            Matrix::zeros(2, 2),
        );
        let mut c = MimoController::new(sys, vec![Limits::new(-100.0, 100.0); 2]);
        let mut u = [0.0; 2];
        c.compute(&[1.0, 2.0], &mut u);
        assert_eq!(u, [0.0, 0.0], "D = 0, x was 0");
        c.compute(&[1.0, 2.0], &mut u);
        assert_eq!(u, [1.0, 2.0], "outputs reflect accumulated state");
        assert_eq!(c.states(), vec![2.0, 4.0]);
    }

    #[test]
    fn outputs_are_saturated() {
        let sys = StateSpace::new(
            Matrix::new(1, 1, vec![1.0]),
            Matrix::new(1, 1, vec![0.0]),
            Matrix::new(1, 1, vec![0.0]),
            Matrix::new(1, 1, vec![1.0]),
        );
        let mut c = MimoController::new(sys, vec![Limits::new(0.0, 1.0)]);
        let mut u = [0.0];
        c.compute(&[55.0], &mut u);
        assert_eq!(u[0], 1.0);
    }

    #[test]
    fn protected_mimo_recovers_every_state() {
        let ctrl = MimoController::new(
            StateSpace::jet_engine_demo(),
            vec![Limits::new(0.0, 1.0); 2],
        );
        let mut p = Protected::uniform(ctrl, Limits::new(-10.0, 10.0));
        let mut u = [0.0; 2];
        for _ in 0..20 {
            p.compute(&[0.5, 0.2], &mut u);
        }
        let good = p.inner().states();
        // Corrupt the second state far out of range.
        let mut bad = good.clone();
        bad[1] = -8.0e12;
        p.inner_mut().set_states(&bad);
        p.compute(&[0.5, 0.2], &mut u);
        assert_eq!(p.report().state_recoveries, 1);
        let recovered = p.inner().states();
        assert!(
            recovered.iter().all(|v| v.abs() < 100.0),
            "all states recovered to plausible values: {recovered:?}"
        );
    }

    #[test]
    fn jet_engine_demo_is_stable_in_closed_loop() {
        // Crude closed loop: plant y = 0.5 * u (static), references step.
        let ctrl = MimoController::new(
            StateSpace::jet_engine_demo(),
            vec![Limits::new(0.0, 1.0); 2],
        );
        let mut p = Protected::uniform(ctrl, Limits::new(-50.0, 50.0));
        let mut y = [0.0f64; 2];
        let r = [0.3f64, 0.2];
        let mut u = [0.0f64; 2];
        for _ in 0..5000 {
            let e = [r[0] - y[0], r[1] - y[1]];
            p.compute(&e, &mut u);
            y[0] = 0.5 * u[0];
            y[1] = 0.5 * u[1];
        }
        assert!((y[0] - r[0]).abs() < 0.01, "loop 1 converged: {}", y[0]);
        assert!((y[1] - r[1]).abs() < 0.01, "loop 2 converged: {}", y[1]);
    }
}
