//! Algorithm I — the unprotected PI controller.

use crate::controller::{Controller, Limits, PiGains};
use crate::recovery::StateController;
use serde::{Deserialize, Serialize};

/// The paper's Algorithm I: a proportional-integral engine-speed controller
/// with an output limiter and anti-windup, **without** executable assertions
/// or recovery.
///
/// Per iteration `k` (paper equations 1–3):
///
/// ```text
/// e(k)     = r(k) - y(k)
/// u(k)     = Kp·e(k) + x(k-1)
/// u_lim(k) = clamp(u(k), 0, 70)
/// x(k)     = x(k-1) + T·Ki·e(k)      (integration cut off by anti-windup)
/// ```
///
/// The anti-windup function disables integration while the *unlimited*
/// output is saturated and the control error keeps pushing it further out of
/// range.
///
/// # Example
///
/// ```
/// use bera_core::{Controller, PiController};
/// let mut c = PiController::paper();
/// let u = c.step(10_000.0, 0.0); // huge error -> saturated demand
/// assert_eq!(u, 70.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiController {
    gains: PiGains,
    limits: Limits,
    /// The integrator state `x` — the variable whose corruption the paper
    /// identifies as the source of severe value failures.
    x: f64,
}

impl PiController {
    /// Creates a PI controller with the given gains and output limits.
    /// The state `x` starts at zero.
    #[must_use]
    pub fn new(gains: PiGains, limits: Limits) -> Self {
        PiController {
            gains,
            limits,
            x: 0.0,
        }
    }

    /// The configuration used in the paper's experiments: paper gains and
    /// throttle limits 0–70 degrees.
    #[must_use]
    pub fn paper() -> Self {
        PiController::new(PiGains::paper(), Limits::throttle())
    }

    /// The current integrator state `x`.
    #[must_use]
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Directly overwrites the integrator state (fault-injection hook).
    pub fn set_x(&mut self, x: f64) {
        self.x = x;
    }

    /// The controller gains.
    #[must_use]
    pub fn gains(&self) -> PiGains {
        self.gains
    }

    /// Returns `true` when anti-windup must cut off integration: the
    /// unlimited output `u` is outside the limits and the error `e` drives
    /// it further out.
    #[must_use]
    pub fn anti_windup_activated(&self, u: f64, e: f64) -> bool {
        (u > self.limits.hi && e > 0.0) || (u < self.limits.lo && e < 0.0)
    }
}

impl Controller for PiController {
    fn step(&mut self, r: f64, y: f64) -> f64 {
        let e = r - y;
        let u = e * self.gains.kp + self.x;
        let u_lim = self.limits.clamp(u);
        let ki = if self.anti_windup_activated(u, e) {
            0.0
        } else {
            self.gains.ki
        };
        self.x += self.gains.t * e * ki;
        u_lim
    }

    fn reset(&mut self) {
        self.x = 0.0;
    }

    fn state(&self) -> Vec<f64> {
        vec![self.x]
    }

    fn set_state(&mut self, index: usize, value: f64) {
        assert_eq!(index, 0, "PiController has exactly one state variable");
        self.x = value;
    }

    fn limits(&self) -> Limits {
        self.limits
    }
}

impl StateController for PiController {
    fn num_states(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn states(&self) -> Vec<f64> {
        vec![self.x]
    }

    fn set_states(&mut self, states: &[f64]) {
        assert_eq!(states.len(), 1, "PiController has exactly one state");
        self.x = states[0];
    }

    fn compute(&mut self, inputs: &[f64], outputs: &mut [f64]) {
        assert_eq!(inputs.len(), 2, "inputs are [r, y]");
        assert_eq!(outputs.len(), 1, "one output u_lim");
        outputs[0] = self.step(inputs[0], inputs[1]);
    }

    fn reset_states(&mut self) {
        self.x = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_gains() -> PiGains {
        PiGains {
            kp: 1.0,
            ki: 1.0,
            t: 1.0,
        }
    }

    #[test]
    fn proportional_action() {
        // With zero integrator, output is Kp * e (inside limits).
        let mut c = PiController::new(
            PiGains {
                kp: 0.5,
                ki: 0.0,
                t: 1.0,
            },
            Limits::throttle(),
        );
        assert_eq!(c.step(10.0, 0.0), 5.0);
        assert_eq!(c.x(), 0.0, "ki = 0 leaves the state untouched");
    }

    #[test]
    fn integral_action_accumulates() {
        let mut c = PiController::new(unit_gains(), Limits::new(-1e9, 1e9));
        c.step(1.0, 0.0); // e = 1, x += 1
        c.step(1.0, 0.0);
        assert_eq!(c.x(), 2.0);
    }

    #[test]
    fn output_is_limited() {
        let mut c = PiController::paper();
        assert_eq!(c.step(1e9, 0.0), 70.0);
        assert_eq!(c.step(-1e9, 0.0), 0.0);
    }

    #[test]
    fn anti_windup_stops_integration_when_saturated_outward() {
        let mut c = PiController::new(unit_gains(), Limits::new(0.0, 10.0));
        // Large positive error: u = 100 > 10, e > 0 -> integration cut off.
        c.step(100.0, 0.0);
        assert_eq!(c.x(), 0.0, "anti-windup must freeze x");
    }

    #[test]
    fn anti_windup_allows_integration_back_into_range() {
        let mut c = PiController::new(unit_gains(), Limits::new(0.0, 10.0));
        c.set_x(100.0); // wound-up (or corrupted) state
                        // e < 0 now pulls the output back toward range: integration enabled.
        c.step(0.0, 5.0); // e = -5, u = -5 + 100 = 95 > hi, but e < 0
        assert_eq!(c.x(), 95.0, "x must integrate downwards");
    }

    #[test]
    fn anti_windup_at_lower_limit() {
        let mut c = PiController::new(unit_gains(), Limits::new(0.0, 10.0));
        // e < 0 and u < lo -> cut off.
        c.step(0.0, 100.0);
        assert_eq!(c.x(), 0.0);
        // e > 0 while u < lo -> integrate (recovering).
        c.set_x(-50.0);
        c.step(10.0, 0.0); // e = 10, u = -40 < lo, e > 0
        assert_eq!(c.x(), -40.0);
    }

    #[test]
    fn steady_state_zero_error_is_fixed_point() {
        let mut c = PiController::paper();
        c.set_x(20.0);
        let u = c.step(2000.0, 2000.0);
        assert_eq!(u, 20.0);
        assert_eq!(c.x(), 20.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = PiController::paper();
        c.step(2000.0, 0.0);
        c.set_x(5.0);
        c.reset();
        assert_eq!(c.x(), 0.0);
    }

    #[test]
    fn controller_trait_state_roundtrip() {
        let mut c = PiController::paper();
        c.set_state(0, 12.5);
        assert_eq!(c.state(), vec![12.5]);
    }

    #[test]
    #[should_panic(expected = "exactly one state")]
    fn set_state_out_of_bounds_panics() {
        PiController::paper().set_state(1, 0.0);
    }

    #[test]
    fn state_controller_matches_controller() {
        let mut a = PiController::paper();
        let mut b = PiController::paper();
        let mut out = [0.0];
        for k in 0..100 {
            let r = 2000.0;
            let y = 1900.0 + k as f64;
            let u1 = a.step(r, y);
            b.compute(&[r, y], &mut out);
            assert_eq!(u1, out[0]);
        }
    }

    #[test]
    fn corrupted_state_saturates_output_like_figure7() {
        // A huge corrupted x locks the output at the upper limit — the
        // permanent failure mode of Figure 7.
        let mut c = PiController::paper();
        c.set_x(1.0e20);
        for _ in 0..650 {
            let u = c.step(2000.0, 2500.0); // engine running too fast
            assert_eq!(u, 70.0, "output stays locked at full throttle");
        }
    }
}
