//! The general protection recipe of Section 4.3: executable assertions and
//! best effort recovery for a controller with an arbitrary number of state
//! variables and output signals.
//!
//! The paper generalises Algorithm II into four steps executed around the
//! controller's own computation:
//!
//! 1. before backing up any state `x_i(k)`, assert its correctness; on a
//!    trip, recover **all** states from the previous iteration's backup,
//!    otherwise back them all up;
//! 2. before returning any output `u_j(k)`, assert its correctness; on a
//!    trip, deliver the previous outputs **and** roll the states back to the
//!    backup that corresponds to those outputs;
//! 3. back up the delivered outputs;
//! 4. return the outputs.
//!
//! [`Protected`] implements this recipe over any [`StateController`].

use crate::assertion::{Assertion, RangeAssertion};
use crate::controller::Limits;
use serde::{Deserialize, Serialize};

/// A sampled-data controller exposing its state vector, suitable for
/// wrapping with [`Protected`].
///
/// Implementations: [`crate::PiController`] (1 state, 1 output),
/// [`crate::ProtectedPiController`], [`crate::MimoController`]
/// (N states, M outputs).
pub trait StateController {
    /// Number of internal state variables.
    fn num_states(&self) -> usize;
    /// Number of output signals.
    fn num_outputs(&self) -> usize;
    /// Snapshot of the state vector.
    fn states(&self) -> Vec<f64>;
    /// Overwrites the full state vector.
    ///
    /// # Panics
    ///
    /// Implementations panic if `states.len() != self.num_states()`.
    fn set_states(&mut self, states: &[f64]);
    /// Runs one control iteration: reads `inputs`, writes `outputs`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `outputs.len() != self.num_outputs()`.
    fn compute(&mut self, inputs: &[f64], outputs: &mut [f64]);
    /// Resets the state vector to its initial value.
    fn reset_states(&mut self);
}

/// What kind of best-effort recovery (if any) the last iteration performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryEvent {
    /// No assertion fired.
    None,
    /// A state assertion fired; states were restored from backup.
    State {
        /// Index of the first state variable whose assertion tripped.
        index: usize,
    },
    /// An output assertion fired; outputs and states were rolled back.
    Output {
        /// Index of the first output whose assertion tripped.
        index: usize,
    },
}

/// Cumulative protection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtectionReport {
    /// Iterations executed.
    pub iterations: u64,
    /// State-assertion trips (step 1 recoveries).
    pub state_recoveries: u64,
    /// Output-assertion trips (step 2 recoveries).
    pub output_recoveries: u64,
}

impl ProtectionReport {
    /// Total recoveries of either kind.
    #[must_use]
    pub fn total_recoveries(&self) -> u64 {
        self.state_recoveries + self.output_recoveries
    }
}

type DynAssertion = Box<dyn Assertion<f64> + Send + Sync>;

/// A [`StateController`] wrapped with per-variable executable assertions and
/// best effort recovery, following Section 4.3 of the paper.
///
/// # Example
///
/// ```
/// use bera_core::{PiController, Protected, StateController};
/// use bera_core::controller::Limits;
///
/// // Protect Algorithm I generically: one state, one output, both asserted
/// // against the physical throttle range — this reconstructs Algorithm II.
/// let mut p = Protected::uniform(PiController::paper(), Limits::throttle());
/// let mut out = [0.0f64];
/// p.compute(&[2000.0, 1800.0], &mut out);
/// assert!(out[0] >= 0.0 && out[0] <= 70.0);
/// ```
pub struct Protected<C> {
    inner: C,
    state_assertions: Vec<DynAssertion>,
    output_assertions: Vec<DynAssertion>,
    /// Ring of state backups, newest first.
    state_backups: std::collections::VecDeque<Vec<f64>>,
    backup_depth: usize,
    output_backup: Vec<f64>,
    last_event: RecoveryEvent,
    report: ProtectionReport,
}

impl<C: StateController> Protected<C> {
    /// Wraps `inner`, asserting every state variable and every output
    /// against the same physical `range`.
    #[must_use]
    pub fn uniform(inner: C, range: Limits) -> Self {
        let ns = inner.num_states();
        let no = inner.num_outputs();
        let state_assertions = (0..ns)
            .map(|_| Box::new(RangeAssertion::new(range)) as DynAssertion)
            .collect();
        let output_assertions = (0..no)
            .map(|_| Box::new(RangeAssertion::new(range)) as DynAssertion)
            .collect();
        Self::with_assertions(inner, state_assertions, output_assertions)
    }

    /// Wraps `inner` with explicit per-variable assertions.
    ///
    /// # Panics
    ///
    /// Panics if the assertion counts do not match the controller's state
    /// and output dimensions.
    #[must_use]
    pub fn with_assertions(
        inner: C,
        state_assertions: Vec<DynAssertion>,
        output_assertions: Vec<DynAssertion>,
    ) -> Self {
        assert_eq!(
            state_assertions.len(),
            inner.num_states(),
            "one assertion per state variable"
        );
        assert_eq!(
            output_assertions.len(),
            inner.num_outputs(),
            "one assertion per output signal"
        );
        let mut state_backups = std::collections::VecDeque::new();
        state_backups.push_front(inner.states());
        let output_backup = vec![0.0; inner.num_outputs()];
        Protected {
            inner,
            state_assertions,
            output_assertions,
            state_backups,
            backup_depth: 1,
            output_backup,
            last_event: RecoveryEvent::None,
            report: ProtectionReport::default(),
        }
    }

    /// Keeps a ring of the last `depth` accepted state backups instead of
    /// only the most recent one. The paper's Algorithm II is depth 1; a
    /// deeper ring lets recovery fall back past a backup that was itself
    /// corrupted (it restores the newest backup that still satisfies the
    /// state assertions).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    #[must_use]
    pub fn with_backup_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "backup depth must be at least 1");
        self.backup_depth = depth;
        self
    }

    /// Immutable access to the wrapped controller.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mutable access to the wrapped controller (fault-injection hook: this
    /// is how SWIFI corrupts the protected state between iterations).
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// Consumes the wrapper and returns the controller.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The recovery event of the most recent iteration.
    #[must_use]
    pub fn last_event(&self) -> RecoveryEvent {
        self.last_event
    }

    /// Cumulative statistics since construction or reset.
    #[must_use]
    pub fn report(&self) -> ProtectionReport {
        self.report
    }

    fn first_failing(assertions: &[DynAssertion], values: &[f64]) -> Option<usize> {
        values
            .iter()
            .zip(assertions.iter())
            .position(|(v, a)| !a.check(v))
    }
}

impl<C: StateController> StateController for Protected<C> {
    fn num_states(&self) -> usize {
        self.inner.num_states()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn states(&self) -> Vec<f64> {
        self.inner.states()
    }

    fn set_states(&mut self, states: &[f64]) {
        self.inner.set_states(states);
    }

    fn compute(&mut self, inputs: &[f64], outputs: &mut [f64]) {
        self.report.iterations += 1;
        self.last_event = RecoveryEvent::None;

        // Step 1: assert every state before it is backed up. On a trip,
        // restore the newest backup that still satisfies the assertions
        // (with the paper's depth of 1 this is simply the last backup).
        let states = self.inner.states();
        if let Some(index) = Self::first_failing(&self.state_assertions, &states) {
            self.report.state_recoveries += 1;
            self.last_event = RecoveryEvent::State { index };
            let restore = self
                .state_backups
                .iter()
                .find(|b| Self::first_failing(&self.state_assertions, b).is_none())
                .or_else(|| self.state_backups.front())
                .expect("at least one backup exists")
                .clone();
            self.inner.set_states(&restore);
        } else {
            self.state_backups.push_front(states.clone());
            while self.state_backups.len() > self.backup_depth {
                self.state_backups.pop_back();
            }
            for (assertion, value) in self.state_assertions.iter_mut().zip(states.iter()) {
                assertion.commit(value);
            }
        }

        // The controller's own computation.
        self.inner.compute(inputs, outputs);

        // Step 2: assert every output before it is returned.
        if let Some(index) = Self::first_failing(&self.output_assertions, outputs) {
            self.report.output_recoveries += 1;
            self.last_event = RecoveryEvent::Output { index };
            outputs.copy_from_slice(&self.output_backup);
            let restore = self
                .state_backups
                .front()
                .expect("at least one backup exists")
                .clone();
            self.inner.set_states(&restore);
        }

        // Step 3: back up the delivered outputs. (Step 4 is the return.)
        self.output_backup.copy_from_slice(outputs);
        for (assertion, value) in self.output_assertions.iter_mut().zip(outputs.iter()) {
            assertion.commit(value);
        }
    }

    fn reset_states(&mut self) {
        self.inner.reset_states();
        self.state_backups.clear();
        self.state_backups.push_front(self.inner.states());
        self.output_backup.iter_mut().for_each(|v| *v = 0.0);
        self.last_event = RecoveryEvent::None;
        self.report = ProtectionReport::default();
    }
}

/// Adapts a two-input/one-output [`StateController`] to the SISO
/// [`Controller`](crate::Controller) interface (`inputs = [r, y]`,
/// `output = u_lim`), so generic wrappers like [`Protected`] can be used
/// everywhere a plain controller is expected — closed-loop drivers, SWIFI
/// campaigns, benches.
///
/// # Example
///
/// ```
/// use bera_core::{Controller, PiController, Protected, Siso};
/// use bera_core::controller::Limits;
///
/// let mut c = Siso::new(
///     Protected::uniform(PiController::paper(), Limits::throttle()),
///     Limits::throttle(),
/// );
/// let u = c.step(2000.0, 1900.0);
/// assert!((0.0..=70.0).contains(&u));
/// ```
pub struct Siso<C> {
    inner: C,
    limits: Limits,
}

impl<C: StateController> Siso<C> {
    /// Wraps `inner`, which must have exactly two inputs and one output.
    ///
    /// # Panics
    ///
    /// Panics if `inner.num_outputs() != 1`.
    #[must_use]
    pub fn new(inner: C, limits: Limits) -> Self {
        assert_eq!(inner.num_outputs(), 1, "Siso requires a single output");
        Siso { inner, limits }
    }

    /// The wrapped controller.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mutable access to the wrapped controller.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }
}

impl<C: StateController> crate::Controller for Siso<C> {
    fn step(&mut self, r: f64, y: f64) -> f64 {
        let mut out = [0.0];
        self.inner.compute(&[r, y], &mut out);
        out[0]
    }

    fn reset(&mut self) {
        self.inner.reset_states();
    }

    fn state(&self) -> Vec<f64> {
        self.inner.states()
    }

    fn set_state(&mut self, index: usize, value: f64) {
        let mut states = self.inner.states();
        assert!(index < states.len(), "state index {index} out of bounds");
        states[index] = value;
        self.inner.set_states(&states);
    }

    fn limits(&self) -> Limits {
        self.limits
    }
}

impl<C: std::fmt::Debug> std::fmt::Debug for Siso<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Siso")
            .field("inner", &self.inner)
            .field("limits", &self.limits)
            .finish()
    }
}

impl<C: std::fmt::Debug> std::fmt::Debug for Protected<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Protected")
            .field("inner", &self.inner)
            .field("state_backups", &self.state_backups)
            .field("output_backup", &self.output_backup)
            .field("report", &self.report)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Controller, PiGains};
    use crate::pi::PiController;
    use crate::protected_pi::ProtectedPiController;

    fn drive<C: StateController>(c: &mut C, iters: usize) -> Vec<f64> {
        let mut y = 0.0;
        let mut us = Vec::with_capacity(iters);
        let mut out = [0.0];
        for k in 0..iters {
            let r = if k < iters / 2 { 2000.0 } else { 3000.0 };
            c.compute(&[r, y], &mut out);
            us.push(out[0]);
            y += (out[0] * 40.0 - y) * 0.05;
        }
        us
    }

    #[test]
    fn generic_protection_reconstructs_algorithm_two() {
        // Protected<PiController> must behave exactly like the hand-written
        // ProtectedPiController, fault-free...
        let mut generic = Protected::uniform(PiController::paper(), Limits::throttle());
        let mut handwritten = ProtectedPiController::paper();
        let mut y = 0.0;
        let mut out = [0.0];
        for k in 0..650 {
            let r = if k < 325 { 2000.0 } else { 3000.0 };
            generic.compute(&[r, y], &mut out);
            let u2 = handwritten.step(r, y);
            assert_eq!(out[0], u2, "iteration {k}");
            y += (out[0] * 40.0 - y) * 0.05;
        }
    }

    #[test]
    fn generic_protection_matches_handwritten_after_state_corruption() {
        let mut generic = Protected::uniform(PiController::paper(), Limits::throttle());
        let mut handwritten = ProtectedPiController::paper();
        let mut out = [0.0];
        for _ in 0..50 {
            generic.compute(&[2000.0, 1500.0], &mut out);
            handwritten.step(2000.0, 1500.0);
        }
        // Identical corruption in both.
        generic.inner_mut().set_x(5.0e8);
        handwritten.set_state(0, 5.0e8);
        for k in 0..20 {
            generic.compute(&[2000.0, 1500.0], &mut out);
            let u2 = handwritten.step(2000.0, 1500.0);
            assert_eq!(out[0], u2, "post-corruption iteration {k}");
        }
        assert_eq!(generic.report().state_recoveries, 1);
    }

    #[test]
    fn state_recovery_event_reported() {
        let mut p = Protected::uniform(PiController::paper(), Limits::throttle());
        let mut out = [0.0];
        p.compute(&[2000.0, 1900.0], &mut out);
        assert_eq!(p.last_event(), RecoveryEvent::None);
        p.inner_mut().set_x(-1.0e4);
        p.compute(&[2000.0, 1900.0], &mut out);
        assert_eq!(p.last_event(), RecoveryEvent::State { index: 0 });
    }

    #[test]
    fn recovery_uses_previous_iteration_backup() {
        let mut p = Protected::uniform(PiController::paper(), Limits::throttle());
        let mut out = [0.0];
        for _ in 0..10 {
            p.compute(&[2000.0, 1500.0], &mut out);
        }
        let x_before = p.inner().x();
        p.inner_mut().set_x(f64::INFINITY);
        p.compute(&[2000.0, 1500.0], &mut out);
        // The backup holds the state *entering* the previous iteration, so
        // after recovery plus one fresh integration step the state equals
        // its pre-corruption value exactly.
        let _ = PiGains::paper();
        assert!((p.inner().x() - x_before).abs() < 1e-9);
    }

    #[test]
    fn report_counts_iterations() {
        let mut p = Protected::uniform(PiController::paper(), Limits::throttle());
        drive(&mut p, 100);
        assert_eq!(p.report().iterations, 100);
    }

    #[test]
    fn reset_clears_report_and_backups() {
        let mut p = Protected::uniform(PiController::paper(), Limits::throttle());
        drive(&mut p, 10);
        p.inner_mut().set_x(1e9);
        let mut out = [0.0];
        p.compute(&[0.0, 0.0], &mut out);
        assert!(p.report().total_recoveries() > 0);
        p.reset_states();
        assert_eq!(p.report(), ProtectionReport::default());
        assert_eq!(p.inner().x(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one assertion per state")]
    fn mismatched_assertion_count_panics() {
        let _ = Protected::with_assertions(PiController::paper(), vec![], vec![]);
    }

    #[test]
    fn backup_depth_survives_a_corrupted_backup() {
        // Use a rate assertion so the *backup itself* can become invalid:
        // after recovery the rate window keeps moving, and a deeper ring
        // lets the wrapper fall back to an older, still-plausible state.
        use crate::assertion::AlwaysTrue;
        struct Hostile {
            x: f64,
        }
        impl StateController for Hostile {
            fn num_states(&self) -> usize {
                1
            }
            fn num_outputs(&self) -> usize {
                1
            }
            fn states(&self) -> Vec<f64> {
                vec![self.x]
            }
            fn set_states(&mut self, s: &[f64]) {
                self.x = s[0];
            }
            fn compute(&mut self, inputs: &[f64], outputs: &mut [f64]) {
                self.x += inputs[0];
                outputs[0] = self.x;
            }
            fn reset_states(&mut self) {
                self.x = 0.0;
            }
        }
        let state: Vec<Box<dyn Assertion<f64> + Send + Sync>> =
            vec![Box::new(RangeAssertion::new(Limits::new(0.0, 100.0)))];
        let output: Vec<Box<dyn Assertion<f64> + Send + Sync>> = vec![Box::new(AlwaysTrue)];
        let mut p =
            Protected::with_assertions(Hostile { x: 0.0 }, state, output).with_backup_depth(3);
        let mut out = [0.0];
        for _ in 0..5 {
            p.compute(&[1.0], &mut out); // x: 1..5, ring holds [4,3,2]
        }
        p.inner_mut().x = -50.0; // corrupted out of range
        p.compute(&[1.0], &mut out);
        assert_eq!(p.report().state_recoveries, 1);
        // Restored from the newest valid backup (x entering iteration 5 = 4),
        // then one compute applied: 5.
        assert_eq!(p.inner().x, 5.0);
    }

    #[test]
    fn depth_one_matches_paper_semantics() {
        let mut deep =
            Protected::uniform(PiController::paper(), Limits::throttle()).with_backup_depth(1);
        let mut paper = Protected::uniform(PiController::paper(), Limits::throttle());
        let mut out_a = [0.0];
        let mut out_b = [0.0];
        for k in 0..200 {
            if k == 100 {
                deep.inner_mut().set_x(9.9e9);
                paper.inner_mut().set_x(9.9e9);
            }
            deep.compute(&[2000.0, 1900.0], &mut out_a);
            paper.compute(&[2000.0, 1900.0], &mut out_b);
            assert_eq!(out_a[0], out_b[0], "iteration {k}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_backup_depth_rejected() {
        let _ = Protected::uniform(PiController::paper(), Limits::throttle()).with_backup_depth(0);
    }

    #[test]
    fn output_recovery_rolls_back_state() {
        // Construct a pathological controller whose output is its state,
        // unlimited — so output assertions must do the work.
        struct Raw {
            x: f64,
        }
        impl StateController for Raw {
            fn num_states(&self) -> usize {
                1
            }
            fn num_outputs(&self) -> usize {
                1
            }
            fn states(&self) -> Vec<f64> {
                vec![self.x]
            }
            fn set_states(&mut self, s: &[f64]) {
                self.x = s[0];
            }
            fn compute(&mut self, inputs: &[f64], outputs: &mut [f64]) {
                self.x += inputs[0];
                outputs[0] = self.x;
            }
            fn reset_states(&mut self) {
                self.x = 0.0;
            }
        }
        let mut p = Protected::uniform(Raw { x: 0.0 }, Limits::new(0.0, 10.0));
        let mut out = [0.0];
        p.compute(&[5.0], &mut out);
        assert_eq!(out[0], 5.0);
        p.compute(&[100.0], &mut out); // would output 105 -> assertion trips
        assert_eq!(out[0], 5.0, "previous output delivered");
        assert_eq!(p.inner().x, 5.0, "state rolled back to match");
        assert_eq!(p.last_event(), RecoveryEvent::Output { index: 0 });
    }
}
