//! # bera-core — executable assertions and best effort recovery
//!
//! This crate implements the primary contribution of the DSN 2001 paper
//! *"Reducing Critical Failures for Control Algorithms Using Executable
//! Assertions and Best Effort Recovery"*:
//!
//! * [`PiController`] — the engine-speed PI controller of **Algorithm I**
//!   (proportional + integral parts, output limiter, anti-windup);
//! * [`ProtectedPiController`] — **Algorithm II**: the same controller with
//!   executable assertions on the state variable `x` and the limited output
//!   `u_lim`, plus best effort recovery from one-iteration-old backups;
//! * [`assertion`] — a reusable executable-assertion vocabulary
//!   ([`RangeAssertion`], [`RateAssertion`], combinators);
//! * [`recovery`] — the paper's Section 4.3 *general approach* for an
//!   arbitrary number of state variables and output signals, as the
//!   [`Protected`] wrapper over any [`StateController`];
//! * [`mimo`] — a discrete state-space (MIMO) controller, the paper's
//!   "future work" target, usable with the same protection wrapper;
//! * [`bitflip`] — single bit-flip helpers used by software-implemented
//!   fault injection (SWIFI).
//!
//! A *value failure* occurs when an erroneous result escapes all error
//! detection and reaches the actuator. The paper shows control loops absorb
//! most value failures, **except** those corrupting controller state — and
//! that cheap software assertions plus best effort recovery convert almost
//! all of those *severe* failures into *minor* ones.
//!
//! # Example
//!
//! ```
//! use bera_core::{Controller, PiController, ProtectedPiController};
//!
//! let mut plain = PiController::paper();
//! let mut protected = ProtectedPiController::paper();
//! // One control iteration: reference 2000 rpm, measured 1900 rpm.
//! let u1 = plain.step(2000.0, 1900.0);
//! let u2 = protected.step(2000.0, 1900.0);
//! assert_eq!(u1, u2); // identical while fault-free
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assertion;
pub mod bitflip;
pub mod controller;
pub mod mimo;
pub mod pi;
pub mod protected_pi;
pub mod recovery;

pub use assertion::{Assertion, RangeAssertion, RateAssertion};
pub use controller::{Controller, Limits, PiGains};
pub use mimo::{MimoController, StateSpace};
pub use pi::PiController;
pub use protected_pi::ProtectedPiController;
pub use recovery::{Protected, ProtectionReport, Siso, StateController};
