//! Algorithm II — the PI controller with executable assertions and best
//! effort recovery.

use crate::controller::{Controller, Limits, PiGains};
use crate::recovery::StateController;
use serde::{Deserialize, Serialize};

/// Counters describing how often the executable assertions fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Trips of the state assertion `in_range(x)` (recovered from `x_old`).
    pub state_recoveries: u64,
    /// Trips of the output assertion `in_range(u_lim)` (recovered from
    /// `u_old` and `x_old`).
    pub output_recoveries: u64,
}

impl RecoveryStats {
    /// Total number of best-effort recoveries performed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.state_recoveries + self.output_recoveries
    }
}

/// The paper's **Algorithm II**: Algorithm I extended with executable
/// assertions on the state variable `x` and the limited output `u_lim`, and
/// *best effort recovery* from the values backed up in the previous
/// iteration.
///
/// The recovery is "best effort" because the current input generally differs
/// from the previous iteration's input, so replaying old state/output may
/// still produce a (minor) value failure — but never a permanent one locked
/// at an actuator limit.
///
/// The exact iteration (changes from Algorithm I in **bold** in the paper):
///
/// ```text
/// e = r - y
/// if not in_range(x) { x = x_old } else { x_old = x }   // assert + backup
/// u     = e*Kp + x
/// u_lim = limit_output(u)
/// ki    = anti_windup ? 0 : Ki
/// x     = x + T*e*ki
/// if not in_range(u_lim) { u_lim = u_old; x = x_old }   // assert output
/// u_old = u_lim
/// return u_lim
/// ```
///
/// # Example
///
/// ```
/// use bera_core::{Controller, ProtectedPiController};
/// let mut c = ProtectedPiController::paper();
/// c.step(2000.0, 1800.0);
/// // A bit-flip corrupts the state to an impossible value...
/// c.set_state(0, 1.0e20);
/// // ...and the next iteration recovers from the backup.
/// let u = c.step(2000.0, 1810.0);
/// assert!(u < 70.0, "output is not locked at the limit");
/// assert_eq!(c.stats().state_recoveries, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedPiController {
    gains: PiGains,
    limits: Limits,
    state_range: Limits,
    x: f64,
    x_old: f64,
    u_old: f64,
    stats: RecoveryStats,
}

impl ProtectedPiController {
    /// Creates a protected controller. `state_range` is the physical range
    /// asserted on `x`; the paper uses the same throttle limits for the
    /// state and the output.
    #[must_use]
    pub fn new(gains: PiGains, limits: Limits, state_range: Limits) -> Self {
        ProtectedPiController {
            gains,
            limits,
            state_range,
            x: 0.0,
            x_old: 0.0,
            u_old: 0.0,
            stats: RecoveryStats::default(),
        }
    }

    /// The paper's configuration: paper gains, throttle limits for both the
    /// output and the state assertion.
    #[must_use]
    pub fn paper() -> Self {
        ProtectedPiController::new(PiGains::paper(), Limits::throttle(), Limits::throttle())
    }

    /// Current integrator state `x`.
    #[must_use]
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Backup of the state from the previous iteration.
    #[must_use]
    pub fn x_old(&self) -> f64 {
        self.x_old
    }

    /// Backup of the output from the previous iteration.
    #[must_use]
    pub fn u_old(&self) -> f64 {
        self.u_old
    }

    /// Assertion-trip counters accumulated since the last reset.
    #[must_use]
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    fn anti_windup_activated(&self, u: f64, e: f64) -> bool {
        (u > self.limits.hi && e > 0.0) || (u < self.limits.lo && e < 0.0)
    }
}

impl Controller for ProtectedPiController {
    fn step(&mut self, r: f64, y: f64) -> f64 {
        let e = r - y;

        // Executable assertion on the state, then backup (approach 1 & 2 of
        // Section 4.3: assert *before* the backup so an erroneous value is
        // never saved).
        if !self.state_range.contains(self.x) {
            self.stats.state_recoveries += 1;
            self.x = self.x_old; // best effort recovery
        } else {
            self.x_old = self.x; // save state x
        }

        let u = e * self.gains.kp + self.x;
        let mut u_lim = self.limits.clamp(u);
        let ki = if self.anti_windup_activated(u, e) {
            0.0
        } else {
            self.gains.ki
        };
        self.x += self.gains.t * e * ki;

        // Executable assertion on the output (approach 3): deliver the
        // previous output and roll the state back to match it.
        if !self.limits.contains(u_lim) {
            self.stats.output_recoveries += 1;
            u_lim = self.u_old;
            self.x = self.x_old;
        }
        self.u_old = u_lim; // save output
        u_lim
    }

    fn reset(&mut self) {
        self.x = 0.0;
        self.x_old = 0.0;
        self.u_old = 0.0;
        self.stats = RecoveryStats::default();
    }

    fn state(&self) -> Vec<f64> {
        vec![self.x, self.x_old, self.u_old]
    }

    fn set_state(&mut self, index: usize, value: f64) {
        match index {
            0 => self.x = value,
            1 => self.x_old = value,
            2 => self.u_old = value,
            _ => panic!("ProtectedPiController has 3 state variables, got index {index}"),
        }
    }

    fn limits(&self) -> Limits {
        self.limits
    }
}

impl StateController for ProtectedPiController {
    fn num_states(&self) -> usize {
        3
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn states(&self) -> Vec<f64> {
        vec![self.x, self.x_old, self.u_old]
    }

    fn set_states(&mut self, states: &[f64]) {
        assert_eq!(states.len(), 3, "expected [x, x_old, u_old]");
        self.x = states[0];
        self.x_old = states[1];
        self.u_old = states[2];
    }

    fn compute(&mut self, inputs: &[f64], outputs: &mut [f64]) {
        assert_eq!(inputs.len(), 2, "inputs are [r, y]");
        assert_eq!(outputs.len(), 1, "one output u_lim");
        outputs[0] = self.step(inputs[0], inputs[1]);
    }

    fn reset_states(&mut self) {
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pi::PiController;

    #[test]
    fn fault_free_behaviour_matches_algorithm_one() {
        // Sections 4.2/4.4: under fault-free conditions the two algorithms
        // deliver identical outputs.
        let mut plain = PiController::paper();
        let mut protected = ProtectedPiController::paper();
        let mut y = 0.0;
        for k in 0..650 {
            let r = if k < 325 { 2000.0 } else { 3000.0 };
            let u1 = plain.step(r, y);
            let u2 = protected.step(r, y);
            assert_eq!(u1, u2, "iteration {k}");
            // A crude fake plant so the trajectory is non-trivial.
            y += (u1 * 40.0 - y) * 0.05;
        }
        assert_eq!(protected.stats().total(), 0, "no assertions fire");
    }

    #[test]
    fn out_of_range_state_recovers_from_backup() {
        let mut c = ProtectedPiController::paper();
        // Build up some legitimate state.
        for _ in 0..50 {
            c.step(2000.0, 1500.0);
        }
        let good_x = c.x();
        assert!(good_x > 0.0);
        c.set_state(0, -4.0e7); // corrupted: far below range
        c.step(2000.0, 1500.0);
        assert_eq!(c.stats().state_recoveries, 1);
        // The recovered state continued integrating from x_old, not from the
        // corrupted value.
        assert!((c.x() - good_x).abs() < 1.0);
    }

    #[test]
    fn nan_state_recovers() {
        let mut c = ProtectedPiController::paper();
        c.step(2000.0, 1900.0);
        c.set_state(0, f64::NAN);
        let u = c.step(2000.0, 1900.0);
        assert!(u.is_finite());
        assert!(c.x().is_finite());
        assert_eq!(c.stats().state_recoveries, 1);
    }

    #[test]
    fn no_permanent_lock_at_full_throttle() {
        // The headline claim: the failure mode "throttle locked at full
        // speed" disappears. Corrupt the state to a huge value and verify the
        // output returns below the limit immediately.
        let mut c = ProtectedPiController::paper();
        for _ in 0..100 {
            c.step(2000.0, 1990.0);
        }
        c.set_state(0, 1.0e20);
        let mut locked = 0;
        for _ in 0..650 {
            let u = c.step(2000.0, 1990.0);
            if u >= 70.0 {
                locked += 1;
            }
        }
        assert_eq!(locked, 0, "output must never lock at the limit");
    }

    #[test]
    fn in_range_corruption_is_not_detected() {
        // Figure 10: a corruption to 69 degrees is inside the asserted range
        // and must slip through (the residual semi-permanent failures).
        let mut c = ProtectedPiController::paper();
        for _ in 0..100 {
            c.step(2000.0, 1995.0);
        }
        c.set_state(0, 69.0);
        c.step(2000.0, 1995.0);
        assert_eq!(c.stats().total(), 0, "range assertion is blind here");
        assert!(c.x() > 60.0, "corrupted state persists");
    }

    #[test]
    fn backup_tracks_last_good_state() {
        let mut c = ProtectedPiController::paper();
        c.step(2000.0, 1000.0);
        let x_after_1 = c.x();
        c.step(2000.0, 1000.0);
        assert_eq!(c.x_old(), x_after_1, "x_old is last iteration's x");
    }

    #[test]
    fn output_backup_tracks_last_output() {
        let mut c = ProtectedPiController::paper();
        let u = c.step(2000.0, 1000.0);
        assert_eq!(c.u_old(), u);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = ProtectedPiController::paper();
        c.step(2000.0, 0.0);
        c.set_state(0, 1e9);
        c.step(2000.0, 0.0);
        c.reset();
        assert_eq!(c.x(), 0.0);
        assert_eq!(c.x_old(), 0.0);
        assert_eq!(c.u_old(), 0.0);
        assert_eq!(c.stats(), RecoveryStats::default());
    }

    #[test]
    fn corrupted_backup_only_is_harmless_while_x_stays_valid() {
        let mut c = ProtectedPiController::paper();
        for _ in 0..10 {
            c.step(2000.0, 1500.0);
        }
        let mut reference = c.clone();
        c.set_state(1, 9.9e9); // corrupt x_old
        let u1 = c.step(2000.0, 1500.0);
        let u2 = reference.step(2000.0, 1500.0);
        // x was valid, so x_old is immediately re-written by the backup.
        assert_eq!(u1, u2);
        assert_eq!(c.x_old(), reference.x_old());
    }

    #[test]
    #[should_panic(expected = "3 state variables")]
    fn set_state_bounds_checked() {
        ProtectedPiController::paper().set_state(3, 0.0);
    }

    #[test]
    fn recovery_stats_total() {
        let s = RecoveryStats {
            state_recoveries: 2,
            output_recoveries: 3,
        };
        assert_eq!(s.total(), 5);
    }
}
