//! The [`Controller`] trait and shared controller parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// PI controller gains and the sample interval.
///
/// The paper's controller (Figure 2) has a proportional gain `Kp`, an
/// integral gain `Ki`, and samples every `T` seconds (15.4 ms, giving 650
/// iterations over the observed 10 s interval).
///
/// # Example
///
/// ```
/// use bera_core::PiGains;
/// let g = PiGains::paper();
/// assert!((g.t - 0.0154).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiGains {
    /// Proportional gain `Kp` (degrees of throttle per rpm of error).
    pub kp: f64,
    /// Integral gain `Ki`.
    pub ki: f64,
    /// Sample interval `T` in seconds.
    pub t: f64,
}

impl PiGains {
    /// Sample interval used in the paper: 15.4 ms.
    pub const PAPER_SAMPLE_INTERVAL: f64 = 0.0154;

    /// Gains tuned so the closed loop against [`Engine::paper`] reproduces
    /// the qualitative shape of the paper's Figure 3 (fast, lightly damped
    /// tracking of the 2000 → 3000 rpm step with visible load dips).
    ///
    /// [`Engine::paper`]: https://docs.rs/bera-plant
    #[must_use]
    pub fn paper() -> Self {
        PiGains {
            kp: 0.045,
            ki: 0.05,
            t: Self::PAPER_SAMPLE_INTERVAL,
        }
    }
}

/// Saturation limits of an actuator signal.
///
/// The engine throttle opening angle lies between 0.0 and 70.0 degrees.
///
/// # Example
///
/// ```
/// use bera_core::Limits;
/// let l = Limits::throttle();
/// assert_eq!(l.clamp(100.0), 70.0);
/// assert_eq!(l.clamp(-3.0), 0.0);
/// assert!(l.contains(35.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Limits {
    /// Lower saturation bound.
    pub lo: f64,
    /// Upper saturation bound.
    pub hi: f64,
}

impl Limits {
    /// Creates limits `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "limits must be finite");
        assert!(
            lo <= hi,
            "lower limit {lo} must not exceed upper limit {hi}"
        );
        Limits { lo, hi }
    }

    /// The paper's throttle limits: 0.0 to 70.0 degrees.
    #[must_use]
    pub fn throttle() -> Self {
        Limits::new(0.0, 70.0)
    }

    /// Clamps `value` into the interval (`limit_output` in the paper's
    /// pseudo-code). NaN clamps to the lower bound so a corrupted value can
    /// never escape the actuator range.
    #[must_use]
    pub fn clamp(&self, value: f64) -> f64 {
        if value.is_nan() {
            return self.lo;
        }
        value.clamp(self.lo, self.hi)
    }

    /// Returns `true` when `value` lies inside the closed interval
    /// (the `in_range` executable assertion of Algorithm II). NaN is never
    /// in range.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Interval width.
    #[must_use]
    pub fn span(&self) -> f64 {
        self.hi - self.lo
    }
}

impl fmt::Display for Limits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// A single-input single-output sampled-data controller.
///
/// One call to [`Controller::step`] is one iteration of the paper's control
/// loop: it consumes the reference `r` and the measurement `y` and returns
/// the limited actuator command `u_lim`.
pub trait Controller {
    /// Executes one control iteration and returns the limited output.
    fn step(&mut self, r: f64, y: f64) -> f64;

    /// Resets all controller state to its initial value.
    fn reset(&mut self);

    /// Read access to the controller's state variables (the integrator state
    /// `x` for the PI controller). Used by the classifier and by SWIFI.
    fn state(&self) -> Vec<f64>;

    /// Overwrites one state variable; the hook through which
    /// software-implemented fault injection corrupts controller state.
    ///
    /// # Panics
    ///
    /// Implementations panic if `index` is out of bounds.
    fn set_state(&mut self, index: usize, value: f64);

    /// The actuator limits this controller enforces on its output.
    fn limits(&self) -> Limits;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttle_limits() {
        let l = Limits::throttle();
        assert_eq!(l.lo, 0.0);
        assert_eq!(l.hi, 70.0);
        assert_eq!(l.span(), 70.0);
    }

    #[test]
    fn clamp_handles_nan_and_infinities() {
        let l = Limits::throttle();
        assert_eq!(l.clamp(f64::NAN), 0.0);
        assert_eq!(l.clamp(f64::INFINITY), 70.0);
        assert_eq!(l.clamp(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn contains_rejects_nan() {
        assert!(!Limits::throttle().contains(f64::NAN));
    }

    #[test]
    fn contains_is_closed_interval() {
        let l = Limits::throttle();
        assert!(l.contains(0.0));
        assert!(l.contains(70.0));
        assert!(!l.contains(70.0001));
        assert!(!l.contains(-0.0001));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_limits_panic() {
        let _ = Limits::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_limits_panic() {
        let _ = Limits::new(f64::NAN, 1.0);
    }

    #[test]
    fn paper_gains_sample_interval() {
        assert_eq!(PiGains::paper().t, PiGains::PAPER_SAMPLE_INTERVAL);
        // 650 iterations at 15.4 ms ≈ 10 s, as in Section 2.
        assert!((650.0 * PiGains::PAPER_SAMPLE_INTERVAL - 10.0).abs() < 0.02);
    }

    #[test]
    fn display_limits() {
        assert_eq!(Limits::throttle().to_string(), "[0, 70]");
    }
}
