//! Single bit-flip helpers for software-implemented fault injection.
//!
//! The paper's fault model is the **single bit-flip**, representing a
//! transient upset caused by a particle strike. These helpers flip one bit
//! of the IEEE-754 representation of a float, which is how SWIFI corrupts a
//! controller variable held in memory.

/// Flips bit `bit` (0 = least significant) of the `f64` bit pattern.
///
/// # Panics
///
/// Panics if `bit >= 64`.
///
/// # Example
///
/// ```
/// use bera_core::bitflip::flip_bit_f64;
/// let x = 10.0_f64;
/// let corrupted = flip_bit_f64(x, 62); // high exponent bit
/// assert!(corrupted > 1.0e100 || corrupted < 1.0e-100);
/// // Flipping twice restores the original value exactly.
/// assert_eq!(flip_bit_f64(corrupted, 62), x);
/// ```
#[must_use]
pub fn flip_bit_f64(value: f64, bit: u32) -> f64 {
    assert!(bit < 64, "f64 has 64 bits, got bit index {bit}");
    f64::from_bits(value.to_bits() ^ (1u64 << bit))
}

/// Flips bit `bit` (0 = least significant) of the `f32` bit pattern —
/// the representation used by the Thor-like target, whose registers are
/// 32 bits wide.
///
/// # Panics
///
/// Panics if `bit >= 32`.
#[must_use]
pub fn flip_bit_f32(value: f32, bit: u32) -> f32 {
    assert!(bit < 32, "f32 has 32 bits, got bit index {bit}");
    f32::from_bits(value.to_bits() ^ (1u32 << bit))
}

/// Flips bit `bit` of a raw 32-bit word (registers, instruction words,
/// cache data).
///
/// # Panics
///
/// Panics if `bit >= 32`.
#[must_use]
pub fn flip_bit_u32(value: u32, bit: u32) -> u32 {
    assert!(bit < 32, "u32 has 32 bits, got bit index {bit}");
    value ^ (1u32 << bit)
}

/// Classifies which IEEE-754 field of an `f64` a bit index falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatField {
    /// Bits 0–51: the mantissa (fraction).
    Mantissa,
    /// Bits 52–62: the biased exponent.
    Exponent,
    /// Bit 63: the sign.
    Sign,
}

/// Returns the IEEE-754 field that bit `bit` of an `f64` belongs to.
///
/// # Panics
///
/// Panics if `bit >= 64`.
#[must_use]
pub fn f64_field(bit: u32) -> FloatField {
    match bit {
        0..=51 => FloatField::Mantissa,
        52..=62 => FloatField::Exponent,
        63 => FloatField::Sign,
        _ => panic!("f64 has 64 bits, got bit index {bit}"),
    }
}

/// Returns the IEEE-754 field that bit `bit` of an `f32` belongs to.
///
/// # Panics
///
/// Panics if `bit >= 32`.
#[must_use]
pub fn f32_field(bit: u32) -> FloatField {
    match bit {
        0..=22 => FloatField::Mantissa,
        23..=30 => FloatField::Exponent,
        31 => FloatField::Sign,
        _ => panic!("f32 has 32 bits, got bit index {bit}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive_f64() {
        let x = 12.345_f64;
        for bit in 0..64 {
            assert_eq!(
                flip_bit_f64(flip_bit_f64(x, bit), bit).to_bits(),
                x.to_bits()
            );
        }
    }

    #[test]
    fn flip_is_involutive_f32() {
        let x = 12.345_f32;
        for bit in 0..32 {
            assert_eq!(
                flip_bit_f32(flip_bit_f32(x, bit), bit).to_bits(),
                x.to_bits()
            );
        }
    }

    #[test]
    fn sign_flip_negates() {
        assert_eq!(flip_bit_f64(10.0, 63), -10.0);
        assert_eq!(flip_bit_f32(10.0, 31), -10.0);
    }

    #[test]
    fn low_mantissa_flip_is_tiny() {
        let x = 10.0_f64;
        let y = flip_bit_f64(x, 0);
        assert!((x - y).abs() < 1e-10, "LSB flip barely changes the value");
    }

    #[test]
    fn high_exponent_flip_is_huge() {
        let x = 10.0_f64;
        let y = flip_bit_f64(x, 62);
        // 10.0 has exponent bit 62 set, so flipping it collapses the value.
        assert!(y < 1e-100 && y > 0.0);
    }

    #[test]
    fn u32_flip() {
        assert_eq!(flip_bit_u32(0, 5), 32);
        assert_eq!(flip_bit_u32(32, 5), 0);
    }

    #[test]
    fn field_classification_f64() {
        assert_eq!(f64_field(0), FloatField::Mantissa);
        assert_eq!(f64_field(51), FloatField::Mantissa);
        assert_eq!(f64_field(52), FloatField::Exponent);
        assert_eq!(f64_field(62), FloatField::Exponent);
        assert_eq!(f64_field(63), FloatField::Sign);
    }

    #[test]
    fn field_classification_f32() {
        assert_eq!(f32_field(22), FloatField::Mantissa);
        assert_eq!(f32_field(23), FloatField::Exponent);
        assert_eq!(f32_field(31), FloatField::Sign);
    }

    #[test]
    #[should_panic(expected = "64 bits")]
    fn f64_bit_out_of_range_panics() {
        let _ = flip_bit_f64(1.0, 64);
    }

    #[test]
    #[should_panic(expected = "32 bits")]
    fn f32_bit_out_of_range_panics() {
        let _ = flip_bit_f32(1.0, 32);
    }
}
