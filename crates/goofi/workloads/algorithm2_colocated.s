; =====================================================================
; Algorithm II — the PI controller with executable assertions and best
; effort recovery (DSN 2001, Section 4.3). Changes from Algorithm I:
;
;   if not in_range(x)     then x = x_old        else x_old = x
;   ...unchanged PI computation...
;   if not in_range(u_lim) then u_lim = u_old; x = x_old
;   u_old = u_lim
;
; ABLATION VARIANT: the backups x_old/u_old share cache line 0 with the
; state x, so a single line-0 upset can corrupt a variable together
; with its backup — demonstrating why algorithm2.s places the backups
; in a different cache line.
; =====================================================================

.equ X,      0x00      ; controller state (cache line 0)
.equ E,      0x10      ; statement variables (cache line 1)
.equ U,      0x14
.equ ULIM,   0x18
.equ KIV,    0x1C
.equ YVAR,   0x20      ; inputs + intermediates (cache line 2)
.equ RVAR,   0x24
.equ TE,     0x28
.equ TEKI,   0x2C
.equ ITER,   0x30      ; housekeeping (cache line 3)
.equ RINGP,  0x34
.equ CKSUM,  0x38
.equ XOLD,   0x04      ; backups co-located with x (cache line 0!)
.equ UOLD,   0x08

.data 0x10000
x_state:  .float 0.0
x_old:    .float 0.0
u_old:    .float 0.0
          .float 0.0
.data 0x10010
e_v:      .float 0.0
u_v:      .float 0.0
ulim_v:   .float 0.0
kiv_v:    .float 0.0
.data 0x10020
y_v:      .float 0.0
r_v:      .float 0.0
te_v:     .float 0.0
teki_v:   .float 0.0
.data 0x10030
iter_v:   .word 0
ringp_v:  .word 0
cksum_v:  .word 0
          .word 0

.text
start:
    nop
loop:
    ; --- sample the inputs ---
    li   r1, 0x10000         ; (address materialised per statement block)
    in   r2, 0
    st   r2, [r1+RVAR]       ; r := reference port
    in   r2, 1
    st   r2, [r1+YVAR]       ; y := feedback port
    ; --- e = r - y ---
    li   r1, 0x10000         ; (address materialised per statement block)
    li   r14, 0x20FF0
    ld   r2, [r1+RVAR]
    ld   r3, [r1+YVAR]
    fsub r4, r2, r3
    st   r4, [r1+E]
    st   r4, [r14-4]         ; callee save area (stack traffic)
    ; --- executable assertion on x, then backup (before use!) ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+X]
    lif  r3, 0.0
    lif  r5, 70.0
    fcmp r2, r3
    blt  x_recover           ; x < 0.0  -> ERROR! recover
    fcmp r2, r5
    bgt  x_recover           ; x > 70.0 -> ERROR! recover
    st   r2, [r1+XOLD]       ; in range: save state x
    jmp  x_done
x_recover:
    ld   r2, [r1+XOLD]       ; best effort recovery: x = x_old
    st   r2, [r1+X]
x_done:
    ; --- u = Kp*e + x ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+E]
    lif  r3, 0.045           ; Kp
    fmul r4, r2, r3
    ld   r5, [r1+X]
    fadd r4, r4, r5
    st   r4, [r1+U]
    ; --- u_lim = limit_output(u) ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+U]
    lif  r3, 0.0             ; UMIN
    lif  r5, 70.0            ; UMAX
    mov  r4, r2
    fcmp r4, r5
    ble  not_above
    mov  r4, r5
not_above:
    fcmp r4, r3
    bge  not_below
    mov  r4, r3
not_below:
    st   r4, [r1+ULIM]
    ; --- anti-windup: Ki = 0 while saturated outward ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+U]
    ld   r6, [r1+E]
    lif  r3, 0.0
    lif  r5, 70.0
    lif  r7, 0.05            ; Ki (integral gain)
    fcmp r2, r5
    ble  check_low
    fcmp r6, r3
    ble  windup_done
    mov  r7, r3              ; Ki := 0
    jmp  windup_done
check_low:
    fcmp r2, r3
    bge  windup_done
    fcmp r6, r3
    bge  windup_done
    mov  r7, r3              ; Ki := 0
windup_done:
    st   r7, [r1+KIV]
    ; --- x = x + T*e*Ki ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+E]
    lif  r3, 0.0154          ; T (sample interval)
    fmul r4, r2, r3
    st   r4, [r1+TE]
    ld   r2, [r1+TE]
    ld   r3, [r1+KIV]
    fmul r4, r2, r3
    st   r4, [r1+TEKI]
    ld   r2, [r1+X]
    ld   r3, [r1+TEKI]
    fadd r4, r2, r3
    st   r4, [r1+X]
    ; --- executable assertion on the output u_lim ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+ULIM]
    lif  r3, 0.0
    lif  r5, 70.0
    fcmp r2, r3
    blt  u_recover           ; u_lim < 0.0  -> ERROR!
    fcmp r2, r5
    bgt  u_recover           ; u_lim > 70.0 -> ERROR!
    jmp  u_done
u_recover:
    ld   r2, [r1+UOLD]       ; deliver the previous output ...
    st   r2, [r1+ULIM]
    ld   r2, [r1+XOLD]       ; ... and the state that produced it
    st   r2, [r1+X]
u_done:
    ; --- u_old = u_lim ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+ULIM]
    st   r2, [r1+UOLD]
    ; --- data logging: write (u_lim, e) into the ring buffer ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+ITER]
    li   r3, 55
    and  r4, r2, r3          ; slot index, masked into 0..55
    li   r3, 8
    mul  r4, r4, r3          ; byte offset = slot * 8
    st   r4, [r1+RINGP]
    li   r3, 0x10110         ; ring base
    add  r5, r4, r3
    ld   r6, [r1+ULIM]
    st   r6, [r5+0]
    ld   r6, [r1+E]
    st   r6, [r5+4]
    ; --- run-time housekeeping: checksum scrub over the log buffer ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ; (stands in for the Ada run-time / RTW logging work the paper's
    ;  target executed around the controller block every iteration)
    li   r8, 0x10110         ; scrub pointer
    li   r9, 0x10180         ; scrub end (28 words, cache indexes 1..7)
    li   r10, 0              ; checksum accumulator
scrub:
    ld   r11, [r8+0]
    xor  r10, r10, r11
    addi r8, r8, 4
    cmp  r8, r9
    blt  scrub
    st   r10, [r1+CKSUM]
    ; --- iteration counter ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+ITER]
    addi r2, r2, 1
    st   r2, [r1+ITER]
    ; --- stack restore ritual ---
    li   r14, 0x20FF0
    ld   r2, [r14-4]
    st   r2, [r14-8]
    ; --- deliver the output ---
    li   r1, 0x10000         ; (address materialised per statement block)
    ld   r2, [r1+ULIM]
    out  r2, 2
    yield
    jmp  loop
