//! Error and failure classification (Section 4.1 of the paper).
//!
//! Every fault-injection experiment ends in exactly one class:
//!
//! * **Effective errors**
//!   * *Detected errors* — an error detection mechanism fired;
//!   * *Undetected wrong results* (value failures) — the controller
//!     delivered an output sequence different from the fault-free run:
//!     * **severe**: *permanent* (output pinned at a limit from the first
//!       failure to the end of the observed interval) or *semi-permanent*
//!       (strong deviation over more than one iteration);
//!     * **minor**: *transient* (strong deviation during exactly one
//!       iteration) or *insignificant* (all deviations below 0.1°).
//! * **Non-effective errors**
//!   * *latent* — outputs identical but machine state differs at the end;
//!   * *overwritten* — no difference remains anywhere.
//!
//! A run that neither trapped nor finished (a corrupted infinite loop) is
//! recorded as [`Outcome::Hang`]; the paper's analysis software would file
//! it under "other errors".

use bera_tcpu::edm::ErrorMechanism;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity of an undetected wrong result (a value failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Output pinned at the minimum or maximum from the first failure to
    /// the end of the observed interval (e.g. throttle locked at full
    /// speed, Figure 7).
    Permanent,
    /// Strong deviation (> 0.1°) over more than one iteration (Figure 8).
    SemiPermanent,
    /// Strong deviation during exactly one iteration, then rapid
    /// convergence (Figure 9).
    Transient,
    /// All deviations below 0.1° — almost identical to the fault-free
    /// output.
    Insignificant,
}

impl Severity {
    /// `true` for the severe classes (permanent, semi-permanent).
    #[must_use]
    pub fn is_severe(&self) -> bool {
        matches!(self, Severity::Permanent | Severity::SemiPermanent)
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Permanent => "Permanent",
            Severity::SemiPermanent => "Semi-Permanent",
            Severity::Transient => "Transient",
            Severity::Insignificant => "Insignificant",
        })
    }
}

/// Why the *harness* — not the target — failed to produce a result for an
/// experiment, after the supervised retry was also exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HarnessCause {
    /// The experiment code panicked (caught at the supervisor's
    /// `catch_unwind` boundary); the payload travels in
    /// [`crate::experiment::ExperimentRecord::harness_error`].
    Panic,
    /// The wall-clock watchdog deadline expired before the experiment
    /// terminated (on top of the instruction cap, which bounds *target*
    /// progress but not host time).
    Deadline,
}

impl fmt::Display for HarnessCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HarnessCause::Panic => "panic",
            HarnessCause::Deadline => "deadline",
        })
    }
}

/// The final classification of one fault-injection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// An error detection mechanism fired.
    Detected(ErrorMechanism),
    /// The workload stopped making progress (no yield, no trap) — filed
    /// under "other errors".
    Hang,
    /// The controller produced an undetected wrong result.
    ValueFailure(Severity),
    /// Outputs correct, but machine or memory state differs at the end.
    Latent,
    /// No trace of the fault remains.
    Overwritten,
    /// The *harness* could not run this experiment (panic or watchdog
    /// deadline, twice in a row): the fault is quarantined with an explicit
    /// record instead of aborting the campaign. Says nothing about what the
    /// fault would have done to the target.
    HarnessFailure(HarnessCause),
}

impl Outcome {
    /// Effective errors: detected, hangs, or value failures. A quarantined
    /// [`Outcome::HarnessFailure`] is neither effective nor non-effective —
    /// no target outcome was observed — and reports false here.
    #[must_use]
    pub fn is_effective(&self) -> bool {
        match self {
            Outcome::Detected(_) | Outcome::Hang | Outcome::ValueFailure(_) => true,
            Outcome::Latent | Outcome::Overwritten | Outcome::HarnessFailure(_) => false,
        }
    }

    /// `true` when the harness (not the target) failed on this experiment.
    #[must_use]
    pub fn is_harness_failure(&self) -> bool {
        matches!(self, Outcome::HarnessFailure(_))
    }

    /// `true` when this is a severe value failure.
    #[must_use]
    pub fn is_severe_failure(&self) -> bool {
        matches!(self, Outcome::ValueFailure(s) if s.is_severe())
    }

    /// `true` when this is any undetected wrong result.
    #[must_use]
    pub fn is_value_failure(&self) -> bool {
        matches!(self, Outcome::ValueFailure(_))
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Detected(m) => write!(f, "Detected ({m})"),
            Outcome::Hang => f.write_str("Hang"),
            Outcome::ValueFailure(s) => write!(f, "Undetected Wrong Result ({s})"),
            Outcome::Latent => f.write_str("Latent"),
            Outcome::Overwritten => f.write_str("Overwritten"),
            Outcome::HarnessFailure(c) => write!(f, "Harness Failure ({c})"),
        }
    }
}

/// Classifies value failures from output sequences.
///
/// The transient/semi-permanent boundary follows the paper's *figures*
/// rather than a one-iteration literalism: Figure 9's transient "rapidly
/// starts to converge" (a short spike), while Figure 8's semi-permanent
/// deviation persists for an extended period (and Figure 10's residual
/// failure "stabilises after approximately 1 second" and is classified
/// semi-permanent). In a closed loop, even a one-iteration actuator spike
/// leaves a small converging tail, so we treat a failure as *transient*
/// when all strong deviations fall within a burst of
/// [`Classifier::transient_horizon`] iterations (default 32 ≈ 0.5 s) and
/// as *semi-permanent* when they span longer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Classifier {
    /// Deviation (degrees) above which an iteration "differs strongly".
    pub threshold: f64,
    /// Lower actuator limit.
    pub lo: f64,
    /// Upper actuator limit.
    pub hi: f64,
    /// Tolerance when deciding whether an output sits at a limit.
    pub limit_eps: f64,
    /// Maximum span (iterations) of strong deviations for a failure to
    /// count as transient ("rapidly converges").
    pub transient_horizon: usize,
}

impl Classifier {
    /// The paper's parameters: 0.1° threshold, 0–70° limits, and a 0.5 s
    /// transient burst horizon.
    #[must_use]
    pub fn paper() -> Self {
        Classifier {
            threshold: 0.1,
            lo: 0.0,
            hi: 70.0,
            limit_eps: 1e-3,
            transient_horizon: 32,
        }
    }

    /// Classifies an output sequence against the fault-free reference.
    /// Returns `None` when the sequences are bit-identical (a non-effective
    /// error as far as the outputs are concerned).
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths.
    #[must_use]
    pub fn classify_bits(&self, golden: &[u32], observed: &[u32]) -> Option<Severity> {
        assert_eq!(golden.len(), observed.len(), "sequence length mismatch");
        if golden == observed {
            return None;
        }
        let g: Vec<f64> = golden
            .iter()
            .map(|&b| f64::from(f32::from_bits(b)))
            .collect();
        let o: Vec<f64> = observed
            .iter()
            .map(|&b| f64::from(f32::from_bits(b)))
            .collect();
        Some(self.classify_values(&g, &o))
    }

    /// Classifies real-valued output sequences that are known to differ.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths or are empty.
    #[must_use]
    pub fn classify_values(&self, golden: &[f64], observed: &[f64]) -> Severity {
        assert_eq!(golden.len(), observed.len(), "sequence length mismatch");
        assert!(!golden.is_empty(), "empty sequences cannot be classified");
        let dev: Vec<f64> = golden
            .iter()
            .zip(observed.iter())
            .map(|(g, o)| {
                if o.is_finite() {
                    (g - o).abs()
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        let strong: Vec<usize> = dev
            .iter()
            .enumerate()
            .filter_map(|(k, &d)| (d > self.threshold).then_some(k))
            .collect();
        match strong.len() {
            0 => Severity::Insignificant,
            _ => {
                let first = strong[0];
                let last = strong[strong.len() - 1];
                let at_hi = |v: f64| (self.hi - v).abs() <= self.limit_eps;
                let at_lo = |v: f64| (v - self.lo).abs() <= self.limit_eps;
                let tail = &observed[first..];
                let pinned = tail.iter().all(|&v| at_hi(v)) || tail.iter().all(|&v| at_lo(v));
                if pinned {
                    Severity::Permanent
                } else if last - first < self.transient_horizon {
                    Severity::Transient
                } else {
                    Severity::SemiPermanent
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> Classifier {
        Classifier::paper()
    }

    fn constant(v: f64, n: usize) -> Vec<f64> {
        vec![v; n]
    }

    #[test]
    fn identical_bits_are_not_a_value_failure() {
        let g: Vec<u32> = (0..10).map(|k| (k as f32).to_bits()).collect();
        assert_eq!(c().classify_bits(&g, &g.clone()), None);
    }

    #[test]
    fn insignificant_below_threshold() {
        let g = constant(20.0, 650);
        let mut o = g.clone();
        for v in o.iter_mut().take(100) {
            *v += 0.05; // below the 0.1° threshold
        }
        assert_eq!(c().classify_values(&g, &o), Severity::Insignificant);
    }

    #[test]
    fn transient_single_strong_iteration() {
        let g = constant(20.0, 650);
        let mut o = g.clone();
        o[300] = 25.0;
        assert_eq!(c().classify_values(&g, &o), Severity::Transient);
    }

    #[test]
    fn semi_permanent_extended_deviation() {
        let g = constant(20.0, 650);
        let mut o = g.clone();
        // Strong deviation persisting for ~100 iterations (Figure 8 shape:
        // an extended period, converging before the window ends).
        for k in 0..100 {
            o[300 + k] = 20.0 + 10.0 * (0.99f64).powi(k as i32);
        }
        assert_eq!(c().classify_values(&g, &o), Severity::SemiPermanent);
    }

    #[test]
    fn short_burst_with_tail_is_transient() {
        let g = constant(20.0, 650);
        let mut o = g.clone();
        // A spike followed by a rapidly converging tail (Figure 9 shape):
        // strong deviations confined to a sub-horizon burst.
        o[300] = 45.0;
        for k in 1..20 {
            o[300 + k] = 20.0 + 3.0 * (0.7f64).powi(k as i32);
        }
        assert_eq!(c().classify_values(&g, &o), Severity::Transient);
    }

    #[test]
    fn permanent_pinned_at_max() {
        let g = constant(20.0, 650);
        let mut o = g.clone();
        for v in o.iter_mut().skip(300) {
            *v = 70.0; // locked at full throttle until the end (Figure 7)
        }
        assert_eq!(c().classify_values(&g, &o), Severity::Permanent);
    }

    #[test]
    fn permanent_pinned_at_min() {
        let g = constant(20.0, 650);
        let mut o = g.clone();
        for v in o.iter_mut().skip(100) {
            *v = 0.0;
        }
        assert_eq!(c().classify_values(&g, &o), Severity::Permanent);
    }

    #[test]
    fn pinned_then_recovering_is_semi_permanent() {
        let g = constant(20.0, 650);
        let mut o = g.clone();
        o[300..400].fill(70.0);
        // Converges back before the end of the window.
        assert_eq!(c().classify_values(&g, &o), Severity::SemiPermanent);
    }

    #[test]
    fn non_finite_output_counts_as_strong_deviation() {
        let g = constant(20.0, 10);
        let mut o = g.clone();
        o[5] = f64::NAN;
        assert_eq!(c().classify_values(&g, &o), Severity::Transient);
    }

    #[test]
    fn bit_level_differences_below_visibility_are_insignificant() {
        let g: Vec<u32> = vec![20.0f32.to_bits(); 650];
        let mut o = g.clone();
        o[10] ^= 1; // LSB of the mantissa: tiny numeric change
        assert_eq!(c().classify_bits(&g, &o), Some(Severity::Insignificant));
    }

    #[test]
    fn severity_severe_split() {
        assert!(Severity::Permanent.is_severe());
        assert!(Severity::SemiPermanent.is_severe());
        assert!(!Severity::Transient.is_severe());
        assert!(!Severity::Insignificant.is_severe());
    }

    #[test]
    fn outcome_queries() {
        use bera_tcpu::edm::ErrorMechanism as Edm;
        assert!(Outcome::Detected(Edm::AddressError).is_effective());
        assert!(Outcome::Hang.is_effective());
        assert!(!Outcome::Latent.is_effective());
        assert!(!Outcome::Overwritten.is_effective());
        assert!(Outcome::ValueFailure(Severity::Permanent).is_severe_failure());
        assert!(!Outcome::ValueFailure(Severity::Transient).is_severe_failure());
        assert!(Outcome::ValueFailure(Severity::Insignificant).is_value_failure());
        let quarantined = Outcome::HarnessFailure(HarnessCause::Panic);
        assert!(!quarantined.is_effective());
        assert!(!quarantined.is_value_failure());
        assert!(quarantined.is_harness_failure());
        assert_eq!(quarantined.to_string(), "Harness Failure (panic)");
        assert_eq!(
            Outcome::HarnessFailure(HarnessCause::Deadline).to_string(),
            "Harness Failure (deadline)"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = c().classify_values(&[1.0], &[1.0, 2.0]);
    }
}
