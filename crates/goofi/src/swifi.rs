//! Pre-runtime software-implemented fault injection (SWIFI) on the native
//! controllers.
//!
//! GOOFI supports two techniques: SCIFI (scan chains, [`crate::campaign`])
//! and **SWIFI**, which corrupts workload variables directly in memory.
//! Here SWIFI flips one bit of one controller state variable between two
//! control iterations of the *native* Rust controllers — a fast,
//! CPU-model-free view of the same question: *what does a corrupted state
//! variable do to the controlled object, and how much does the protection
//! of Algorithm II help?*

use crate::classify::{Classifier, Severity};
use crate::experiment::FaultModel;
use bera_core::bitflip::flip_bit_f64;
use bera_core::Controller;
use bera_plant::{Engine, Profiles};
use bera_stats::sampling::UniformSampler;
use serde::{Deserialize, Serialize};

/// Configuration of a SWIFI campaign.
#[derive(Debug, Clone)]
pub struct SwifiConfig {
    /// Number of faults to inject.
    pub faults: usize,
    /// RNG seed.
    pub seed: u64,
    /// Control iterations per run (650 in the paper).
    pub iterations: usize,
    /// The fault model, applied over the 64 bits of the targeted state
    /// variable's `f64` representation (the paper uses single bit-flips).
    pub model: FaultModel,
}

impl SwifiConfig {
    /// The paper-shaped configuration.
    #[must_use]
    pub fn paper(faults: usize, seed: u64) -> Self {
        SwifiConfig {
            faults,
            seed,
            iterations: 650,
            model: FaultModel::SingleBit,
        }
    }
}

/// One SWIFI fault: which state variable, which bit, before which
/// iteration, under which fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwifiFault {
    /// Index of the controller state variable.
    pub state_index: usize,
    /// Anchor bit of the `f64` representation (0–63); multi-bit models
    /// cluster around it.
    pub bit: u32,
    /// The fault is injected before this iteration.
    pub iteration: usize,
    /// The fault model governing the perturbation and any re-assertions.
    pub model: FaultModel,
}

/// Forces one bit of an `f64`'s representation to `value`.
fn force_bit_f64(v: f64, bit: u32, value: bool) -> f64 {
    if ((v.to_bits() >> bit) & 1 != 0) == value {
        v
    } else {
        flip_bit_f64(v, bit)
    }
}

/// Applies a fault's perturbation to one state value: every bit of the
/// model's cluster is flipped (or forced, for stuck-at). Used both for the
/// initial injection and for re-assertions, which by construction apply
/// the identical perturbation.
fn perturb(state: f64, fault: &SwifiFault) -> f64 {
    let mut v = state;
    for b in fault.model.cluster(fault.bit as usize, 64) {
        v = match fault.model {
            FaultModel::StuckAt { value } => force_bit_f64(v, b as u32, value),
            _ => flip_bit_f64(v, b as u32),
        };
    }
    v
}

/// The record of one SWIFI experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwifiRecord {
    /// The injected fault.
    pub fault: SwifiFault,
    /// Value-failure severity; `None` when the output sequence was
    /// identical to the golden run (the flip never became visible).
    pub severity: Option<Severity>,
    /// Largest absolute output deviation (degrees).
    pub max_deviation: f64,
}

/// Aggregate of a SWIFI campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwifiResult {
    /// Per-experiment records.
    pub records: Vec<SwifiRecord>,
}

impl SwifiResult {
    /// Number of experiments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no experiments were run.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of experiments with the given severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.records
            .iter()
            .filter(|r| r.severity == Some(severity))
            .count()
    }

    /// Count of severe value failures (permanent + semi-permanent).
    #[must_use]
    pub fn severe(&self) -> usize {
        self.count(Severity::Permanent) + self.count(Severity::SemiPermanent)
    }

    /// Count of experiments whose output never differed.
    #[must_use]
    pub fn masked(&self) -> usize {
        self.records.iter().filter(|r| r.severity.is_none()).count()
    }
}

fn run_loop<C: Controller>(ctrl: &mut C, cfg: &SwifiConfig, fault: Option<SwifiFault>) -> Vec<f64> {
    let mut engine = Engine::paper();
    let profiles = Profiles::paper();
    let dt = 0.0154;
    let mut outputs = Vec::with_capacity(cfg.iterations);
    let mut injected = false;
    let mut reasserts_left = 0usize;
    for k in 0..cfg.iterations {
        if let Some(f) = fault {
            if !injected && f.iteration == k {
                let states = ctrl.state();
                ctrl.set_state(f.state_index, perturb(states[f.state_index], &f));
                injected = true;
                reasserts_left = f.model.reassert_budget();
            } else if injected && reasserts_left > 0 {
                // Intermittent faults re-flip at the next N iteration
                // starts; stuck-at faults re-force forever (their budget
                // is effectively unbounded and force is idempotent).
                reasserts_left = reasserts_left.saturating_sub(1);
                let states = ctrl.state();
                ctrl.set_state(f.state_index, perturb(states[f.state_index], &f));
            }
        }
        let t = k as f64 * dt;
        let r = profiles.reference(t);
        let y = engine.speed_rpm();
        let u = ctrl.step(r, y);
        outputs.push(u);
        // The actuator saturates mechanically; non-finite commands fall to
        // the lower stop (same convention as the SCIFI driver).
        let act = if u.is_finite() {
            u.clamp(0.0, 70.0)
        } else {
            0.0
        };
        engine.advance(act, profiles.load(t), dt);
    }
    outputs
}

/// Runs a SWIFI campaign on a controller. `make` builds a fresh controller
/// for every run (the pre-runtime download of the workload).
#[must_use]
pub fn run_swifi<C: Controller, F: Fn() -> C>(make: F, cfg: &SwifiConfig) -> SwifiResult {
    let classifier = Classifier::paper();
    let mut golden_ctrl = make();
    let golden = run_loop(&mut golden_ctrl, cfg, None);
    let num_states = make().state().len();
    assert!(num_states > 0, "controller must expose state for SWIFI");

    let mut sampler = UniformSampler::with_seed(cfg.seed);
    let mut records = Vec::with_capacity(cfg.faults);
    for _ in 0..cfg.faults {
        let fault = SwifiFault {
            state_index: sampler.draw_index(num_states),
            bit: sampler.draw_index(64) as u32,
            iteration: sampler.draw_index(cfg.iterations),
            model: cfg.model,
        };
        let mut ctrl = make();
        let observed = run_loop(&mut ctrl, cfg, Some(fault));
        let max_deviation = golden
            .iter()
            .zip(observed.iter())
            .map(|(g, o)| {
                if o.is_finite() {
                    (g - o).abs()
                } else {
                    f64::INFINITY
                }
            })
            .fold(0.0, f64::max);
        let severity = if golden
            .iter()
            .zip(observed.iter())
            .all(|(g, o)| g.to_bits() == o.to_bits())
        {
            None
        } else {
            Some(classifier.classify_values(&golden, &observed))
        };
        records.push(SwifiRecord {
            fault,
            severity,
            max_deviation,
        });
    }
    SwifiResult { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bera_core::{PiController, ProtectedPiController};

    #[test]
    fn swifi_is_reproducible() {
        let cfg = SwifiConfig {
            faults: 30,
            seed: 9,
            iterations: 100,
            model: FaultModel::SingleBit,
        };
        let a = run_swifi(PiController::paper, &cfg);
        let b = run_swifi(PiController::paper, &cfg);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn plain_controller_shows_severe_failures() {
        let cfg = SwifiConfig {
            faults: 200,
            seed: 1,
            iterations: 200,
            model: FaultModel::SingleBit,
        };
        let r = run_swifi(PiController::paper, &cfg);
        assert_eq!(r.len(), 200);
        assert!(
            r.severe() > 0,
            "high exponent flips of x must cause severe failures"
        );
    }

    #[test]
    fn protected_controller_has_no_permanent_failures() {
        let cfg = SwifiConfig {
            faults: 300,
            seed: 2,
            iterations: 200,
            model: FaultModel::SingleBit,
        };
        let r = run_swifi(ProtectedPiController::paper, &cfg);
        assert_eq!(
            r.count(Severity::Permanent),
            0,
            "Algorithm II eliminates permanent failures"
        );
    }

    #[test]
    fn protection_reduces_severe_share() {
        let cfg = SwifiConfig {
            faults: 400,
            seed: 3,
            iterations: 250,
            model: FaultModel::SingleBit,
        };
        let plain = run_swifi(PiController::paper, &cfg);
        let protected = run_swifi(ProtectedPiController::paper, &cfg);
        assert!(
            protected.severe() < plain.severe(),
            "severe: protected {} vs plain {}",
            protected.severe(),
            plain.severe()
        );
    }

    #[test]
    fn counts_partition_the_records() {
        let cfg = SwifiConfig {
            faults: 100,
            seed: 4,
            iterations: 120,
            model: FaultModel::SingleBit,
        };
        let r = run_swifi(PiController::paper, &cfg);
        let total = r.masked()
            + r.count(Severity::Permanent)
            + r.count(Severity::SemiPermanent)
            + r.count(Severity::Transient)
            + r.count(Severity::Insignificant);
        assert_eq!(total, r.len());
    }

    /// A controller that just exposes its single state variable as the
    /// output, so the loop's injection schedule is directly observable.
    struct ProbeController {
        x: f64,
    }

    impl Controller for ProbeController {
        fn step(&mut self, _r: f64, _y: f64) -> f64 {
            self.x
        }
        fn reset(&mut self) {
            self.x = 0.0;
        }
        fn state(&self) -> Vec<f64> {
            vec![self.x]
        }
        fn set_state(&mut self, _index: usize, value: f64) {
            self.x = value;
        }
        fn limits(&self) -> bera_core::controller::Limits {
            bera_core::controller::Limits::new(0.0, 70.0)
        }
    }

    fn probe_outputs(model: FaultModel, bit: u32, at: usize, iterations: usize) -> Vec<f64> {
        let cfg = SwifiConfig {
            faults: 0,
            seed: 0,
            iterations,
            model,
        };
        let fault = SwifiFault {
            state_index: 0,
            bit,
            iteration: at,
            model,
        };
        run_loop(&mut ProbeController { x: 1.0 }, &cfg, Some(fault))
    }

    #[test]
    fn single_bit_swifi_flips_once_and_stays() {
        // Probe holds its state, so a transient flip of the sign bit shows
        // from the injection iteration onward and is never re-applied.
        let out = probe_outputs(FaultModel::SingleBit, 63, 3, 8);
        assert_eq!(&out[..3], &[1.0, 1.0, 1.0]);
        assert!(out[3..].iter().all(|&u| u == -1.0), "{out:?}");
    }

    #[test]
    fn intermittent_swifi_reflips_for_its_budget() {
        // Each re-assertion flips the sign bit again, so the output
        // alternates for `reassert_iterations` iterations, then holds.
        let out = probe_outputs(
            FaultModel::Intermittent {
                reassert_iterations: 3,
            },
            63,
            2,
            9,
        );
        assert_eq!(out, vec![1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn stuck_at_swifi_forces_the_bit_every_iteration() {
        // Stuck-at-1 on the sign bit pins the state negative for the rest
        // of the run, no matter that the force is re-applied idempotently.
        let out = probe_outputs(FaultModel::StuckAt { value: true }, 63, 4, 10);
        assert_eq!(&out[..4], &[1.0; 4]);
        assert!(out[4..].iter().all(|&u| u == -1.0), "{out:?}");
        // Stuck-at the bit's existing value is fully masked.
        let masked = probe_outputs(FaultModel::StuckAt { value: false }, 63, 4, 10);
        assert!(masked.iter().all(|&u| u == 1.0), "{masked:?}");
    }

    #[test]
    fn burst_width_one_swifi_equals_single_bit() {
        let cfg_single = SwifiConfig {
            faults: 40,
            seed: 12,
            iterations: 120,
            model: FaultModel::SingleBit,
        };
        let cfg_burst = SwifiConfig {
            model: FaultModel::Burst { width: 1 },
            ..cfg_single.clone()
        };
        let single = run_swifi(PiController::paper, &cfg_single);
        let burst = run_swifi(PiController::paper, &cfg_burst);
        for (a, b) in single.records.iter().zip(burst.records.iter()) {
            assert_eq!(a.severity, b.severity);
            assert_eq!(a.max_deviation.to_bits(), b.max_deviation.to_bits());
            assert_eq!(a.fault.bit, b.fault.bit);
        }
    }

    #[test]
    fn richer_models_run_and_are_reproducible() {
        for model in [
            FaultModel::Intermittent {
                reassert_iterations: 4,
            },
            FaultModel::StuckAt { value: true },
            FaultModel::Burst { width: 3 },
        ] {
            let cfg = SwifiConfig {
                faults: 25,
                seed: 8,
                iterations: 100,
                model,
            };
            let a = run_swifi(PiController::paper, &cfg);
            let b = run_swifi(PiController::paper, &cfg);
            assert_eq!(a.records, b.records, "{model}");
            assert!(a.records.iter().all(|r| r.fault.model == model));
        }
    }
}

// ---------------------------------------------------------------------
// MIMO SWIFI — the paper's future-work direction.
// ---------------------------------------------------------------------

use bera_core::StateController;
use bera_plant::turbojet::MimoPlant;

/// Configuration of a MIMO SWIFI campaign.
#[derive(Debug, Clone)]
pub struct MimoSwifiConfig {
    /// Number of faults to inject.
    pub faults: usize,
    /// RNG seed.
    pub seed: u64,
    /// Control iterations per run.
    pub iterations: usize,
    /// Reference vector for the first half of the run.
    pub r_initial: Vec<f64>,
    /// Reference vector after the mid-run step.
    pub r_final: Vec<f64>,
}

impl MimoSwifiConfig {
    /// A two-output study shaped like the paper's scenario: hold, then
    /// step both references at mid-run.
    #[must_use]
    pub fn demo(faults: usize, seed: u64) -> Self {
        MimoSwifiConfig {
            faults,
            seed,
            iterations: 650,
            r_initial: vec![0.45, 0.40],
            r_final: vec![0.65, 0.55],
        }
    }
}

fn run_mimo_loop<C: StateController, P: MimoPlant + Clone>(
    ctrl: &mut C,
    plant: &P,
    cfg: &MimoSwifiConfig,
    mut fault: Option<SwifiFault>,
) -> Vec<Vec<f64>> {
    let mut plant = plant.clone();
    plant.reset();
    let m = ctrl.num_outputs();
    let mut u = vec![0.0; m];
    let mut outputs: Vec<Vec<f64>> = vec![Vec::with_capacity(cfg.iterations); m];
    for k in 0..cfg.iterations {
        if let Some(f) = fault {
            if f.iteration == k {
                let mut states = ctrl.states();
                states[f.state_index] = flip_bit_f64(states[f.state_index], f.bit);
                ctrl.set_states(&states);
                fault = None;
            }
        }
        let r = if k < cfg.iterations / 2 {
            &cfg.r_initial
        } else {
            &cfg.r_final
        };
        let y = plant.measure();
        let e: Vec<f64> = r.iter().zip(y.iter()).map(|(r, y)| r - y).collect();
        ctrl.compute(&e, &mut u);
        for (j, &uj) in u.iter().enumerate() {
            outputs[j].push(uj);
        }
        // The actuators reject non-finite commands at their lower stop.
        let act: Vec<f64> = u
            .iter()
            .map(|&v| if v.is_finite() { v } else { 0.0 })
            .collect();
        plant.step(&act);
    }
    outputs
}

/// Runs a SWIFI campaign over a MIMO controller in closed loop against
/// `plant`. Each fault flips one bit of one controller state variable
/// before one iteration; the outcome is the worst severity over all
/// output channels.
///
/// # Panics
///
/// Panics if the controller exposes no state, or the reference dimensions
/// do not match the plant.
#[must_use]
pub fn run_swifi_mimo<C, P, F>(make: F, plant: &P, cfg: &MimoSwifiConfig) -> SwifiResult
where
    C: StateController,
    P: MimoPlant + Clone,
    F: Fn() -> C,
{
    assert_eq!(
        cfg.r_initial.len(),
        plant.num_outputs(),
        "reference dimension must match the plant"
    );
    let classifier = Classifier {
        // The actuators are normalised to [0, 1]; scale the paper's 0.1°
        // threshold (of a 70° range) proportionally.
        threshold: 0.1 / 70.0,
        lo: 0.0,
        hi: 1.0,
        limit_eps: 1e-5,
        transient_horizon: 32,
    };
    let mut golden_ctrl = make();
    let golden = run_mimo_loop(&mut golden_ctrl, plant, cfg, None);
    let num_states = make().num_states();
    assert!(num_states > 0, "controller must expose state for SWIFI");

    let mut sampler = UniformSampler::with_seed(cfg.seed);
    let mut records = Vec::with_capacity(cfg.faults);
    for _ in 0..cfg.faults {
        let fault = SwifiFault {
            state_index: sampler.draw_index(num_states),
            bit: sampler.draw_index(64) as u32,
            iteration: sampler.draw_index(cfg.iterations),
            // The MIMO study keeps the paper's transient single-bit model.
            model: FaultModel::SingleBit,
        };
        let mut ctrl = make();
        let observed = run_mimo_loop(&mut ctrl, plant, cfg, Some(fault));

        let mut worst: Option<Severity> = None;
        let mut max_deviation = 0.0f64;
        for (g, o) in golden.iter().zip(observed.iter()) {
            let identical = g
                .iter()
                .zip(o.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            if identical {
                continue;
            }
            let sev = classifier.classify_values(g, o);
            let dev = g
                .iter()
                .zip(o.iter())
                .map(|(a, b)| {
                    if b.is_finite() {
                        (a - b).abs()
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0, f64::max);
            max_deviation = max_deviation.max(dev);
            worst = Some(match worst {
                None => sev,
                Some(prev) => worst_of(prev, sev),
            });
        }
        records.push(SwifiRecord {
            fault,
            severity: worst,
            max_deviation,
        });
    }
    SwifiResult { records }
}

/// Orders severities from worst to mildest.
fn worst_of(a: Severity, b: Severity) -> Severity {
    use Severity::*;
    let rank = |s: Severity| match s {
        Permanent => 0,
        SemiPermanent => 1,
        Transient => 2,
        Insignificant => 3,
    };
    if rank(a) <= rank(b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod mimo_tests {
    use super::*;
    use bera_core::controller::Limits;
    use bera_core::{MimoController, Protected, StateSpace};
    use bera_plant::Turbojet;

    fn controller() -> MimoController {
        MimoController::new(
            StateSpace::jet_engine_demo(),
            vec![Limits::new(0.0, 1.0); 2],
        )
    }

    #[test]
    fn golden_mimo_loop_tracks_references() {
        let cfg = MimoSwifiConfig::demo(0, 1);
        let mut ctrl = controller();
        let outputs = run_mimo_loop(&mut ctrl, &Turbojet::demo(), &cfg, None);
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[0].len(), cfg.iterations);
        // The loop must not be saturated or dead at the end.
        let tail0 = *outputs[0].last().unwrap();
        assert!(tail0 > 0.0 && tail0 < 1.0, "u0 tail {tail0}");
    }

    #[test]
    fn mimo_swifi_runs_and_is_reproducible() {
        let cfg = MimoSwifiConfig {
            iterations: 200,
            ..MimoSwifiConfig::demo(25, 5)
        };
        let jet = Turbojet::demo();
        let a = run_swifi_mimo(controller, &jet, &cfg);
        let b = run_swifi_mimo(controller, &jet, &cfg);
        assert_eq!(a.records, b.records);
        assert_eq!(a.len(), 25);
    }

    fn rate_protected() -> Protected<MimoController> {
        use bera_core::assertion::{All, Assertion, RangeAssertion, RateAssertion};
        // Tight physical envelope (the integrator holds the actuator value,
        // which is bounded) plus a rate assertion: the integrator cannot
        // physically move faster than B·e_max per sample.
        let state: Vec<Box<dyn Assertion<f64> + Send + Sync>> = (0..2)
            .map(|_| {
                Box::new(All::new(
                    RangeAssertion::new(Limits::new(-0.5, 1.5)),
                    RateAssertion::new(0.05),
                )) as Box<dyn Assertion<f64> + Send + Sync>
            })
            .collect();
        let output: Vec<Box<dyn Assertion<f64> + Send + Sync>> = (0..2)
            .map(|_| {
                Box::new(RangeAssertion::new(Limits::new(0.0, 1.0)))
                    as Box<dyn Assertion<f64> + Send + Sync>
            })
            .collect();
        Protected::with_assertions(controller(), state, output)
    }

    #[test]
    fn range_protection_reduces_mimo_severity() {
        let cfg = MimoSwifiConfig {
            iterations: 300,
            ..MimoSwifiConfig::demo(150, 6)
        };
        let jet = Turbojet::demo();
        let plain = run_swifi_mimo(controller, &jet, &cfg);
        let protected = run_swifi_mimo(
            || Protected::uniform(controller(), Limits::new(-0.5, 1.5)),
            &jet,
            &cfg,
        );
        assert!(
            protected.severe() < plain.severe(),
            "protected {} vs plain {}",
            protected.severe(),
            plain.severe()
        );
    }

    #[test]
    fn rate_assertions_eliminate_mimo_permanents() {
        // A pure range assertion cannot stop *in-range* corruptions of a
        // slow MIMO integrator from pinning an actuator for longer than
        // the observation window — the rate assertion can.
        let cfg = MimoSwifiConfig {
            iterations: 300,
            ..MimoSwifiConfig::demo(150, 6)
        };
        let jet = Turbojet::demo();
        let protected = run_swifi_mimo(rate_protected, &jet, &cfg);
        assert_eq!(
            protected.count(Severity::Permanent),
            0,
            "range + rate assertions must eliminate permanent MIMO failures"
        );
    }
}
