//! Campaign observability: the [`CampaignObserver`] hook trait threaded
//! through campaign and experiment execution, plus the lock-light
//! [`Telemetry`] aggregator built on top of it.
//!
//! The campaign engine emits one event per phase of every experiment's
//! life cycle (sampled, started, injected, detected / spliced, classified,
//! completed). Observers run *inside* the worker threads, so an
//! implementation must be `Sync` and should be cheap: the streaming store
//! ([`crate::store::JsonlStore`]) serialises one line under a mutex, and
//! [`Telemetry`] touches a handful of atomics.

use crate::campaign::CampaignResult;
use crate::classify::{HarnessCause, Outcome};
use crate::experiment::{ExperimentRecord, FaultSpec};
use crate::planner::PlanStats;
use bera_stats::rate::Ewma;
use bera_tcpu::edm::ErrorMechanism;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Hooks into the life cycle of a SCIFI campaign.
///
/// All methods have empty default bodies, so an observer only implements
/// the events it cares about. Events fire from the worker thread running
/// the experiment; `index` is the fault-list index, which is stable across
/// reruns and resumes of the same campaign configuration.
///
/// Records restored from a result store during a resume do **not** replay
/// their events: observers only see work actually executed in this process.
pub trait CampaignObserver: Sync {
    /// The fault list has been sampled (fires once, before any experiment).
    fn fault_list_sampled(&self, faults: &[FaultSpec]) {
        let _ = faults;
    }

    /// The campaign plan has been computed; `stats` carries the planner's
    /// per-rule hit counters and classification wall-clock (fires once,
    /// after [`fault_list_sampled`](CampaignObserver::fault_list_sampled)).
    fn plan_computed(&self, stats: &PlanStats) {
        let _ = stats;
    }

    /// The lockstep batch pass finished admission: `rejected_untraceable`
    /// candidates had no admissible delta unit and stay scalar,
    /// `vis_admitted` replicas were admitted only thanks to the
    /// EDM-visibility trace (at least one flipped bit outside the def/use
    /// trace). Fires once per campaign, after the batch pass.
    fn batch_admission(&self, rejected_untraceable: usize, vis_admitted: usize) {
        let _ = (rejected_untraceable, vis_admitted);
    }

    /// An experiment is starting. `fast_forward_from` is the golden
    /// checkpoint iteration it resumes from (`None` when it replays from
    /// reset because checkpointing is disabled).
    fn experiment_started(&self, index: usize, fault: FaultSpec, fast_forward_from: Option<usize>) {
        let _ = (index, fault, fast_forward_from);
    }

    /// The fault has been physically injected into the scan chain.
    fn fault_injected(&self, index: usize, fault: FaultSpec) {
        let _ = (index, fault);
    }

    /// An experiment's machine came out of the per-worker arena
    /// (DESIGN.md §8j): `copied_words` data words were rewritten by the
    /// dirty-delta restore, or the arena missed and fell back to a full
    /// checkpoint clone (`full_clone`, with `copied_words == 0`).
    fn arena_restored(&self, copied_words: usize, full_clone: bool) {
        let _ = (copied_words, full_clone);
    }

    /// An experiment's drive finished executing: it ran `instructions`
    /// dynamic instructions in this process, of which `block_instructions`
    /// went through the predecoded fast-replay block engine rather than
    /// the scalar fetch–decode–execute step. Fires before
    /// [`experiment_classified`](CampaignObserver::experiment_classified),
    /// only for experiments that actually simulated here.
    fn experiment_executed(&self, index: usize, instructions: u64, block_instructions: u64) {
        let _ = (index, instructions, block_instructions);
    }

    /// A hardware error detection mechanism fired `latency` dynamic
    /// instructions after injection.
    fn error_detected(&self, index: usize, mechanism: ErrorMechanism, latency: u64) {
        let _ = (index, mechanism, latency);
    }

    /// Convergence pruning proved the run rejoined the golden trajectory
    /// and spliced the golden tail at `iteration`.
    fn convergence_spliced(&self, index: usize, iteration: usize) {
        let _ = (index, iteration);
    }

    /// A lockstep batch started resolving `members` replicas (of `width`
    /// admission capacity) sharing the golden checkpoint window `window`.
    fn batch_group_started(&self, window: usize, members: usize, width: usize) {
        let _ = (window, members, width);
    }

    /// A batched replica was fully resolved *inside* lockstep — latent or
    /// converged — after riding the shared golden stream for
    /// `lockstep_instructions` dynamic instructions. No scalar execution
    /// will happen for this fault.
    fn replica_resolved(&self, index: usize, lockstep_instructions: u64) {
        let _ = (index, lockstep_instructions);
    }

    /// A batched replica diverged from the golden stream at instruction
    /// `split_at` (after a free lockstep prefix of
    /// `lockstep_instructions`) and splits off to the scalar path.
    fn replica_split_off(&self, index: usize, split_at: u64, lockstep_instructions: u64) {
        let _ = (index, split_at, lockstep_instructions);
    }

    /// The experiment has been classified; `record` is final.
    fn experiment_classified(&self, index: usize, record: &ExperimentRecord) {
        let _ = (index, record);
    }

    /// The supervisor caught a harness failure (`cause`) on the first
    /// attempt and is retrying the experiment once with checkpointing
    /// disabled. Fires at most once per fault; a second failure produces a
    /// quarantined `experiment_classified` record instead.
    fn experiment_retried(&self, index: usize, cause: HarnessCause) {
        let _ = (index, cause);
    }

    /// All experiments are done and the result database is assembled.
    fn campaign_completed(&self, result: &CampaignResult) {
        let _ = result;
    }
}

/// An observer that ignores every event.
pub struct NullObserver;

impl CampaignObserver for NullObserver {}

/// Broadcasts every event to a list of observers, in registration order.
#[derive(Default)]
pub struct ObserverSet<'a> {
    observers: Vec<&'a dyn CampaignObserver>,
}

impl<'a> ObserverSet<'a> {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        ObserverSet::default()
    }

    /// Registers an observer; events reach observers in push order.
    pub fn push(&mut self, observer: &'a dyn CampaignObserver) {
        self.observers.push(observer);
    }
}

impl CampaignObserver for ObserverSet<'_> {
    fn fault_list_sampled(&self, faults: &[FaultSpec]) {
        for o in &self.observers {
            o.fault_list_sampled(faults);
        }
    }

    fn plan_computed(&self, stats: &PlanStats) {
        for o in &self.observers {
            o.plan_computed(stats);
        }
    }

    fn batch_admission(&self, rejected_untraceable: usize, vis_admitted: usize) {
        for o in &self.observers {
            o.batch_admission(rejected_untraceable, vis_admitted);
        }
    }

    fn experiment_started(&self, index: usize, fault: FaultSpec, fast_forward_from: Option<usize>) {
        for o in &self.observers {
            o.experiment_started(index, fault, fast_forward_from);
        }
    }

    fn fault_injected(&self, index: usize, fault: FaultSpec) {
        for o in &self.observers {
            o.fault_injected(index, fault);
        }
    }

    fn arena_restored(&self, copied_words: usize, full_clone: bool) {
        for o in &self.observers {
            o.arena_restored(copied_words, full_clone);
        }
    }

    fn experiment_executed(&self, index: usize, instructions: u64, block_instructions: u64) {
        for o in &self.observers {
            o.experiment_executed(index, instructions, block_instructions);
        }
    }

    fn error_detected(&self, index: usize, mechanism: ErrorMechanism, latency: u64) {
        for o in &self.observers {
            o.error_detected(index, mechanism, latency);
        }
    }

    fn convergence_spliced(&self, index: usize, iteration: usize) {
        for o in &self.observers {
            o.convergence_spliced(index, iteration);
        }
    }

    fn batch_group_started(&self, window: usize, members: usize, width: usize) {
        for o in &self.observers {
            o.batch_group_started(window, members, width);
        }
    }

    fn replica_resolved(&self, index: usize, lockstep_instructions: u64) {
        for o in &self.observers {
            o.replica_resolved(index, lockstep_instructions);
        }
    }

    fn replica_split_off(&self, index: usize, split_at: u64, lockstep_instructions: u64) {
        for o in &self.observers {
            o.replica_split_off(index, split_at, lockstep_instructions);
        }
    }

    fn experiment_classified(&self, index: usize, record: &ExperimentRecord) {
        for o in &self.observers {
            o.experiment_classified(index, record);
        }
    }

    fn experiment_retried(&self, index: usize, cause: HarnessCause) {
        for o in &self.observers {
            o.experiment_retried(index, cause);
        }
    }

    fn campaign_completed(&self, result: &CampaignResult) {
        for o in &self.observers {
            o.campaign_completed(result);
        }
    }
}

/// Exponentially-smoothed completion rate shared by the worker threads.
struct RateState {
    last_completion: Instant,
    per_second: Ewma,
}

/// Live campaign counters: classification tallies, throughput, ETA,
/// checkpoint fast-forward hit-rate and convergence-prune rate.
///
/// All counters are atomics, so observing a heavily parallel campaign
/// costs a few uncontended fetch-adds per experiment; only the smoothed
/// throughput estimate takes a (short) mutex.
pub struct Telemetry {
    total: usize,
    started: Instant,
    preloaded: AtomicUsize,
    completed: AtomicUsize,
    detected: AtomicUsize,
    hangs: AtomicUsize,
    severe: AtomicUsize,
    minor: AtomicUsize,
    latent: AtomicUsize,
    overwritten: AtomicUsize,
    harness_failures: AtomicUsize,
    retried: AtomicUsize,
    pruned: AtomicUsize,
    fast_forwarded: AtomicUsize,
    analytic: AtomicUsize,
    replicated: AtomicUsize,
    batch_groups: AtomicUsize,
    batch_members: AtomicUsize,
    batch_capacity: AtomicUsize,
    split_offs: AtomicUsize,
    lockstep_instructions: AtomicUsize,
    plan_micros: AtomicUsize,
    vis_latent: AtomicUsize,
    vis_overwritten: AtomicUsize,
    sig_overwritten: AtomicUsize,
    value_resolved: AtomicUsize,
    vis_replicated: AtomicUsize,
    batch_untraceable: AtomicUsize,
    batch_vis_admitted: AtomicUsize,
    sim_instructions: AtomicUsize,
    block_instructions: AtomicUsize,
    arena_restores: AtomicUsize,
    arena_dirty_words: AtomicUsize,
    arena_full_clones: AtomicUsize,
    rate: Mutex<RateState>,
}

impl Telemetry {
    /// New telemetry for a campaign of `total` faults.
    #[must_use]
    pub fn new(total: usize) -> Self {
        Telemetry {
            total,
            started: Instant::now(),
            preloaded: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            detected: AtomicUsize::new(0),
            hangs: AtomicUsize::new(0),
            severe: AtomicUsize::new(0),
            minor: AtomicUsize::new(0),
            latent: AtomicUsize::new(0),
            overwritten: AtomicUsize::new(0),
            harness_failures: AtomicUsize::new(0),
            retried: AtomicUsize::new(0),
            pruned: AtomicUsize::new(0),
            fast_forwarded: AtomicUsize::new(0),
            analytic: AtomicUsize::new(0),
            replicated: AtomicUsize::new(0),
            batch_groups: AtomicUsize::new(0),
            batch_members: AtomicUsize::new(0),
            batch_capacity: AtomicUsize::new(0),
            split_offs: AtomicUsize::new(0),
            lockstep_instructions: AtomicUsize::new(0),
            plan_micros: AtomicUsize::new(0),
            vis_latent: AtomicUsize::new(0),
            vis_overwritten: AtomicUsize::new(0),
            sig_overwritten: AtomicUsize::new(0),
            value_resolved: AtomicUsize::new(0),
            vis_replicated: AtomicUsize::new(0),
            batch_untraceable: AtomicUsize::new(0),
            batch_vis_admitted: AtomicUsize::new(0),
            sim_instructions: AtomicUsize::new(0),
            block_instructions: AtomicUsize::new(0),
            arena_restores: AtomicUsize::new(0),
            arena_dirty_words: AtomicUsize::new(0),
            arena_full_clones: AtomicUsize::new(0),
            rate: Mutex::new(RateState {
                last_completion: Instant::now(),
                // Smooth over roughly the last ~40 completions.
                per_second: Ewma::new(0.05),
            }),
        }
    }

    /// Marks `n` experiments as already complete (restored from a result
    /// store during a resume). They count towards progress but not towards
    /// the throughput estimate.
    pub fn note_preloaded(&self, n: usize) {
        self.preloaded.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters with derived rates.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let load = |c: &AtomicUsize| c.load(Ordering::Relaxed);
        let completed = load(&self.completed);
        let preloaded = load(&self.preloaded);
        let elapsed = self.started.elapsed().as_secs_f64();
        let throughput = completed as f64 / elapsed.max(1e-9);
        let smoothed = self
            .rate
            .lock()
            .map(|r| r.per_second.value())
            .unwrap_or(None);
        let done = completed + preloaded;
        let remaining = self.total.saturating_sub(done);
        let eta_seconds = match smoothed.filter(|&r| r > 0.0).or(if throughput > 0.0 {
            Some(throughput)
        } else {
            None
        }) {
            Some(rate) if remaining > 0 => Some(remaining as f64 / rate),
            Some(_) => Some(0.0),
            None => None,
        };
        TelemetrySnapshot {
            total: self.total,
            preloaded,
            completed,
            elapsed_seconds: elapsed,
            throughput,
            smoothed_throughput: smoothed,
            eta_seconds,
            detected: load(&self.detected),
            hangs: load(&self.hangs),
            severe: load(&self.severe),
            minor: load(&self.minor),
            latent: load(&self.latent),
            overwritten: load(&self.overwritten),
            harness_failures: load(&self.harness_failures),
            retried: load(&self.retried),
            pruned: load(&self.pruned),
            fast_forwarded: load(&self.fast_forwarded),
            analytic: load(&self.analytic),
            replicated: load(&self.replicated),
            batch_groups: load(&self.batch_groups),
            batch_members: load(&self.batch_members),
            batch_capacity: load(&self.batch_capacity),
            split_offs: load(&self.split_offs),
            lockstep_instructions: load(&self.lockstep_instructions) as u64,
            plan_micros: load(&self.plan_micros) as u64,
            vis_latent: load(&self.vis_latent),
            vis_overwritten: load(&self.vis_overwritten),
            sig_overwritten: load(&self.sig_overwritten),
            value_resolved: load(&self.value_resolved),
            vis_replicated: load(&self.vis_replicated),
            batch_untraceable: load(&self.batch_untraceable),
            batch_vis_admitted: load(&self.batch_vis_admitted),
            sim_instructions: load(&self.sim_instructions) as u64,
            block_instructions: load(&self.block_instructions) as u64,
            arena_restores: load(&self.arena_restores),
            arena_dirty_words: load(&self.arena_dirty_words) as u64,
            arena_full_clones: load(&self.arena_full_clones),
        }
    }
}

impl CampaignObserver for Telemetry {
    fn experiment_started(
        &self,
        _index: usize,
        _fault: FaultSpec,
        fast_forward_from: Option<usize>,
    ) {
        // A fast-forward from the iteration-0 checkpoint saves nothing, so
        // the hit-rate only counts resumes that skipped real work.
        if fast_forward_from.is_some_and(|k| k > 0) {
            self.fast_forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn convergence_spliced(&self, _index: usize, _iteration: usize) {
        self.pruned.fetch_add(1, Ordering::Relaxed);
    }

    fn plan_computed(&self, stats: &PlanStats) {
        let add = |c: &AtomicUsize, n: usize| {
            c.fetch_add(n, Ordering::Relaxed);
        };
        add(
            &self.plan_micros,
            usize::try_from(stats.plan_micros).unwrap_or(usize::MAX),
        );
        add(&self.vis_latent, stats.vis_latent);
        add(&self.vis_overwritten, stats.vis_overwritten);
        add(&self.sig_overwritten, stats.sig_overwritten);
        add(&self.value_resolved, stats.value_resolved);
        add(&self.vis_replicated, stats.vis_replicated);
    }

    fn batch_admission(&self, rejected_untraceable: usize, vis_admitted: usize) {
        self.batch_untraceable
            .fetch_add(rejected_untraceable, Ordering::Relaxed);
        self.batch_vis_admitted
            .fetch_add(vis_admitted, Ordering::Relaxed);
    }

    fn arena_restored(&self, copied_words: usize, full_clone: bool) {
        if full_clone {
            self.arena_full_clones.fetch_add(1, Ordering::Relaxed);
        } else {
            self.arena_restores.fetch_add(1, Ordering::Relaxed);
            self.arena_dirty_words
                .fetch_add(copied_words, Ordering::Relaxed);
        }
    }

    fn experiment_executed(&self, _index: usize, instructions: u64, block_instructions: u64) {
        self.sim_instructions
            .fetch_add(instructions as usize, Ordering::Relaxed);
        self.block_instructions
            .fetch_add(block_instructions as usize, Ordering::Relaxed);
    }

    fn batch_group_started(&self, _window: usize, members: usize, width: usize) {
        self.batch_groups.fetch_add(1, Ordering::Relaxed);
        self.batch_members.fetch_add(members, Ordering::Relaxed);
        self.batch_capacity.fetch_add(width, Ordering::Relaxed);
    }

    fn replica_resolved(&self, _index: usize, lockstep_instructions: u64) {
        self.lockstep_instructions
            .fetch_add(lockstep_instructions as usize, Ordering::Relaxed);
    }

    fn replica_split_off(&self, _index: usize, _split_at: u64, lockstep_instructions: u64) {
        self.split_offs.fetch_add(1, Ordering::Relaxed);
        self.lockstep_instructions
            .fetch_add(lockstep_instructions as usize, Ordering::Relaxed);
    }

    fn experiment_classified(&self, _index: usize, record: &ExperimentRecord) {
        match record.provenance {
            crate::experiment::Provenance::Simulated => {}
            crate::experiment::Provenance::Analytic => {
                self.analytic.fetch_add(1, Ordering::Relaxed);
            }
            crate::experiment::Provenance::Replicated => {
                self.replicated.fetch_add(1, Ordering::Relaxed);
            }
        }
        match record.outcome {
            Outcome::Detected(_) => &self.detected,
            Outcome::Hang => &self.hangs,
            Outcome::ValueFailure(s) if s.is_severe() => &self.severe,
            Outcome::ValueFailure(_) => &self.minor,
            Outcome::Latent => &self.latent,
            Outcome::Overwritten => &self.overwritten,
            Outcome::HarnessFailure(_) => &self.harness_failures,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut rate) = self.rate.lock() {
            let now = Instant::now();
            let dt = now.duration_since(rate.last_completion).as_secs_f64();
            rate.last_completion = now;
            if dt > 0.0 {
                rate.per_second.update(1.0 / dt);
            }
        }
    }

    fn experiment_retried(&self, _index: usize, _cause: HarnessCause) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time view of a campaign's [`Telemetry`]. Serializable so a
/// campaign can persist its final snapshot as a machine-readable side
/// artifact for the offline `report` bin.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TelemetrySnapshot {
    /// Campaign size (faults).
    pub total: usize,
    /// Records restored from a store (resume), not executed here.
    pub preloaded: usize,
    /// Experiments executed and classified by this process.
    pub completed: usize,
    /// Wall-clock seconds since the telemetry was created.
    pub elapsed_seconds: f64,
    /// Overall executed-experiment throughput (experiments per second).
    pub throughput: f64,
    /// Exponentially smoothed recent throughput, if any completions yet.
    pub smoothed_throughput: Option<f64>,
    /// Estimated seconds to completion at the recent rate.
    pub eta_seconds: Option<f64>,
    /// Detected errors (an EDM fired).
    pub detected: usize,
    /// Hangs ("other errors").
    pub hangs: usize,
    /// Severe undetected wrong results.
    pub severe: usize,
    /// Minor undetected wrong results.
    pub minor: usize,
    /// Latent errors.
    pub latent: usize,
    /// Overwritten errors.
    pub overwritten: usize,
    /// Experiments quarantined after a second harness failure.
    pub harness_failures: usize,
    /// Experiments retried once after a first harness failure.
    pub retried: usize,
    /// Experiments ended early by convergence pruning.
    pub pruned: usize,
    /// Experiments that fast-forwarded past at least one checkpoint.
    pub fast_forwarded: usize,
    /// Records classified analytically from the golden access trace (no
    /// simulation executed).
    pub analytic: usize,
    /// Records replicated from a def/use equivalence-class representative.
    pub replicated: usize,
    /// Lockstep batches resolved by the batch engine.
    pub batch_groups: usize,
    /// Replicas admitted into lockstep batches.
    pub batch_members: usize,
    /// Total admission capacity of the started batches (for occupancy).
    pub batch_capacity: usize,
    /// Batched replicas that diverged and split off to the scalar path.
    pub split_offs: usize,
    /// Dynamic instructions batched replicas rode the shared golden stream
    /// for free (from injection to their fate instant, summed).
    pub lockstep_instructions: u64,
    /// Wall-clock microseconds the planner spent classifying the fault
    /// list (def/use + visibility + value rules).
    pub plan_micros: u64,
    /// Analytic `Latent` verdicts from an EDM-visibility window.
    pub vis_latent: usize,
    /// Analytic `Overwritten` verdicts from an EDM-visibility window.
    pub vis_overwritten: usize,
    /// Signature faults proven overwritten by the write-first rule.
    pub sig_overwritten: usize,
    /// Operand-latch faults resolved by the value-level shift rule.
    pub value_resolved: usize,
    /// Live faults merged into a class via a visibility window.
    pub vis_replicated: usize,
    /// Batch candidates rejected at admission: no delta unit covers them
    /// (the untraceable-must-simulate residue).
    pub batch_untraceable: usize,
    /// Replicas admitted to lockstep only thanks to the visibility trace.
    pub batch_vis_admitted: usize,
    /// Dynamic instructions executed by scalar experiment drives in this
    /// process (prefix fast-forward and lockstep riding excluded — this is
    /// the simulated residue the fast-replay engine attacks).
    pub sim_instructions: u64,
    /// Of [`sim_instructions`](Self::sim_instructions), how many were
    /// executed by the predecoded block engine instead of the scalar
    /// fetch–decode–execute step.
    pub block_instructions: u64,
    /// Experiment machines obtained by dirty-delta restore from the
    /// per-worker arena (the checkpoint-clone fast path).
    pub arena_restores: usize,
    /// Data words copied by those dirty-delta restores, summed.
    pub arena_dirty_words: u64,
    /// Experiment machines obtained by a full checkpoint clone (arena
    /// empty, golden changed, or a poisoned slot after a panic).
    pub arena_full_clones: usize,
}

impl TelemetrySnapshot {
    /// `completed + preloaded`: faults with a final record.
    #[must_use]
    pub fn done(&self) -> usize {
        self.completed + self.preloaded
    }

    /// Fraction of simulated experiments that fast-forwarded from a
    /// golden checkpoint beyond iteration 0 (analytic and replicated
    /// records never touch the simulator, so they are excluded).
    #[must_use]
    pub fn checkpoint_hit_rate(&self) -> f64 {
        self.fast_forwarded as f64 / (self.simulated().max(1)) as f64
    }

    /// Fraction of simulated experiments pruned by convergence.
    #[must_use]
    pub fn prune_rate(&self) -> f64 {
        self.pruned as f64 / (self.simulated().max(1)) as f64
    }

    /// Records classified by actually running the simulator in this
    /// process (`completed` minus the analytic and replicated records).
    #[must_use]
    pub fn simulated(&self) -> usize {
        self.completed
            .saturating_sub(self.analytic)
            .saturating_sub(self.replicated)
    }

    /// Fraction of this process's records that skipped simulation
    /// entirely (analytic plus replicated) — the def/use pruning rate.
    #[must_use]
    pub fn defuse_prune_rate(&self) -> f64 {
        (self.analytic + self.replicated) as f64 / (self.completed.max(1)) as f64
    }

    /// Fraction of batched replicas that diverged and split off to the
    /// scalar path (the rest were resolved entirely inside lockstep).
    #[must_use]
    pub fn split_off_rate(&self) -> f64 {
        self.split_offs as f64 / (self.batch_members.max(1)) as f64
    }

    /// Mean free lockstep prefix per batched replica, in dynamic
    /// instructions.
    #[must_use]
    pub fn mean_lockstep_prefix(&self) -> f64 {
        self.lockstep_instructions as f64 / (self.batch_members.max(1)) as f64
    }

    /// Mean fill level of the started batches: admitted replicas over
    /// admission capacity.
    #[must_use]
    pub fn batch_occupancy(&self) -> f64 {
        self.batch_members as f64 / (self.batch_capacity.max(1)) as f64
    }

    /// Total analytic verdicts attributable to the visibility/value layer
    /// (everything the def/use planner alone could not classify).
    #[must_use]
    pub fn vis_analytic(&self) -> usize {
        self.vis_latent + self.vis_overwritten + self.sig_overwritten + self.value_resolved
    }

    /// Fraction of simulated-residue instructions executed by the
    /// predecoded block engine (the block-cache hit rate).
    #[must_use]
    pub fn block_hit_rate(&self) -> f64 {
        self.block_instructions as f64 / (self.sim_instructions.max(1)) as f64
    }

    /// Mean data words copied per dirty-delta arena restore.
    #[must_use]
    pub fn mean_dirty_words(&self) -> f64 {
        self.arena_dirty_words as f64 / (self.arena_restores.max(1)) as f64
    }

    /// Folds another worker's snapshot into this one — the farm-level
    /// aggregation: every count is summed, wall-clock is the maximum (the
    /// workers ran concurrently), and the overall throughput is re-derived
    /// from the summed completions. The rate estimators that only make
    /// sense for a single live process (smoothed throughput, ETA) are
    /// cleared rather than invented.
    ///
    /// Each shard's *final* sidecar is written by the worker that finished
    /// it, so summing one sidecar per shard counts every fault exactly
    /// once: records a crashed worker persisted before dying appear in the
    /// finishing worker's `preloaded` tally.
    ///
    /// Planning-rule counters (`vis_latent`, `vis_overwritten`,
    /// `sig_overwritten`, `value_resolved`, `vis_replicated`) are **not**
    /// summed: every worker plans the same full fault list
    /// deterministically, so each shard's counters already equal the exact
    /// global counts and the merge takes the maximum instead (shards that
    /// resumed fully-preloaded report zeros). `plan_micros` stays a sum —
    /// it measures real aggregate planning CPU, which every worker spends.
    pub fn accumulate(&mut self, other: &TelemetrySnapshot) {
        self.total += other.total;
        self.preloaded += other.preloaded;
        self.completed += other.completed;
        self.elapsed_seconds = self.elapsed_seconds.max(other.elapsed_seconds);
        self.throughput = self.completed as f64 / self.elapsed_seconds.max(1e-9);
        self.smoothed_throughput = None;
        self.eta_seconds = None;
        self.detected += other.detected;
        self.hangs += other.hangs;
        self.severe += other.severe;
        self.minor += other.minor;
        self.latent += other.latent;
        self.overwritten += other.overwritten;
        self.harness_failures += other.harness_failures;
        self.retried += other.retried;
        self.pruned += other.pruned;
        self.fast_forwarded += other.fast_forwarded;
        self.analytic += other.analytic;
        self.replicated += other.replicated;
        self.batch_groups += other.batch_groups;
        self.batch_members += other.batch_members;
        self.batch_capacity += other.batch_capacity;
        self.split_offs += other.split_offs;
        self.lockstep_instructions += other.lockstep_instructions;
        self.plan_micros += other.plan_micros;
        self.vis_latent = self.vis_latent.max(other.vis_latent);
        self.vis_overwritten = self.vis_overwritten.max(other.vis_overwritten);
        self.sig_overwritten = self.sig_overwritten.max(other.sig_overwritten);
        self.value_resolved = self.value_resolved.max(other.value_resolved);
        self.vis_replicated = self.vis_replicated.max(other.vis_replicated);
        self.batch_untraceable += other.batch_untraceable;
        self.batch_vis_admitted += other.batch_vis_admitted;
        self.sim_instructions += other.sim_instructions;
        self.block_instructions += other.block_instructions;
        self.arena_restores += other.arena_restores;
        self.arena_dirty_words += other.arena_dirty_words;
        self.arena_full_clones += other.arena_full_clones;
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = 100.0 * self.done() as f64 / self.total.max(1) as f64;
        write!(f, "{}/{} ({pct:.1}%)", self.done(), self.total)?;
        let rate = self.smoothed_throughput.unwrap_or(self.throughput);
        write!(f, " | {rate:.1} exp/s")?;
        match self.eta_seconds {
            Some(eta) if self.done() < self.total => write!(f, ", ETA {eta:.0} s")?,
            _ => {}
        }
        write!(
            f,
            " | det {} hang {} sev {} min {} lat {} ovw {}",
            self.detected, self.hangs, self.severe, self.minor, self.latent, self.overwritten
        )?;
        if self.harness_failures > 0 || self.retried > 0 {
            write!(f, " quar {} retry {}", self.harness_failures, self.retried)?;
        }
        write!(
            f,
            " | ff {:.0}% prune {:.0}%",
            100.0 * self.checkpoint_hit_rate(),
            100.0 * self.prune_rate()
        )?;
        if self.analytic > 0 || self.replicated > 0 {
            write!(
                f,
                " | sim {} an {} rep {}",
                self.simulated(),
                self.analytic,
                self.replicated
            )?;
        }
        if self.batch_groups > 0 {
            write!(
                f,
                " | batch {}x{:.0}% split {:.0}% pfx {:.0}",
                self.batch_groups,
                100.0 * self.batch_occupancy(),
                100.0 * self.split_off_rate(),
                self.mean_lockstep_prefix()
            )?;
        }
        if self.vis_analytic() > 0 || self.vis_replicated > 0 || self.batch_vis_admitted > 0 {
            write!(
                f,
                " | vis lat {} ovw {} sig {} val {} rep {} adm {} opq {}",
                self.vis_latent,
                self.vis_overwritten,
                self.sig_overwritten,
                self.value_resolved,
                self.vis_replicated,
                self.batch_vis_admitted,
                self.batch_untraceable
            )?;
        }
        if self.sim_instructions > 0 {
            write!(
                f,
                " | blk {:.0}% dirty {:.0}w/{} full {}",
                100.0 * self.block_hit_rate(),
                self.mean_dirty_words(),
                self.arena_restores,
                self.arena_full_clones
            )?;
        }
        if self.plan_micros > 0 {
            write!(f, " | plan {} µs", self.plan_micros)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_scifi_campaign_observed, CampaignConfig};
    use crate::workload::Workload;

    #[test]
    fn telemetry_counts_partition_the_campaign() {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(40, 11);
        let telemetry = Telemetry::new(40);
        let result = run_scifi_campaign_observed(&w, &cfg, &telemetry);
        let snap = telemetry.snapshot();
        assert_eq!(snap.completed, 40);
        assert_eq!(snap.done(), 40);
        assert_eq!(
            snap.detected
                + snap.hangs
                + snap.severe
                + snap.minor
                + snap.latent
                + snap.overwritten
                + snap.harness_failures,
            40,
            "every record lands in exactly one telemetry bucket"
        );
        assert_eq!(snap.harness_failures, 0, "healthy campaign: no quarantine");
        assert_eq!(snap.retried, 0, "healthy campaign: no retries");
        let pruned = result
            .records
            .iter()
            .filter(|r| r.pruned_at.is_some())
            .count();
        assert_eq!(snap.pruned, pruned);
        assert!(snap.throughput > 0.0);
        assert!(snap.eta_seconds.is_some());
    }

    #[test]
    fn observer_set_broadcasts_in_order() {
        struct Counter(AtomicUsize);
        impl CampaignObserver for Counter {
            fn experiment_classified(&self, _i: usize, _r: &ExperimentRecord) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let a = Counter(AtomicUsize::new(0));
        let b = Counter(AtomicUsize::new(0));
        let mut set = ObserverSet::new();
        set.push(&a);
        set.push(&b);
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(10, 3);
        let _ = run_scifi_campaign_observed(&w, &cfg, &set);
        assert_eq!(a.0.load(Ordering::Relaxed), 10);
        assert_eq!(b.0.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn preloaded_counts_toward_done_but_not_throughput() {
        let t = Telemetry::new(100);
        t.note_preloaded(60);
        let snap = t.snapshot();
        assert_eq!(snap.done(), 60);
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.preloaded, 60);
        assert!(snap.eta_seconds.is_none(), "no executed completions yet");
        // Display must not panic on a fresh snapshot.
        let _ = snap.to_string();
    }

    #[test]
    fn events_fire_for_every_life_cycle_stage() {
        #[derive(Default)]
        struct Probe {
            sampled: AtomicUsize,
            started: AtomicUsize,
            injected: AtomicUsize,
            classified: AtomicUsize,
            completed: AtomicUsize,
        }
        impl CampaignObserver for Probe {
            fn fault_list_sampled(&self, faults: &[FaultSpec]) {
                self.sampled.fetch_add(faults.len(), Ordering::Relaxed);
            }
            fn experiment_started(&self, _: usize, _: FaultSpec, _: Option<usize>) {
                self.started.fetch_add(1, Ordering::Relaxed);
            }
            fn fault_injected(&self, _: usize, _: FaultSpec) {
                self.injected.fetch_add(1, Ordering::Relaxed);
            }
            fn experiment_classified(&self, _: usize, _: &ExperimentRecord) {
                self.classified.fetch_add(1, Ordering::Relaxed);
            }
            fn campaign_completed(&self, result: &CampaignResult) {
                self.completed
                    .fetch_add(result.records.len(), Ordering::Relaxed);
            }
        }
        let probe = Probe::default();
        let w = Workload::algorithm_one();
        // Def/use pruning and the lockstep batch engine skip
        // started/injected for analytically classified faults; disable
        // both so this test keeps documenting the full per-experiment
        // life cycle.
        let mut cfg = CampaignConfig::quick(15, 7);
        cfg.prune = false;
        cfg.batch_width = 0;
        let _ = run_scifi_campaign_observed(&w, &cfg, &probe);
        assert_eq!(probe.sampled.load(Ordering::Relaxed), 15);
        assert_eq!(probe.started.load(Ordering::Relaxed), 15);
        assert_eq!(
            probe.injected.load(Ordering::Relaxed),
            15,
            "the fault-free prefix never traps, so every fault is injected"
        );
        assert_eq!(probe.classified.load(Ordering::Relaxed), 15);
        assert_eq!(probe.completed.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn pruned_campaign_classifies_everything_but_simulates_a_subset() {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(40, 11);
        let telemetry = Telemetry::new(40);
        let result = run_scifi_campaign_observed(&w, &cfg, &telemetry);
        let snap = telemetry.snapshot();
        assert_eq!(snap.completed, 40, "every fault gets a classified record");
        assert_eq!(snap.simulated() + snap.analytic + snap.replicated, 40);
        assert!(
            snap.analytic > 0,
            "a uniform scan-chain sample always hits overwritten/unused state"
        );
        for r in &result.records {
            use crate::experiment::Provenance;
            match r.provenance {
                Provenance::Analytic => assert!(
                    matches!(r.outcome, Outcome::Overwritten | Outcome::Latent),
                    "analytic classification only ever emits overwritten/latent"
                ),
                Provenance::Simulated | Provenance::Replicated => {}
            }
        }
        let analytic = result
            .records
            .iter()
            .filter(|r| r.provenance == crate::experiment::Provenance::Analytic)
            .count();
        let replicated = result
            .records
            .iter()
            .filter(|r| r.provenance == crate::experiment::Provenance::Replicated)
            .count();
        assert_eq!(snap.analytic, analytic);
        assert_eq!(snap.replicated, replicated);
    }
}
