//! The target workloads: Algorithm I and Algorithm II compiled for the
//! Thor-like CPU.
//!
//! The paper generated its controller code from a Simulink model with the
//! Real-Time Workshop Ada Coder; here the same two algorithms are written
//! in tcpu assembly (structured exactly like the paper's pseudo-code) and
//! assembled by [`bera_tcpu::asm`]. The unit tests in this module
//! cross-validate the assembly against the native Rust controllers of
//! [`bera_core`] in a fault-free closed loop.

use bera_plant::{Engine, Profiles};
use bera_tcpu::asm::{assemble, Program};
use bera_tcpu::machine::{Machine, RunExit, PORT_R, PORT_U, PORT_Y};
use std::fmt;

/// A workload failed outside any fault-injection experiment: either its
/// source does not assemble, or a fault-free closed-loop run did not yield
/// where it should. Typed so harness code can report the failure instead
/// of unwinding a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The workload source failed to assemble.
    Assemble {
        /// Workload name.
        name: String,
        /// Assembler diagnostic.
        message: String,
    },
    /// A fault-free closed-loop run trapped or exhausted its instruction
    /// budget at `iteration` — a workload bug, not an experiment outcome.
    Run {
        /// Workload name.
        name: String,
        /// Zero-based loop iteration that failed.
        iteration: usize,
        /// How the run exited (trap or budget).
        detail: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Assemble { name, message } => {
                write!(f, "workload {name} failed to assemble: {message}")
            }
            WorkloadError::Run {
                name,
                iteration,
                detail,
            } => {
                write!(
                    f,
                    "workload {name} failed at iteration {iteration}: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Source text of the Algorithm I workload.
pub const ALGORITHM_1_SOURCE: &str = include_str!("../workloads/algorithm1.s");
/// Source text of the Algorithm II workload.
pub const ALGORITHM_2_SOURCE: &str = include_str!("../workloads/algorithm2.s");
/// Ablation variant: backups co-located with `x` in cache line 0.
pub const ALGORITHM_2_COLOCATED_SOURCE: &str = include_str!("../workloads/algorithm2_colocated.s");
/// Ablation variant: state backed up before it is asserted.
pub const ALGORITHM_2_ASSERT_AFTER_SOURCE: &str =
    include_str!("../workloads/algorithm2_assert_after.s");
/// Extension: Algorithm II plus a rate assertion on the state
/// ("Algorithm III", the paper's future-work direction).
pub const ALGORITHM_3_SOURCE: &str = include_str!("../workloads/algorithm3.s");

/// A workload ready to load into the target: name, source and assembled
/// program.
#[derive(Debug, Clone)]
pub struct Workload {
    name: &'static str,
    source: &'static str,
    program: Program,
}

impl Workload {
    /// Assembles an arbitrary named workload source, reporting assembler
    /// diagnostics as a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Assemble`] when the source does not
    /// assemble.
    pub fn from_source(name: &'static str, source: &'static str) -> Result<Self, WorkloadError> {
        match assemble(source) {
            Ok(program) => Ok(Workload {
                name,
                source,
                program,
            }),
            Err(e) => Err(WorkloadError::Assemble {
                name: name.to_string(),
                message: e.to_string(),
            }),
        }
    }

    /// Algorithm I: the plain PI controller.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble (a build-time bug).
    #[must_use]
    pub fn algorithm_one() -> Self {
        Workload {
            name: "Algorithm I",
            source: ALGORITHM_1_SOURCE,
            program: assemble(ALGORITHM_1_SOURCE).expect("algorithm1.s must assemble"),
        }
    }

    /// Algorithm II: executable assertions + best effort recovery.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble (a build-time bug).
    #[must_use]
    pub fn algorithm_two() -> Self {
        Workload {
            name: "Algorithm II",
            source: ALGORITHM_2_SOURCE,
            program: assemble(ALGORITHM_2_SOURCE).expect("algorithm2.s must assemble"),
        }
    }

    /// Ablation: Algorithm II with the backups sharing `x`'s cache line.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble (a build-time bug).
    #[must_use]
    pub fn algorithm_two_colocated_backup() -> Self {
        Workload {
            name: "Algorithm II (co-located backup)",
            source: ALGORITHM_2_COLOCATED_SOURCE,
            program: assemble(ALGORITHM_2_COLOCATED_SOURCE)
                .expect("algorithm2_colocated.s must assemble"),
        }
    }

    /// Ablation: Algorithm II with the backup made *before* the assertion.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble (a build-time bug).
    #[must_use]
    pub fn algorithm_two_assert_after_backup() -> Self {
        Workload {
            name: "Algorithm II (assert after backup)",
            source: ALGORITHM_2_ASSERT_AFTER_SOURCE,
            program: assemble(ALGORITHM_2_ASSERT_AFTER_SOURCE)
                .expect("algorithm2_assert_after.s must assemble"),
        }
    }

    /// Extension ("Algorithm III"): Algorithm II plus a rate assertion on
    /// the state, catching in-range corruptions like Figure 10's.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble (a build-time bug).
    #[must_use]
    pub fn algorithm_three() -> Self {
        Workload {
            name: "Algorithm III",
            source: ALGORITHM_3_SOURCE,
            program: assemble(ALGORITHM_3_SOURCE).expect("algorithm3.s must assemble"),
        }
    }

    /// Resolves a CLI workload key (`alg1`, `alg2`, `alg2-colocated`,
    /// `alg2-assert-after`, `alg3`) to its workload. Returns `None` for an
    /// unknown key so callers can print their own usage message.
    #[must_use]
    pub fn by_key(key: &str) -> Option<Workload> {
        match key {
            "alg1" => Some(Workload::algorithm_one()),
            "alg2" => Some(Workload::algorithm_two()),
            "alg2-colocated" => Some(Workload::algorithm_two_colocated_backup()),
            "alg2-assert-after" => Some(Workload::algorithm_two_assert_after_backup()),
            "alg3" => Some(Workload::algorithm_three()),
            _ => None,
        }
    }

    /// All workloads in report order.
    #[must_use]
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::algorithm_one(),
            Workload::algorithm_two(),
            Workload::algorithm_two_colocated_backup(),
            Workload::algorithm_two_assert_after_backup(),
            Workload::algorithm_three(),
        ]
    }

    /// Workload name as used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The assembly source.
    #[must_use]
    pub fn source(&self) -> &'static str {
        self.source
    }

    /// The assembled program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// A disassembly listing of the assembled program, one line per word.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (i, &word) in self.program.code.iter().enumerate() {
            let addr = self.program.code_base + (i as u32) * 4;
            out.push_str(&format!(
                "{addr:#07x}  {word:08x}  {}\n",
                bera_tcpu::isa::disassemble(word)
            ));
        }
        out
    }

    /// Address of the controller state variable `x` in data memory.
    ///
    /// # Panics
    ///
    /// Panics if the workload does not define `x_state`.
    #[must_use]
    pub fn x_address(&self) -> u32 {
        self.program
            .symbol("x_state")
            .expect("workload must define x_state")
    }

    /// Drives the workload fault-free in the paper's closed loop for
    /// `iterations` samples and returns the controller outputs. A trap or
    /// budget exhaustion is a reportable [`WorkloadError`], not a panic —
    /// a workload bug must not take a harness down with it.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Run`] if any iteration ends in anything
    /// but a clean yield.
    pub fn run_closed_loop(&self, iterations: usize) -> Result<Vec<f64>, WorkloadError> {
        let mut m = Machine::new();
        m.load_program(self.program());
        let mut engine = Engine::paper();
        let profiles = Profiles::paper();
        let dt = 0.0154;
        let mut outputs = Vec::new();
        for k in 0..iterations {
            let t = k as f64 * dt;
            m.set_port_f32(PORT_R, profiles.reference(t) as f32);
            m.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
            match m.run(1_000_000) {
                RunExit::Yield => {}
                other => {
                    return Err(WorkloadError::Run {
                        name: self.name.to_string(),
                        iteration: k,
                        detail: format!("{other:?}"),
                    })
                }
            }
            let u = f64::from(m.port_out_f32(PORT_U));
            outputs.push(u);
            engine.advance(u, profiles.load(t), dt);
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bera_core::{Controller, PiController, ProtectedPiController};

    fn run_closed_loop_tcpu(workload: &Workload, iterations: usize) -> Vec<f64> {
        workload
            .run_closed_loop(iterations)
            .expect("fault-free reference run must succeed")
    }

    fn run_closed_loop_native<C: Controller>(mut ctrl: C, iterations: usize) -> Vec<f64> {
        let mut engine = Engine::paper();
        let profiles = Profiles::paper();
        let dt = 0.0154;
        let mut outputs = Vec::new();
        for k in 0..iterations {
            let t = k as f64 * dt;
            let r = f64::from(profiles.reference(t) as f32);
            let y = f64::from(engine.speed_rpm() as f32);
            let u = ctrl.step(r, y);
            outputs.push(u);
            engine.advance(u, profiles.load(t), dt);
        }
        outputs
    }

    #[test]
    fn bad_source_is_a_typed_assemble_error() {
        let err = Workload::from_source("Broken", "this is not assembly\n")
            .expect_err("nonsense must not assemble");
        match &err {
            WorkloadError::Assemble { name, message } => {
                assert_eq!(name, "Broken");
                assert!(!message.is_empty());
            }
            other => panic!("expected Assemble error, got {other:?}"),
        }
        assert!(err.to_string().contains("failed to assemble"));
    }

    #[test]
    fn non_yielding_workload_is_a_typed_run_error() {
        // A workload that spins forever burns the per-iteration budget and
        // must surface as a reportable error, not a panic.
        let w = Workload::from_source("Spinner", "spin:\n    jmp spin\n")
            .expect("the spinner assembles");
        let err = w.run_closed_loop(3).expect_err("spinner never yields");
        match &err {
            WorkloadError::Run {
                name,
                iteration,
                detail,
            } => {
                assert_eq!(name, "Spinner");
                assert_eq!(*iteration, 0);
                assert!(detail.contains("Budget"), "{detail}");
            }
            other => panic!("expected Run error, got {other:?}"),
        }
    }

    #[test]
    fn both_workloads_assemble() {
        let a1 = Workload::algorithm_one();
        let a2 = Workload::algorithm_two();
        assert!(a1.program().code_len() > 30);
        assert!(a2.program().code_len() > a1.program().code_len());
    }

    #[test]
    fn x_lives_in_cache_line_zero() {
        for w in [Workload::algorithm_one(), Workload::algorithm_two()] {
            assert_eq!(w.x_address(), 0x10000);
            assert_eq!(bera_tcpu::cache::index_of(w.x_address()), 0);
        }
    }

    #[test]
    fn backups_live_in_a_different_cache_line_than_x() {
        let w = Workload::algorithm_two();
        let x_old = w.program().symbol("x_old").unwrap();
        assert_ne!(
            bera_tcpu::cache::index_of(w.x_address()),
            bera_tcpu::cache::index_of(x_old),
            "a single flip must never hit a variable and its backup"
        );
    }

    #[test]
    fn algorithm_one_matches_native_controller() {
        let tcpu = run_closed_loop_tcpu(&Workload::algorithm_one(), 650);
        let native = run_closed_loop_native(PiController::paper(), 650);
        let max_diff = tcpu
            .iter()
            .zip(native.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        // f32 target vs f64 reference, amplified by the closed loop: allow
        // a modest tolerance but demand the same trajectory.
        assert!(max_diff < 0.5, "max |tcpu - native| = {max_diff}");
    }

    #[test]
    fn algorithm_two_matches_native_protected_controller() {
        let tcpu = run_closed_loop_tcpu(&Workload::algorithm_two(), 650);
        let native = run_closed_loop_native(ProtectedPiController::paper(), 650);
        let max_diff = tcpu
            .iter()
            .zip(native.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 0.5, "max |tcpu - native| = {max_diff}");
    }

    #[test]
    fn algorithms_identical_fault_free() {
        let a1 = run_closed_loop_tcpu(&Workload::algorithm_one(), 650);
        let a2 = run_closed_loop_tcpu(&Workload::algorithm_two(), 650);
        let max_diff = a1
            .iter()
            .zip(a2.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert_eq!(max_diff, 0.0, "fault-free outputs must be identical");
    }

    #[test]
    fn all_variant_workloads_assemble_and_run_fault_free() {
        for w in Workload::all() {
            let outputs = run_closed_loop_tcpu(&w, 100);
            assert_eq!(outputs.len(), 100, "{} must run", w.name());
            assert!(
                outputs.iter().all(|u| (0.0..=70.0).contains(u)),
                "{} outputs in range",
                w.name()
            );
        }
    }

    #[test]
    fn variants_match_algorithm_two_fault_free() {
        let reference = run_closed_loop_tcpu(&Workload::algorithm_two(), 650);
        for w in [
            Workload::algorithm_two_colocated_backup(),
            Workload::algorithm_two_assert_after_backup(),
            Workload::algorithm_three(),
        ] {
            let outputs = run_closed_loop_tcpu(&w, 650);
            let max_diff = outputs
                .iter()
                .zip(reference.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert_eq!(max_diff, 0.0, "{} must be identical fault-free", w.name());
        }
    }

    #[test]
    fn colocated_variant_really_colocates() {
        let w = Workload::algorithm_two_colocated_backup();
        let x_old = w.program().symbol("x_old").unwrap();
        assert_eq!(
            bera_tcpu::cache::index_of(w.x_address()),
            bera_tcpu::cache::index_of(x_old)
        );
    }

    #[test]
    fn closed_loop_tracks_reference() {
        let outputs = run_closed_loop_tcpu(&Workload::algorithm_one(), 650);
        // The output settles at a plausible throttle angle (Figure 5 shape).
        let tail = &outputs[620..];
        for u in tail {
            assert!((5.0..45.0).contains(u), "settled throttle angle: {u}");
        }
    }
}
