//! Campaign planner: def/use fault-space pruning over the golden access
//! trace.
//!
//! A SCIFI campaign samples (scan bit, injection time) pairs uniformly.
//! Most of those faults land in state the workload overwrites before
//! reading, or never touches again — their outcomes are fully determined
//! by the golden run's access trace and need no simulation at all. The
//! planner walks the fault list once against
//! [`GoldenRun::trace`](crate::experiment::GoldenRun) and decides, per
//! fault:
//!
//! * **first post-injection access is a full-width write** — the faulty
//!   bit is deposited over with the value the fault-free run computes
//!   (execution up to that write never observed the flip, so it is
//!   bit-identical to the golden run): emit [`Outcome::Overwritten`]
//!   analytically;
//! * **the unit is never accessed again** — the flip sits untouched until
//!   the end-of-run state diff and nothing else diverges: emit
//!   [`Outcome::Latent`] analytically;
//! * **first post-injection access is a read** — the fault is live. All
//!   faults in the *same scan bit* whose first visible access is the *same
//!   read* produce identical faulty trajectories (the machine state at
//!   that read is the golden state plus the same flip, whichever earlier
//!   boundary the flip landed at), so one simulated representative per
//!   equivalence class stands for every member.
//!
//! Pruning applies only where the trace argument is sound: single-bit
//! transients (intermittent re-assertions, stuck-at forcing and multi-bit
//! clusters perturb state after injection — they bypass pruning exactly
//! like the convergence pruner's quiescence gate), scan bits whose unit
//! routes every semantic access through a trace hook
//! ([`BitLocation::trace_unit`] returns `Some`; state the EDMs consult
//! implicitly is excluded), and campaigns without the parity-protected
//! cache (the parity checker reads cache data on every access without
//! being part of the trace).
//!
//! The pruned campaign is provably outcome-equivalent to the unpruned one
//! (`tests/prune_equivalence.rs`), and `--paranoid N` re-simulates `N`
//! members per equivalence class at run time as a continuous cross-check.

use crate::campaign::CampaignConfig;
use crate::classify::Outcome;
use crate::experiment::{ExperimentRecord, FaultModel, FaultSpec, GoldenRun, Provenance};
use bera_tcpu::scan::{self, BitLocation};
use bera_tcpu::{AccessTrace, Fnv64, VisTrace};
use std::collections::{BTreeMap, HashMap};

/// The planner's decision for one fault-list index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanAction {
    /// Inject and run this fault on the simulator (it is either live — an
    /// equivalence-class representative — or ineligible for pruning).
    Simulate,
    /// Emit the record analytically: the outcome follows from the golden
    /// access trace alone.
    Analytic(Outcome),
    /// Copy the outcome of the simulated representative at fault-list
    /// index `representative` (always a lower index than this fault's).
    Replicate {
        /// Fault-list index of this class's simulated representative.
        representative: usize,
    },
}

/// Per-rule hit counters and timing for one planner invocation — pure
/// telemetry (never consulted for classification), surfaced through the
/// campaign observer, the telemetry sidecar and `report`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Analytic `Latent` verdicts from the def/use access trace.
    pub defuse_latent: usize,
    /// Analytic `Overwritten` verdicts from the def/use access trace.
    pub defuse_overwritten: usize,
    /// Analytic `Latent` verdicts from an EDM-visibility window (the
    /// unit is never sampled again).
    pub vis_latent: usize,
    /// Analytic `Overwritten` verdicts from an EDM-visibility window
    /// (a whole-unit deposit precedes every sample).
    pub vis_overwritten: usize,
    /// Signature-register faults proven `Overwritten` by the write-first
    /// rule (a control transfer zeroes the register before any compare).
    pub sig_overwritten: usize,
    /// Operand-latch faults resolved by the value-level shift rule
    /// (either displaced off the latch or migrated bit-identically).
    pub value_resolved: usize,
    /// Live faults merged into an equivalence class via a visibility
    /// window rather than the def/use trace.
    pub vis_replicated: usize,
    /// Wall-clock microseconds spent planning (classification only).
    pub plan_micros: u64,
}

impl PlanStats {
    /// Total analytic verdicts attributable to the visibility/value layer
    /// (everything PR-4's def/use planner could not classify).
    #[must_use]
    pub fn vis_analytic(&self) -> usize {
        self.vis_latent + self.vis_overwritten + self.sig_overwritten + self.value_resolved
    }
}

/// One action per fault-list index, plus the class structure needed for
/// replication and paranoid cross-checking.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    actions: Vec<PlanAction>,
    stats: PlanStats,
}

impl CampaignPlan {
    /// A plan that simulates every fault (pruning disabled or ineligible).
    #[must_use]
    pub fn simulate_all(n: usize) -> Self {
        CampaignPlan {
            actions: vec![PlanAction::Simulate; n],
            stats: PlanStats::default(),
        }
    }

    /// Per-rule planner telemetry for this plan.
    #[must_use]
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// The action for fault-list index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the planned fault list.
    #[must_use]
    pub fn action(&self, i: usize) -> PlanAction {
        self.actions[i]
    }

    /// All actions, in fault-list order.
    #[must_use]
    pub fn actions(&self) -> &[PlanAction] {
        &self.actions
    }

    /// Number of faults that will be simulated.
    #[must_use]
    pub fn simulated(&self) -> usize {
        self.count(|a| matches!(a, PlanAction::Simulate))
    }

    /// Number of faults classified analytically.
    #[must_use]
    pub fn analytic(&self) -> usize {
        self.count(|a| matches!(a, PlanAction::Analytic(_)))
    }

    /// Number of faults replicated from a class representative.
    #[must_use]
    pub fn replicated(&self) -> usize {
        self.count(|a| matches!(a, PlanAction::Replicate { .. }))
    }

    fn count(&self, pred: impl Fn(&PlanAction) -> bool) -> usize {
        self.actions.iter().filter(|a| pred(a)).count()
    }

    /// The equivalence classes with at least one replicated member:
    /// `(representative index, member indices)`, ordered by representative.
    #[must_use]
    pub fn classes(&self) -> Vec<(usize, Vec<usize>)> {
        let mut by_rep: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, a) in self.actions.iter().enumerate() {
            if let PlanAction::Replicate { representative } = *a {
                by_rep.entry(representative).or_default().push(i);
            }
        }
        let mut classes: Vec<_> = by_rep.into_iter().collect();
        classes.sort_unstable_by_key(|(rep, _)| *rep);
        classes
    }
}

/// `true` when `cfg` is eligible for def/use pruning at all: pruning
/// enabled, a one-shot single-bit fault model (anything that re-asserts or
/// clusters perturbs state the trace does not model), and no parity
/// cache (its checker reads cache data outside the trace hooks).
#[must_use]
pub fn prune_eligible(cfg: &CampaignConfig) -> bool {
    cfg.prune && cfg.fault_model == FaultModel::SingleBit && !cfg.loop_cfg.parity_cache
}

/// `true` when `cfg` may run its plan-`Simulate` faults through the
/// lockstep batch engine ([`bera_tcpu::BatchMachine`]): batching enabled,
/// a one-shot flip fault model (re-asserting and stuck-at injectors are
/// not quiescent, so replicas cannot ride the golden stream), golden
/// checkpoints available (split-off replicas materialize from them), no
/// parity cache (its checker observes cache data outside the trace hooks)
/// and no chaos harness (chaos sabotages *executions* by index; resolving
/// an index without executing it would dodge the sabotage under test).
#[must_use]
pub fn batch_eligible(cfg: &CampaignConfig) -> bool {
    cfg.batch_width > 0
        && cfg.loop_cfg.checkpoint_stride > 0
        && !cfg.loop_cfg.parity_cache
        && matches!(
            cfg.fault_model,
            FaultModel::SingleBit | FaultModel::AdjacentDoubleBit | FaultModel::Burst { .. }
        )
        && cfg.supervisor.as_ref().is_none_or(|s| s.chaos.is_none())
}

/// Groups batch-candidate fault indices into lockstep batches: faults
/// sharing a checkpoint fast-forward window (the same
/// [`GoldenRun::checkpoint_before`] their injection instant resolves to)
/// ride the same [`bera_tcpu::BatchMachine`], chunked to at most `width`
/// replicas per batch. Grouping is deterministic — windows ascend and
/// fault-list order is preserved within a window — so resumed campaigns
/// rebuild identical batches.
#[must_use]
pub fn batch_groups(
    candidates: &[usize],
    faults: &[FaultSpec],
    golden: &GoldenRun,
    width: usize,
) -> Vec<Vec<usize>> {
    let mut by_window: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &i in candidates {
        let window = golden
            .checkpoint_before(faults[i].inject_at)
            .map_or(0, |c| c.iteration);
        by_window.entry(window).or_default().push(i);
    }
    by_window
        .into_values()
        .flat_map(|group| {
            group
                .chunks(width.max(1))
                .map(<[usize]>::to_vec)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Builds the record of a replica the batch engine proved *converged*:
/// every flipped unit was fully overwritten with its golden value by the
/// instruction at `killed_at`, without ever being observed. The scalar
/// path would detect the rejoin at the first golden checkpoint boundary
/// past `killed_at` and splice the golden tail there; `pruned_at` records
/// that same boundary (or `None` when no checkpoint boundary follows the
/// kill — the scalar run would then simply complete in the golden end
/// state).
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[must_use]
pub fn lockstep_converged_record(
    fault: FaultSpec,
    killed_at: u64,
    golden: &GoldenRun,
    detail: bool,
) -> ExperimentRecord {
    let mut record = analytic_record(fault, Outcome::Overwritten, golden, detail);
    record.pruned_at = golden
        .checkpoints
        .iter()
        .find(|c| c.machine.instr_count() > killed_at)
        .map(|c| c.iteration);
    record
}

/// Plans the campaign: one [`PlanAction`] per fault of `faults`, derived
/// from `golden`'s access trace. The plan is a pure function of the fault
/// list, the configuration and the golden run, so resumed campaigns
/// recompute the identical plan (and hence identical representatives).
///
/// # Panics
///
/// Panics if a fault's `location_index` is outside the scan catalog.
#[must_use]
pub fn plan_campaign(
    faults: &[FaultSpec],
    cfg: &CampaignConfig,
    golden: &GoldenRun,
) -> CampaignPlan {
    if !prune_eligible(cfg) {
        return CampaignPlan::simulate_all(faults.len());
    }
    let started = std::time::Instant::now();
    let catalog = scan::catalog();
    let vis = cfg.vis.then_some(&golden.vis);
    let mut stats = PlanStats::default();
    // Class key: (scan-catalog bit index, position of the first visible
    // access in the unit's trace slot — def/use or visibility, disjoint
    // per location). Two faults sharing both flip the same bit and are
    // first observed by the same read, so their faulty trajectories are
    // identical from that read onward.
    let mut class_reps: HashMap<(usize, usize), usize> = HashMap::new();
    let actions = faults
        .iter()
        .enumerate()
        .map(|(i, fault)| {
            match classify_fault(
                &golden.trace,
                vis,
                catalog[fault.location_index],
                fault,
                golden,
                &mut stats,
            ) {
                TraceVerdict::Opaque => PlanAction::Simulate,
                TraceVerdict::Analytic(outcome) => PlanAction::Analytic(outcome),
                TraceVerdict::Live {
                    first_access,
                    via_vis,
                } => match class_reps.entry((fault.location_index, first_access)) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if via_vis {
                            stats.vis_replicated += 1;
                        }
                        PlanAction::Replicate {
                            representative: *e.get(),
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i);
                        PlanAction::Simulate
                    }
                },
            }
        })
        .collect();
    stats.plan_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    CampaignPlan { actions, stats }
}

/// What the golden traces say about one single-bit fault.
enum TraceVerdict {
    /// The faulted unit is not fully covered by any trace (or the
    /// injection time falls outside the traced run): simulate.
    Opaque,
    /// The outcome follows from the traces alone.
    Analytic(Outcome),
    /// The fault is live: first observed by the read at this position of
    /// the unit's trace slot.
    Live {
        first_access: usize,
        /// The observation came from a visibility window (telemetry only).
        via_vis: bool,
    },
}

/// Classifies one fault against the def/use access trace first, then —
/// when `vis` is supplied — against the EDM-visibility trace and the
/// value-level rules for the remaining opaque state.
fn classify_fault(
    trace: &AccessTrace,
    vis: Option<&VisTrace>,
    location: BitLocation,
    fault: &FaultSpec,
    golden: &GoldenRun,
    stats: &mut PlanStats,
) -> TraceVerdict {
    // A fault scheduled at or past the end of the run is never injected
    // (the drive loop completes first); no trace says anything about it.
    if fault.inject_at >= golden.total_instructions {
        return TraceVerdict::Opaque;
    }
    if let Some(unit) = location.trace_unit() {
        let slot = trace.accesses(unit);
        let first = slot.partition_point(|a| a.at < fault.inject_at);
        return match slot.get(first) {
            // Never accessed again: the flip survives untouched to the
            // end-of-run scan diff, and nothing else ever diverges.
            None => {
                stats.defuse_latent += 1;
                TraceVerdict::Analytic(Outcome::Latent)
            }
            // Overwritten with the golden value before anything read it.
            Some(a) if a.kind.is_full_write() => {
                stats.defuse_overwritten += 1;
                TraceVerdict::Analytic(Outcome::Overwritten)
            }
            // A read (or a partial write, treated conservatively as a use
            // by classing on the access position): the fault is live.
            Some(_) => TraceVerdict::Live {
                first_access: first,
                via_vis: false,
            },
        };
    }
    let Some(vis) = vis else {
        return TraceVerdict::Opaque;
    };
    classify_from_vis(vis, location, fault, stats)
}

/// The visibility-window and value-level rules for a bit the def/use
/// trace cannot see. Soundness arguments in DESIGN.md §8h and the
/// [`bera_tcpu::vis`] module docs.
fn classify_from_vis(
    vis: &VisTrace,
    location: BitLocation,
    fault: &FaultSpec,
    stats: &mut PlanStats,
) -> TraceVerdict {
    // Value-level rules for the operand latch, a two-slot shift register
    // (`a ← b`, `b ← clean value` on every register read). A flip in
    // slot A is deposited over by the first shift; a flip in slot B
    // migrates — bit-identically — into slot A on the first shift and is
    // deposited over by the second. Nothing ever reads the latch, so an
    // undisplaced flip is exactly a latent end-of-run scan diff.
    match location {
        BitLocation::OperandA { .. } => {
            stats.value_resolved += 1;
            let shifts = vis.shifts_at_or_after(fault.inject_at);
            return TraceVerdict::Analytic(if shifts >= 1 {
                Outcome::Overwritten
            } else {
                Outcome::Latent
            });
        }
        BitLocation::OperandB { .. } => {
            stats.value_resolved += 1;
            let shifts = vis.shifts_at_or_after(fault.inject_at);
            return TraceVerdict::Analytic(if shifts >= 2 {
                Outcome::Overwritten
            } else {
                Outcome::Latent
            });
        }
        _ => {}
    }
    let Some(unit) = location.vis_unit() else {
        // The fetch-latch valid bit: consulted every instruction, no
        // window exists — permanently opaque.
        return TraceVerdict::Opaque;
    };
    let slot = vis.accesses(unit);
    let first = slot.partition_point(|a| a.at < fault.inject_at);
    if unit == bera_tcpu::VisUnit::Sig {
        // The signature register is folded (read-modify-written) by every
        // executed instruction, so `golden ⊕ flip` stops describing the
        // faulty value immediately: neither a latent claim (folding may
        // or may not re-converge) nor class merging is sound. The one
        // sound rule is write-first: a control transfer zeroes the
        // register — value-independently — before any compare samples it.
        return match slot.get(first) {
            Some(a) if a.kind.is_full_write() => {
                stats.sig_overwritten += 1;
                TraceVerdict::Analytic(Outcome::Overwritten)
            }
            _ => TraceVerdict::Opaque,
        };
    }
    match slot.get(first) {
        // No asynchronous observer ever samples the unit again: the flip
        // survives untouched to the end-of-run scan diff.
        None => {
            stats.vis_latent += 1;
            TraceVerdict::Analytic(Outcome::Latent)
        }
        // A whole-unit deposit (line fill, store, cmp, control transfer,
        // trap bookkeeping) lands before any sample: the flip is erased
        // with clean inputs.
        Some(a) if a.kind.is_full_write() => {
            stats.vis_overwritten += 1;
            TraceVerdict::Analytic(Outcome::Overwritten)
        }
        // Sampled: live, and mergeable on the sampling position exactly
        // like a def/use read (the unit is untouched between injection
        // and the sample, so every member reaches it as golden ⊕ flip).
        Some(_) => TraceVerdict::Live {
            first_access: first,
            via_vis: true,
        },
    }
}

/// Builds the record of an analytically classified fault. Matches what a
/// simulated run of the same fault produces field-for-field (outcome,
/// zero deviation, no detection, golden outputs), except for the pure
/// provenance metadata (`provenance`, `pruned_at`).
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[must_use]
pub fn analytic_record(
    fault: FaultSpec,
    outcome: Outcome,
    golden: &GoldenRun,
    detail: bool,
) -> ExperimentRecord {
    let location = scan::catalog()[fault.location_index];
    ExperimentRecord {
        fault,
        part: location.part(),
        location,
        outcome,
        max_deviation: 0.0,
        first_strong_iteration: None,
        detection_latency: None,
        outputs: detail.then(|| golden.outputs.clone()),
        pruned_at: None,
        provenance: Provenance::Analytic,
        harness_error: None,
    }
}

/// Builds the record of a replicated class member from its simulated
/// representative. Everything outcome-determined is copied verbatim (the
/// trajectories are identical); the detection latency is re-based from
/// the representative's injection time to the member's — both faults
/// become visible at the same first read, and any trap fires at the same
/// absolute instruction.
#[must_use]
pub fn replicated_record(fault: FaultSpec, rep: &ExperimentRecord) -> ExperimentRecord {
    debug_assert_eq!(
        fault.location_index, rep.fault.location_index,
        "replication across different scan bits is unsound"
    );
    let detection_latency = rep
        .detection_latency
        .map(|l| rep.fault.inject_at + l - fault.inject_at);
    ExperimentRecord {
        fault,
        part: rep.part,
        location: rep.location,
        outcome: rep.outcome,
        max_deviation: rep.max_deviation,
        first_strong_iteration: rep.first_strong_iteration,
        detection_latency,
        outputs: rep.outputs.clone(),
        pruned_at: None,
        provenance: Provenance::Replicated,
        harness_error: None,
    }
}

/// Semantic equality of two records of the *same fault*: everything the
/// simulation determines (outcome, deviation, first strong iteration,
/// detection latency, outputs) must agree bit-for-bit; provenance
/// metadata (`provenance`, `pruned_at`, `harness_error`) is excluded, as
/// it records *how* the classification was obtained, not what it is.
/// This is the equivalence the pruned-vs-unpruned suite and the paranoid
/// cross-check both enforce.
#[must_use]
pub fn records_equivalent(a: &ExperimentRecord, b: &ExperimentRecord) -> bool {
    a.fault == b.fault
        && a.location == b.location
        && a.part == b.part
        && a.outcome == b.outcome
        && a.max_deviation.to_bits() == b.max_deviation.to_bits()
        && a.first_strong_iteration == b.first_strong_iteration
        && a.detection_latency == b.detection_latency
        && a.outputs == b.outputs
}

/// Deterministically picks up to `n` members of an equivalence class for
/// paranoid re-simulation. The choice is *content-addressed*: keyed on
/// the campaign seed, the store's golden digest and the representative's
/// fault spec (never its fault-list position), over a sorted member
/// pool — so two runs of the same campaign, a resumed run, and a CI
/// cross-check all re-simulate exactly the same members regardless of
/// the order in which the class structure was assembled.
#[must_use]
pub fn paranoid_members(
    members: &[usize],
    n: usize,
    seed: u64,
    golden_digest: u64,
    representative: FaultSpec,
) -> Vec<usize> {
    if n == 0 || members.is_empty() {
        return Vec::new();
    }
    let mut picked: Vec<usize> = Vec::new();
    let mut h = Fnv64::new();
    h.write_u64(seed);
    h.write_u64(golden_digest);
    h.write_u64(representative.location_index as u64);
    h.write_u64(representative.inject_at);
    let mut state = h.finish();
    let mut pool: Vec<usize> = members.to_vec();
    pool.sort_unstable();
    while picked.len() < n && !pool.is_empty() {
        // FNV-chained index selection: cheap, deterministic, seed-mixed.
        let mut step = Fnv64::new();
        step.write_u64(state);
        state = step.finish();
        let at = (state as usize) % pool.len();
        picked.push(pool.swap_remove(at));
    }
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::experiment::golden_run;
    use crate::workload::Workload;
    use bera_tcpu::{Access, AccessKind};

    fn quick_plan_inputs() -> (CampaignConfig, GoldenRun, Vec<FaultSpec>) {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(64, 5);
        let golden = golden_run(&w, &cfg.loop_cfg);
        let faults =
            crate::campaign::FaultList::sample(64, cfg.seed, golden.total_instructions).faults;
        (cfg, golden, faults)
    }

    #[test]
    fn plan_partitions_the_fault_list() {
        let (cfg, golden, faults) = quick_plan_inputs();
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.actions().len(), faults.len());
        assert_eq!(
            plan.simulated() + plan.analytic() + plan.replicated(),
            faults.len()
        );
        assert!(
            plan.analytic() > 0,
            "a uniform sample over the scan chain always hits state that \
             is overwritten or never used"
        );
    }

    #[test]
    fn representatives_precede_their_members() {
        let (cfg, golden, faults) = quick_plan_inputs();
        let plan = plan_campaign(&faults, &cfg, &golden);
        for (i, a) in plan.actions().iter().enumerate() {
            if let PlanAction::Replicate { representative } = *a {
                assert!(
                    representative < i,
                    "member {i} precedes rep {representative}"
                );
                assert_eq!(plan.action(representative), PlanAction::Simulate);
                assert_eq!(
                    faults[representative].location_index, faults[i].location_index,
                    "a class never spans scan bits"
                );
            }
        }
    }

    #[test]
    fn ineligible_configs_simulate_everything() {
        let (mut cfg, golden, faults) = quick_plan_inputs();
        cfg.fault_model = FaultModel::StuckAt { value: false };
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.simulated(), faults.len());

        cfg.fault_model = FaultModel::SingleBit;
        cfg.prune = false;
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.simulated(), faults.len());

        cfg.prune = true;
        cfg.loop_cfg.parity_cache = true;
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.simulated(), faults.len());
    }

    #[test]
    fn injection_past_the_run_end_is_opaque() {
        let (cfg, golden, mut faults) = quick_plan_inputs();
        for f in &mut faults {
            f.inject_at = golden.total_instructions;
        }
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.simulated(), faults.len());
    }

    #[test]
    fn a_partial_write_neither_kills_nor_merges_with_the_full_write_class() {
        // Build a synthetic trace: unit written fully at 100.
        let (cfg, mut golden, _) = quick_plan_inputs();
        let catalog = scan::catalog();
        let loc_index = catalog
            .iter()
            .position(|l| l.trace_unit().is_some())
            .expect("some location is traceable");
        let unit = catalog[loc_index].trace_unit().unwrap();
        golden.trace = AccessTrace::new();
        golden.trace.record(unit, 100, AccessKind::Write);
        let fault = FaultSpec {
            location_index: loc_index,
            inject_at: 50,
        };
        let plan = plan_campaign(&[fault], &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Analytic(Outcome::Overwritten));

        // Narrow the write: the kill evaporates, the fault becomes live.
        golden
            .trace
            .set_kind_for_test(unit, 0, AccessKind::PartialWrite);
        let plan = plan_campaign(&[fault], &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Simulate);
    }

    #[test]
    fn an_extra_read_defeats_class_merging() {
        let (cfg, mut golden, _) = quick_plan_inputs();
        let catalog = scan::catalog();
        let loc_index = catalog
            .iter()
            .position(|l| l.trace_unit().is_some())
            .expect("some location is traceable");
        let unit = catalog[loc_index].trace_unit().unwrap();
        golden.trace = AccessTrace::new();
        golden.trace.record(unit, 200, AccessKind::Read);
        let faults = [
            FaultSpec {
                location_index: loc_index,
                inject_at: 10,
            },
            FaultSpec {
                location_index: loc_index,
                inject_at: 150,
            },
        ];
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Simulate);
        assert_eq!(plan.action(1), PlanAction::Replicate { representative: 0 });

        // A read between the two injection times splits the class: the
        // earlier fault is now first observed by a different access.
        golden.trace.insert_for_test(
            unit,
            Access {
                at: 100,
                kind: AccessKind::Read,
            },
        );
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Simulate);
        assert_eq!(plan.action(1), PlanAction::Simulate, "class must split");
    }

    #[test]
    fn paranoid_member_choice_is_deterministic_and_bounded() {
        let members = vec![3, 9, 14, 20, 31];
        let rep = FaultSpec {
            location_index: 7,
            inject_at: 123,
        };
        let a = paranoid_members(&members, 3, 42, 0xDEAD, rep);
        let b = paranoid_members(&members, 3, 42, 0xDEAD, rep);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|m| members.contains(m)));
        let all = paranoid_members(&members, 10, 42, 0xDEAD, rep);
        assert_eq!(all.len(), members.len(), "capped at the class size");
        assert!(paranoid_members(&members, 0, 42, 0xDEAD, rep).is_empty());
        // Different seeds generally pick different subsets (not asserted
        // strictly — just that the seed participates).
        let _ = paranoid_members(&members, 3, 43, 0xDEAD, rep);
    }

    #[test]
    fn paranoid_member_choice_is_independent_of_assembly_order() {
        // The pool is sorted internally, so the picks are a function of
        // the class *contents* — not of the iteration order (e.g. a
        // HashMap walk) that produced the member list.
        let rep = FaultSpec {
            location_index: 7,
            inject_at: 123,
        };
        let forward = vec![3, 9, 14, 20, 31];
        let shuffled = vec![20, 3, 31, 9, 14];
        assert_eq!(
            paranoid_members(&forward, 3, 42, 0xDEAD, rep),
            paranoid_members(&shuffled, 3, 42, 0xDEAD, rep),
        );
        // And the golden digest participates: a different workload store
        // cross-checks a different sample.
        assert_ne!(
            paranoid_members(&forward, 2, 42, 0xDEAD, rep),
            paranoid_members(&forward, 2, 42, 0xBEEF, rep),
            "digest must perturb the sample for this fixture"
        );
    }

    fn catalog_index(pred: impl Fn(&BitLocation) -> bool) -> usize {
        scan::catalog()
            .iter()
            .position(pred)
            .expect("catalog holds the requested location")
    }

    #[test]
    fn vis_windows_classify_the_untraceable_population() {
        let (cfg, golden, _) = quick_plan_inputs();
        assert!(cfg.vis);
        // PSR bits 2..8 are never consulted by this ISA: latent.
        let psr7 = catalog_index(|l| matches!(l, BitLocation::Psr { bit: 7 }));
        // The trap bookkeeping registers are written only by the (never
        // taken in golden) trap path: latent.
        let epc = catalog_index(|l| matches!(l, BitLocation::Epc { bit: 0 }));
        let faults = [
            FaultSpec {
                location_index: psr7,
                inject_at: 10,
            },
            FaultSpec {
                location_index: epc,
                inject_at: 10,
            },
        ];
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Analytic(Outcome::Latent));
        assert_eq!(plan.action(1), PlanAction::Analytic(Outcome::Latent));
        assert_eq!(plan.stats().vis_latent, 2);

        // Without the visibility layer both fall back to simulation.
        let mut no_vis = cfg.clone();
        no_vis.vis = false;
        let plan = plan_campaign(&faults, &no_vis, &golden);
        assert_eq!(plan.simulated(), faults.len());
        assert_eq!(plan.stats().vis_analytic(), 0);
    }

    #[test]
    fn signature_faults_use_only_the_write_first_rule() {
        let (cfg, golden, _) = quick_plan_inputs();
        let sig = catalog_index(|l| matches!(l, BitLocation::SigReg { bit: 3 }));
        let sig_slot = golden.vis.accesses(bera_tcpu::VisUnit::Sig);
        assert!(
            !sig_slot.is_empty(),
            "the workload loops, so control transfers zero the signature"
        );
        // Find an injection instant whose first signature event is a
        // write (a control-transfer zeroing): provably overwritten. A
        // `sig` compare's zeroing write trails its same-instant sampling
        // read, so only a write that *leads* its instant qualifies.
        let first_write = sig_slot
            .iter()
            .enumerate()
            .find(|(i, a)| a.kind.is_full_write() && (*i == 0 || sig_slot[i - 1].at < a.at))
            .expect("some transfer zeroes the signature")
            .1
            .at;
        let plan = plan_campaign(
            &[FaultSpec {
                location_index: sig,
                inject_at: first_write,
            }],
            &cfg,
            &golden,
        );
        assert_eq!(plan.action(0), PlanAction::Analytic(Outcome::Overwritten));
        assert_eq!(plan.stats().sig_overwritten, 1);

        // Past the last event the register is folded to the end of run:
        // no latent claim is sound, so the planner must simulate.
        let last = sig_slot.last().unwrap().at;
        if last + 1 < golden.total_instructions {
            let plan = plan_campaign(
                &[FaultSpec {
                    location_index: sig,
                    inject_at: last + 1,
                }],
                &cfg,
                &golden,
            );
            assert_eq!(plan.action(0), PlanAction::Simulate);
        }
    }

    #[test]
    fn operand_latch_faults_resolve_by_shift_count() {
        let (cfg, golden, _) = quick_plan_inputs();
        let op_a = catalog_index(|l| matches!(l, BitLocation::OperandA { bit: 4 }));
        let op_b = catalog_index(|l| matches!(l, BitLocation::OperandB { bit: 4 }));
        // Early in the run there are plenty of register reads left: both
        // slots are displaced with clean values.
        let early = [
            FaultSpec {
                location_index: op_a,
                inject_at: 5,
            },
            FaultSpec {
                location_index: op_b,
                inject_at: 5,
            },
        ];
        let plan = plan_campaign(&early, &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Analytic(Outcome::Overwritten));
        assert_eq!(plan.action(1), PlanAction::Analytic(Outcome::Overwritten));
        assert_eq!(plan.stats().value_resolved, 2);
        // Past the final shift nothing displaces the latch: latent.
        let last_shift_plus = golden.total_instructions - 1;
        if golden.vis.shifts_at_or_after(last_shift_plus) == 0 {
            let plan = plan_campaign(
                &[FaultSpec {
                    location_index: op_a,
                    inject_at: last_shift_plus,
                }],
                &cfg,
                &golden,
            );
            assert_eq!(plan.action(0), PlanAction::Analytic(Outcome::Latent));
        }
    }

    #[test]
    fn fetch_valid_faults_always_simulate() {
        let (cfg, golden, _) = quick_plan_inputs();
        let fv = catalog_index(|l| matches!(l, BitLocation::FetchValid));
        let plan = plan_campaign(
            &[FaultSpec {
                location_index: fv,
                inject_at: 10,
            }],
            &cfg,
            &golden,
        );
        assert_eq!(plan.action(0), PlanAction::Simulate);
    }

    #[test]
    fn vis_live_faults_merge_on_the_sampling_position() {
        use bera_tcpu::VisUnit;
        let (cfg, mut golden, _) = quick_plan_inputs();
        assert!(golden.total_instructions > 300);
        let psr0 = catalog_index(|l| matches!(l, BitLocation::Psr { bit: 0 }));
        // Synthetic windows: a cmp deposits the EQ flag at 100, a branch
        // consults it at 200. Two flips landing inside (100, 200] are
        // first observed by the same consult — one class; a flip before
        // the deposit is erased by it.
        golden.vis = bera_tcpu::VisTrace::new();
        golden.vis.record(VisUnit::Psr(0), 100, AccessKind::Write);
        golden.vis.record(VisUnit::Psr(0), 200, AccessKind::Read);
        let faults = [
            FaultSpec {
                location_index: psr0,
                inject_at: 150,
            },
            FaultSpec {
                location_index: psr0,
                inject_at: 200,
            },
            FaultSpec {
                location_index: psr0,
                inject_at: 50,
            },
        ];
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Simulate);
        assert_eq!(plan.action(1), PlanAction::Replicate { representative: 0 });
        assert_eq!(plan.action(2), PlanAction::Analytic(Outcome::Overwritten));
        assert_eq!(plan.stats().vis_replicated, 1);
        assert_eq!(plan.stats().vis_overwritten, 1);

        // Adversarial: one extra EDM sample inside the window splits the
        // class — the earlier fault is now observed by a different read.
        golden.vis.insert_for_test(
            VisUnit::Psr(0),
            Access {
                at: 170,
                kind: AccessKind::Read,
            },
        );
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Simulate);
        assert_eq!(plan.action(1), PlanAction::Simulate, "class must split");
    }
}
