//! Campaign planner: def/use fault-space pruning over the golden access
//! trace.
//!
//! A SCIFI campaign samples (scan bit, injection time) pairs uniformly.
//! Most of those faults land in state the workload overwrites before
//! reading, or never touches again — their outcomes are fully determined
//! by the golden run's access trace and need no simulation at all. The
//! planner walks the fault list once against
//! [`GoldenRun::trace`](crate::experiment::GoldenRun) and decides, per
//! fault:
//!
//! * **first post-injection access is a full-width write** — the faulty
//!   bit is deposited over with the value the fault-free run computes
//!   (execution up to that write never observed the flip, so it is
//!   bit-identical to the golden run): emit [`Outcome::Overwritten`]
//!   analytically;
//! * **the unit is never accessed again** — the flip sits untouched until
//!   the end-of-run state diff and nothing else diverges: emit
//!   [`Outcome::Latent`] analytically;
//! * **first post-injection access is a read** — the fault is live. All
//!   faults in the *same scan bit* whose first visible access is the *same
//!   read* produce identical faulty trajectories (the machine state at
//!   that read is the golden state plus the same flip, whichever earlier
//!   boundary the flip landed at), so one simulated representative per
//!   equivalence class stands for every member.
//!
//! Pruning applies only where the trace argument is sound: single-bit
//! transients (intermittent re-assertions, stuck-at forcing and multi-bit
//! clusters perturb state after injection — they bypass pruning exactly
//! like the convergence pruner's quiescence gate), scan bits whose unit
//! routes every semantic access through a trace hook
//! ([`BitLocation::trace_unit`] returns `Some`; state the EDMs consult
//! implicitly is excluded), and campaigns without the parity-protected
//! cache (the parity checker reads cache data on every access without
//! being part of the trace).
//!
//! The pruned campaign is provably outcome-equivalent to the unpruned one
//! (`tests/prune_equivalence.rs`), and `--paranoid N` re-simulates `N`
//! members per equivalence class at run time as a continuous cross-check.

use crate::campaign::CampaignConfig;
use crate::classify::Outcome;
use crate::experiment::{ExperimentRecord, FaultModel, FaultSpec, GoldenRun, Provenance};
use bera_tcpu::scan::{self, BitLocation};
use bera_tcpu::{AccessTrace, Fnv64};
use std::collections::{BTreeMap, HashMap};

/// The planner's decision for one fault-list index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanAction {
    /// Inject and run this fault on the simulator (it is either live — an
    /// equivalence-class representative — or ineligible for pruning).
    Simulate,
    /// Emit the record analytically: the outcome follows from the golden
    /// access trace alone.
    Analytic(Outcome),
    /// Copy the outcome of the simulated representative at fault-list
    /// index `representative` (always a lower index than this fault's).
    Replicate {
        /// Fault-list index of this class's simulated representative.
        representative: usize,
    },
}

/// One action per fault-list index, plus the class structure needed for
/// replication and paranoid cross-checking.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    actions: Vec<PlanAction>,
}

impl CampaignPlan {
    /// A plan that simulates every fault (pruning disabled or ineligible).
    #[must_use]
    pub fn simulate_all(n: usize) -> Self {
        CampaignPlan {
            actions: vec![PlanAction::Simulate; n],
        }
    }

    /// The action for fault-list index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the planned fault list.
    #[must_use]
    pub fn action(&self, i: usize) -> PlanAction {
        self.actions[i]
    }

    /// All actions, in fault-list order.
    #[must_use]
    pub fn actions(&self) -> &[PlanAction] {
        &self.actions
    }

    /// Number of faults that will be simulated.
    #[must_use]
    pub fn simulated(&self) -> usize {
        self.count(|a| matches!(a, PlanAction::Simulate))
    }

    /// Number of faults classified analytically.
    #[must_use]
    pub fn analytic(&self) -> usize {
        self.count(|a| matches!(a, PlanAction::Analytic(_)))
    }

    /// Number of faults replicated from a class representative.
    #[must_use]
    pub fn replicated(&self) -> usize {
        self.count(|a| matches!(a, PlanAction::Replicate { .. }))
    }

    fn count(&self, pred: impl Fn(&PlanAction) -> bool) -> usize {
        self.actions.iter().filter(|a| pred(a)).count()
    }

    /// The equivalence classes with at least one replicated member:
    /// `(representative index, member indices)`, ordered by representative.
    #[must_use]
    pub fn classes(&self) -> Vec<(usize, Vec<usize>)> {
        let mut by_rep: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, a) in self.actions.iter().enumerate() {
            if let PlanAction::Replicate { representative } = *a {
                by_rep.entry(representative).or_default().push(i);
            }
        }
        let mut classes: Vec<_> = by_rep.into_iter().collect();
        classes.sort_unstable_by_key(|(rep, _)| *rep);
        classes
    }
}

/// `true` when `cfg` is eligible for def/use pruning at all: pruning
/// enabled, a one-shot single-bit fault model (anything that re-asserts or
/// clusters perturbs state the trace does not model), and no parity
/// cache (its checker reads cache data outside the trace hooks).
#[must_use]
pub fn prune_eligible(cfg: &CampaignConfig) -> bool {
    cfg.prune && cfg.fault_model == FaultModel::SingleBit && !cfg.loop_cfg.parity_cache
}

/// `true` when `cfg` may run its plan-`Simulate` faults through the
/// lockstep batch engine ([`bera_tcpu::BatchMachine`]): batching enabled,
/// a one-shot flip fault model (re-asserting and stuck-at injectors are
/// not quiescent, so replicas cannot ride the golden stream), golden
/// checkpoints available (split-off replicas materialize from them), no
/// parity cache (its checker observes cache data outside the trace hooks)
/// and no chaos harness (chaos sabotages *executions* by index; resolving
/// an index without executing it would dodge the sabotage under test).
#[must_use]
pub fn batch_eligible(cfg: &CampaignConfig) -> bool {
    cfg.batch_width > 0
        && cfg.loop_cfg.checkpoint_stride > 0
        && !cfg.loop_cfg.parity_cache
        && matches!(
            cfg.fault_model,
            FaultModel::SingleBit | FaultModel::AdjacentDoubleBit | FaultModel::Burst { .. }
        )
        && cfg.supervisor.as_ref().is_none_or(|s| s.chaos.is_none())
}

/// Groups batch-candidate fault indices into lockstep batches: faults
/// sharing a checkpoint fast-forward window (the same
/// [`GoldenRun::checkpoint_before`] their injection instant resolves to)
/// ride the same [`bera_tcpu::BatchMachine`], chunked to at most `width`
/// replicas per batch. Grouping is deterministic — windows ascend and
/// fault-list order is preserved within a window — so resumed campaigns
/// rebuild identical batches.
#[must_use]
pub fn batch_groups(
    candidates: &[usize],
    faults: &[FaultSpec],
    golden: &GoldenRun,
    width: usize,
) -> Vec<Vec<usize>> {
    let mut by_window: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &i in candidates {
        let window = golden
            .checkpoint_before(faults[i].inject_at)
            .map_or(0, |c| c.iteration);
        by_window.entry(window).or_default().push(i);
    }
    by_window
        .into_values()
        .flat_map(|group| {
            group
                .chunks(width.max(1))
                .map(<[usize]>::to_vec)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Builds the record of a replica the batch engine proved *converged*:
/// every flipped unit was fully overwritten with its golden value by the
/// instruction at `killed_at`, without ever being observed. The scalar
/// path would detect the rejoin at the first golden checkpoint boundary
/// past `killed_at` and splice the golden tail there; `pruned_at` records
/// that same boundary (or `None` when no checkpoint boundary follows the
/// kill — the scalar run would then simply complete in the golden end
/// state).
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[must_use]
pub fn lockstep_converged_record(
    fault: FaultSpec,
    killed_at: u64,
    golden: &GoldenRun,
    detail: bool,
) -> ExperimentRecord {
    let mut record = analytic_record(fault, Outcome::Overwritten, golden, detail);
    record.pruned_at = golden
        .checkpoints
        .iter()
        .find(|c| c.machine.instr_count() > killed_at)
        .map(|c| c.iteration);
    record
}

/// Plans the campaign: one [`PlanAction`] per fault of `faults`, derived
/// from `golden`'s access trace. The plan is a pure function of the fault
/// list, the configuration and the golden run, so resumed campaigns
/// recompute the identical plan (and hence identical representatives).
///
/// # Panics
///
/// Panics if a fault's `location_index` is outside the scan catalog.
#[must_use]
pub fn plan_campaign(
    faults: &[FaultSpec],
    cfg: &CampaignConfig,
    golden: &GoldenRun,
) -> CampaignPlan {
    if !prune_eligible(cfg) {
        return CampaignPlan::simulate_all(faults.len());
    }
    let catalog = scan::catalog();
    // Class key: (scan-catalog bit index, position of the first visible
    // access in the unit's trace slot). Two faults sharing both flip the
    // same bit and are first observed by the same read, so their faulty
    // trajectories are identical from that read onward.
    let mut class_reps: HashMap<(usize, usize), usize> = HashMap::new();
    let actions = faults
        .iter()
        .enumerate()
        .map(|(i, fault)| {
            match classify_from_trace(&golden.trace, catalog[fault.location_index], fault, golden) {
                TraceVerdict::Opaque => PlanAction::Simulate,
                TraceVerdict::Analytic(outcome) => PlanAction::Analytic(outcome),
                TraceVerdict::Live { first_access } => {
                    match class_reps.entry((fault.location_index, first_access)) {
                        std::collections::hash_map::Entry::Occupied(e) => PlanAction::Replicate {
                            representative: *e.get(),
                        },
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(i);
                            PlanAction::Simulate
                        }
                    }
                }
            }
        })
        .collect();
    CampaignPlan { actions }
}

/// What the golden trace says about one single-bit fault.
enum TraceVerdict {
    /// The faulted unit is not fully covered by trace hooks (or the
    /// injection time falls outside the traced run): simulate.
    Opaque,
    /// The outcome follows from the trace alone.
    Analytic(Outcome),
    /// The fault is live: first observed by the read at this position of
    /// the unit's trace slot.
    Live { first_access: usize },
}

fn classify_from_trace(
    trace: &AccessTrace,
    location: BitLocation,
    fault: &FaultSpec,
    golden: &GoldenRun,
) -> TraceVerdict {
    let Some(unit) = location.trace_unit() else {
        return TraceVerdict::Opaque;
    };
    // A fault scheduled at or past the end of the run is never injected
    // (the drive loop completes first); the trace says nothing about it.
    if fault.inject_at >= golden.total_instructions {
        return TraceVerdict::Opaque;
    }
    let slot = trace.accesses(unit);
    let first = slot.partition_point(|a| a.at < fault.inject_at);
    match slot.get(first) {
        // Never accessed again: the flip survives untouched to the
        // end-of-run scan diff, and nothing else ever diverges.
        None => TraceVerdict::Analytic(Outcome::Latent),
        // Overwritten with the golden value before anything read it.
        Some(a) if a.kind.is_full_write() => TraceVerdict::Analytic(Outcome::Overwritten),
        // A read (or a partial write, treated conservatively as a use by
        // classing on the access position): the fault is live.
        Some(_) => TraceVerdict::Live {
            first_access: first,
        },
    }
}

/// Builds the record of an analytically classified fault. Matches what a
/// simulated run of the same fault produces field-for-field (outcome,
/// zero deviation, no detection, golden outputs), except for the pure
/// provenance metadata (`provenance`, `pruned_at`).
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[must_use]
pub fn analytic_record(
    fault: FaultSpec,
    outcome: Outcome,
    golden: &GoldenRun,
    detail: bool,
) -> ExperimentRecord {
    let location = scan::catalog()[fault.location_index];
    ExperimentRecord {
        fault,
        part: location.part(),
        location,
        outcome,
        max_deviation: 0.0,
        first_strong_iteration: None,
        detection_latency: None,
        outputs: detail.then(|| golden.outputs.clone()),
        pruned_at: None,
        provenance: Provenance::Analytic,
        harness_error: None,
    }
}

/// Builds the record of a replicated class member from its simulated
/// representative. Everything outcome-determined is copied verbatim (the
/// trajectories are identical); the detection latency is re-based from
/// the representative's injection time to the member's — both faults
/// become visible at the same first read, and any trap fires at the same
/// absolute instruction.
#[must_use]
pub fn replicated_record(fault: FaultSpec, rep: &ExperimentRecord) -> ExperimentRecord {
    debug_assert_eq!(
        fault.location_index, rep.fault.location_index,
        "replication across different scan bits is unsound"
    );
    let detection_latency = rep
        .detection_latency
        .map(|l| rep.fault.inject_at + l - fault.inject_at);
    ExperimentRecord {
        fault,
        part: rep.part,
        location: rep.location,
        outcome: rep.outcome,
        max_deviation: rep.max_deviation,
        first_strong_iteration: rep.first_strong_iteration,
        detection_latency,
        outputs: rep.outputs.clone(),
        pruned_at: None,
        provenance: Provenance::Replicated,
        harness_error: None,
    }
}

/// Semantic equality of two records of the *same fault*: everything the
/// simulation determines (outcome, deviation, first strong iteration,
/// detection latency, outputs) must agree bit-for-bit; provenance
/// metadata (`provenance`, `pruned_at`, `harness_error`) is excluded, as
/// it records *how* the classification was obtained, not what it is.
/// This is the equivalence the pruned-vs-unpruned suite and the paranoid
/// cross-check both enforce.
#[must_use]
pub fn records_equivalent(a: &ExperimentRecord, b: &ExperimentRecord) -> bool {
    a.fault == b.fault
        && a.location == b.location
        && a.part == b.part
        && a.outcome == b.outcome
        && a.max_deviation.to_bits() == b.max_deviation.to_bits()
        && a.first_strong_iteration == b.first_strong_iteration
        && a.detection_latency == b.detection_latency
        && a.outputs == b.outputs
}

/// Deterministically picks up to `n` members of an equivalence class for
/// paranoid re-simulation, seeded so different campaigns (and different
/// classes) sample different members while a given campaign always checks
/// the same ones.
#[must_use]
pub fn paranoid_members(
    members: &[usize],
    n: usize,
    seed: u64,
    representative: usize,
) -> Vec<usize> {
    if n == 0 || members.is_empty() {
        return Vec::new();
    }
    let mut picked: Vec<usize> = Vec::new();
    let mut h = Fnv64::new();
    h.write_u64(seed);
    h.write_u64(representative as u64);
    let mut state = h.finish();
    let mut pool: Vec<usize> = members.to_vec();
    while picked.len() < n && !pool.is_empty() {
        // FNV-chained index selection: cheap, deterministic, seed-mixed.
        let mut step = Fnv64::new();
        step.write_u64(state);
        state = step.finish();
        let at = (state as usize) % pool.len();
        picked.push(pool.swap_remove(at));
    }
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::experiment::golden_run;
    use crate::workload::Workload;
    use bera_tcpu::{Access, AccessKind};

    fn quick_plan_inputs() -> (CampaignConfig, GoldenRun, Vec<FaultSpec>) {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(64, 5);
        let golden = golden_run(&w, &cfg.loop_cfg);
        let faults =
            crate::campaign::FaultList::sample(64, cfg.seed, golden.total_instructions).faults;
        (cfg, golden, faults)
    }

    #[test]
    fn plan_partitions_the_fault_list() {
        let (cfg, golden, faults) = quick_plan_inputs();
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.actions().len(), faults.len());
        assert_eq!(
            plan.simulated() + plan.analytic() + plan.replicated(),
            faults.len()
        );
        assert!(
            plan.analytic() > 0,
            "a uniform sample over the scan chain always hits state that \
             is overwritten or never used"
        );
    }

    #[test]
    fn representatives_precede_their_members() {
        let (cfg, golden, faults) = quick_plan_inputs();
        let plan = plan_campaign(&faults, &cfg, &golden);
        for (i, a) in plan.actions().iter().enumerate() {
            if let PlanAction::Replicate { representative } = *a {
                assert!(
                    representative < i,
                    "member {i} precedes rep {representative}"
                );
                assert_eq!(plan.action(representative), PlanAction::Simulate);
                assert_eq!(
                    faults[representative].location_index, faults[i].location_index,
                    "a class never spans scan bits"
                );
            }
        }
    }

    #[test]
    fn ineligible_configs_simulate_everything() {
        let (mut cfg, golden, faults) = quick_plan_inputs();
        cfg.fault_model = FaultModel::StuckAt { value: false };
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.simulated(), faults.len());

        cfg.fault_model = FaultModel::SingleBit;
        cfg.prune = false;
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.simulated(), faults.len());

        cfg.prune = true;
        cfg.loop_cfg.parity_cache = true;
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.simulated(), faults.len());
    }

    #[test]
    fn injection_past_the_run_end_is_opaque() {
        let (cfg, golden, mut faults) = quick_plan_inputs();
        for f in &mut faults {
            f.inject_at = golden.total_instructions;
        }
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.simulated(), faults.len());
    }

    #[test]
    fn a_partial_write_neither_kills_nor_merges_with_the_full_write_class() {
        // Build a synthetic trace: unit written fully at 100.
        let (cfg, mut golden, _) = quick_plan_inputs();
        let catalog = scan::catalog();
        let loc_index = catalog
            .iter()
            .position(|l| l.trace_unit().is_some())
            .expect("some location is traceable");
        let unit = catalog[loc_index].trace_unit().unwrap();
        golden.trace = AccessTrace::new();
        golden.trace.record(unit, 100, AccessKind::Write);
        let fault = FaultSpec {
            location_index: loc_index,
            inject_at: 50,
        };
        let plan = plan_campaign(&[fault], &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Analytic(Outcome::Overwritten));

        // Narrow the write: the kill evaporates, the fault becomes live.
        golden
            .trace
            .set_kind_for_test(unit, 0, AccessKind::PartialWrite);
        let plan = plan_campaign(&[fault], &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Simulate);
    }

    #[test]
    fn an_extra_read_defeats_class_merging() {
        let (cfg, mut golden, _) = quick_plan_inputs();
        let catalog = scan::catalog();
        let loc_index = catalog
            .iter()
            .position(|l| l.trace_unit().is_some())
            .expect("some location is traceable");
        let unit = catalog[loc_index].trace_unit().unwrap();
        golden.trace = AccessTrace::new();
        golden.trace.record(unit, 200, AccessKind::Read);
        let faults = [
            FaultSpec {
                location_index: loc_index,
                inject_at: 10,
            },
            FaultSpec {
                location_index: loc_index,
                inject_at: 150,
            },
        ];
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Simulate);
        assert_eq!(plan.action(1), PlanAction::Replicate { representative: 0 });

        // A read between the two injection times splits the class: the
        // earlier fault is now first observed by a different access.
        golden.trace.insert_for_test(
            unit,
            Access {
                at: 100,
                kind: AccessKind::Read,
            },
        );
        let plan = plan_campaign(&faults, &cfg, &golden);
        assert_eq!(plan.action(0), PlanAction::Simulate);
        assert_eq!(plan.action(1), PlanAction::Simulate, "class must split");
    }

    #[test]
    fn paranoid_member_choice_is_deterministic_and_bounded() {
        let members = vec![3, 9, 14, 20, 31];
        let a = paranoid_members(&members, 3, 42, 1);
        let b = paranoid_members(&members, 3, 42, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|m| members.contains(m)));
        let all = paranoid_members(&members, 10, 42, 1);
        assert_eq!(all.len(), members.len(), "capped at the class size");
        assert!(paranoid_members(&members, 0, 42, 1).is_empty());
        // Different seeds generally pick different subsets (not asserted
        // strictly — just that the seed participates).
        let _ = paranoid_members(&members, 3, 43, 1);
    }
}
