//! Single fault-injection experiments: golden reference execution and the
//! inject–run–classify cycle.

use crate::classify::{Classifier, Outcome};
use crate::workload::Workload;
use bera_plant::{Engine, Profiles};
use bera_tcpu::machine::{Machine, RunExit, PORT_R, PORT_U, PORT_Y};
use bera_tcpu::scan::{self, BitLocation, CpuPart, ScanSnapshot};
use serde::{Deserialize, Serialize};

/// The closed-loop configuration an experiment runs under.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Number of control iterations (650 in the paper: 10 s at 15.4 ms).
    pub iterations: usize,
    /// Sample interval in seconds.
    pub sample_interval: f64,
    /// Input profiles (reference speed and load torque).
    pub profiles: Profiles,
    /// Initial engine (plant) state.
    pub engine: Engine,
    /// Run the target with a parity-protected data cache (the hardware
    /// alternative of Section 4.3; used by the ablation study).
    pub parity_cache: bool,
}

impl LoopConfig {
    /// The paper's configuration: 650 iterations of 15.4 ms against the
    /// paper's engine and profiles.
    #[must_use]
    pub fn paper() -> Self {
        LoopConfig {
            iterations: 650,
            sample_interval: 0.0154,
            profiles: Profiles::paper(),
            engine: Engine::paper(),
            parity_cache: false,
        }
    }

    /// A reduced-length configuration for fast tests.
    #[must_use]
    pub fn short(iterations: usize) -> Self {
        LoopConfig {
            iterations,
            ..LoopConfig::paper()
        }
    }
}

/// The fault model of a campaign (GOOFI's set-up phase selects it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultModel {
    /// A single bit-flip — the paper's model for CPU transients.
    #[default]
    SingleBit,
    /// A multi-cell upset: two *adjacent* scan-chain bits flip together,
    /// as caused by one particle striking neighbouring cells. This is the
    /// model under which the placement of Algorithm II's backups in a
    /// separate cache line matters.
    AdjacentDoubleBit,
}

/// One sampled fault: a scan-chain bit and an injection time, expressed as
/// a dynamic-instruction index ("the point in time when a machine
/// instruction is to be executed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Index into [`bera_tcpu::scan::catalog`].
    pub location_index: usize,
    /// Dynamic instruction count at which the bit is flipped.
    pub inject_at: u64,
}

impl FaultModel {
    /// The scan-catalog indices this model flips for a sampled location.
    #[must_use]
    pub fn locations(&self, location_index: usize) -> Vec<usize> {
        let n = scan::catalog().len();
        match self {
            FaultModel::SingleBit => vec![location_index % n],
            FaultModel::AdjacentDoubleBit => {
                vec![location_index % n, (location_index + 1) % n]
            }
        }
    }
}

/// The fault-free reference execution logged before a campaign
/// (GOOFI's fault injection phase starts with exactly this run).
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Controller output bit patterns, one per iteration.
    pub outputs: Vec<u32>,
    /// Plant speed trajectory (rpm), one sample per iteration.
    pub speeds: Vec<f64>,
    /// Total dynamic instructions executed.
    pub total_instructions: u64,
    /// Scan-chain state at the end of the run.
    pub end_scan: ScanSnapshot,
    /// The machine at the end of the run (for memory comparison).
    pub end_machine: Machine,
}

/// The record of one completed experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The injected fault.
    pub fault: FaultSpec,
    /// Which part of the CPU the fault hit (table column).
    pub part: CpuPart,
    /// The concrete state element hit.
    pub location: BitLocation,
    /// Final classification.
    pub outcome: Outcome,
    /// Largest absolute output deviation (degrees) over the run; 0 when the
    /// run trapped before completing.
    pub max_deviation: f64,
    /// First iteration whose output deviated by more than the threshold
    /// (`None` when no iteration did).
    pub first_strong_iteration: Option<usize>,
    /// Instructions from injection to detection (`None` unless detected) —
    /// the error-detection latency.
    pub detection_latency: Option<u64>,
    /// Full output sequence (bit patterns); populated only in detail mode.
    pub outputs: Option<Vec<u32>>,
}

/// How a closed-loop drive ended.
enum DriveEnd {
    Completed,
    Trapped(bera_tcpu::edm::Trap),
    Hang,
}

struct DriveResult {
    outputs: Vec<u32>,
    speeds: Vec<f64>,
    end: DriveEnd,
}

fn set_ports(machine: &mut Machine, cfg: &LoopConfig, k: usize, engine: &Engine) {
    let t = k as f64 * cfg.sample_interval;
    machine.set_port_f32(PORT_R, cfg.profiles.reference(t) as f32);
    machine.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
}

/// Converts a (possibly corrupted) actuator word into the physical throttle
/// angle: the actuator hardware saturates at its mechanical limits and
/// rejects non-finite bit patterns at the lower stop.
fn actuate(u: f32) -> f64 {
    let u = f64::from(u);
    if u.is_finite() {
        u.clamp(0.0, 70.0)
    } else {
        0.0
    }
}

/// Drives the machine in closed loop. `fault` flips one scan-chain bit when
/// the dynamic instruction count reaches `inject_at`. `instr_cap` bounds the
/// total instruction count to detect hangs.
fn drive(
    machine: &mut Machine,
    cfg: &LoopConfig,
    mut fault: Option<(u64, Vec<BitLocation>)>,
    instr_cap: u64,
) -> DriveResult {
    let mut engine = cfg.engine.clone();
    let mut outputs = Vec::with_capacity(cfg.iterations);
    let mut speeds = Vec::with_capacity(cfg.iterations);
    let mut k = 0usize;
    speeds.push(engine.speed_rpm());
    set_ports(machine, cfg, 0, &engine);
    while k < cfg.iterations {
        let stop = match &fault {
            Some((at, _)) => (*at).min(instr_cap),
            None => instr_cap,
        };
        match machine.run_until(stop) {
            RunExit::Yield => {
                let u = machine.port_out_f32(PORT_U);
                outputs.push(u.to_bits());
                let t = k as f64 * cfg.sample_interval;
                engine.advance(actuate(u), cfg.profiles.load(t), cfg.sample_interval);
                k += 1;
                if k < cfg.iterations {
                    speeds.push(engine.speed_rpm());
                    set_ports(machine, cfg, k, &engine);
                }
            }
            RunExit::Trap(trap) => {
                return DriveResult {
                    outputs,
                    speeds,
                    end: DriveEnd::Trapped(trap),
                };
            }
            RunExit::Budget => {
                match fault.take() {
                    Some((_, locs)) if machine.instr_count() < instr_cap => {
                        for loc in locs {
                            machine.scan_flip(loc);
                        }
                    }
                    _ => {
                        return DriveResult {
                            outputs,
                            speeds,
                            end: DriveEnd::Hang,
                        };
                    }
                }
            }
        }
    }
    DriveResult {
        outputs,
        speeds,
        end: DriveEnd::Completed,
    }
}

/// Executes the fault-free reference run and logs the golden state.
///
/// # Panics
///
/// Panics if the workload traps or hangs without any fault injected —
/// that would be a workload bug, not an experiment outcome.
#[must_use]
pub fn golden_run(workload: &Workload, cfg: &LoopConfig) -> GoldenRun {
    let mut machine = Machine::new();
    machine.load_program(workload.program());
    machine.set_cache_parity(cfg.parity_cache);
    let cap = (cfg.iterations as u64 + 2) * 10_000;
    let result = drive(&mut machine, cfg, None, cap);
    match result.end {
        DriveEnd::Completed => {}
        DriveEnd::Trapped(t) => panic!("golden run trapped: {t:?}"),
        DriveEnd::Hang => panic!("golden run exceeded the instruction cap"),
    }
    GoldenRun {
        outputs: result.outputs,
        speeds: result.speeds,
        total_instructions: machine.instr_count(),
        end_scan: machine.scan_snapshot(),
        end_machine: machine,
    }
}

/// Runs one fault-injection experiment against a previously logged golden
/// run and classifies the outcome.
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[must_use]
pub fn run_experiment(
    workload: &Workload,
    cfg: &LoopConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    detail: bool,
) -> ExperimentRecord {
    run_experiment_with_model(workload, cfg, golden, fault, FaultModel::SingleBit, detail)
}

/// Like [`run_experiment`], with an explicit [`FaultModel`].
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[must_use]
pub fn run_experiment_with_model(
    workload: &Workload,
    cfg: &LoopConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    model: FaultModel,
    detail: bool,
) -> ExperimentRecord {
    let classifier = Classifier::paper();
    let location = scan::catalog()[fault.location_index];
    let locations: Vec<BitLocation> = model
        .locations(fault.location_index)
        .into_iter()
        .map(|i| scan::catalog()[i])
        .collect();
    let mut machine = Machine::new();
    machine.load_program(workload.program());
    machine.set_cache_parity(cfg.parity_cache);
    let cap = golden.total_instructions * 2 + 20_000;
    let result = drive(&mut machine, cfg, Some((fault.inject_at, locations)), cap);

    let mut detection_latency = None;
    let (outcome, max_deviation, first_strong) = match result.end {
        DriveEnd::Trapped(trap) => {
            detection_latency = Some(trap.at_instruction.saturating_sub(fault.inject_at));
            (Outcome::Detected(trap.mechanism), 0.0, None)
        }
        DriveEnd::Hang => (Outcome::Hang, 0.0, None),
        DriveEnd::Completed => {
            let (max_dev, first) = deviation_stats(&golden.outputs, &result.outputs, classifier.threshold);
            match classifier.classify_bits(&golden.outputs, &result.outputs) {
                Some(severity) => (Outcome::ValueFailure(severity), max_dev, first),
                None => {
                    // Outputs identical: latent iff any machine or memory
                    // state differs from the golden end state.
                    let scan_differs =
                        machine.scan_snapshot().diff_count(&golden.end_scan) != 0;
                    let mem_differs =
                        !machine.memory().data_equals(golden.end_machine.memory());
                    if scan_differs || mem_differs {
                        (Outcome::Latent, 0.0, None)
                    } else {
                        (Outcome::Overwritten, 0.0, None)
                    }
                }
            }
        }
    };

    ExperimentRecord {
        fault,
        part: location.part(),
        location,
        outcome,
        max_deviation,
        first_strong_iteration: first_strong,
        detection_latency,
        outputs: detail.then_some(result.outputs),
    }
}

fn deviation_stats(golden: &[u32], observed: &[u32], threshold: f64) -> (f64, Option<usize>) {
    let mut max_dev = 0.0f64;
    let mut first = None;
    for (k, (&g, &o)) in golden.iter().zip(observed.iter()).enumerate() {
        let gv = f64::from(f32::from_bits(g));
        let ov = f64::from(f32::from_bits(o));
        let d = if ov.is_finite() {
            (gv - ov).abs()
        } else {
            f64::INFINITY
        };
        if d > max_dev {
            max_dev = d;
        }
        if first.is_none() && d > threshold {
            first = Some(k);
        }
    }
    (max_dev, first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Severity;
    use bera_tcpu::scan::catalog;

    fn find_location(pred: impl Fn(&BitLocation) -> bool) -> usize {
        catalog().iter().position(pred).expect("location exists")
    }

    #[test]
    fn golden_run_completes_and_is_deterministic() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(50);
        let a = golden_run(&w, &cfg);
        let b = golden_run(&w, &cfg);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.total_instructions, b.total_instructions);
        assert_eq!(a.outputs.len(), 50);
        assert_eq!(a.end_scan.diff_count(&b.end_scan), 0);
    }

    #[test]
    fn unused_save_register_fault_is_latent() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(30);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::Save { index: 1, bit: 7 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 2,
            },
            false,
        );
        assert_eq!(rec.outcome, Outcome::Latent);
    }

    #[test]
    fn x_sign_flip_is_a_value_failure() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(100);
        let golden = golden_run(&w, &cfg);
        // x sits at bytes 0..4 of cache line 0; bit 31 is its sign.
        let loc = find_location(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 31 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 2,
            },
            true,
        );
        assert!(
            rec.outcome.is_value_failure(),
            "sign flip of cached x must corrupt the output: {:?}",
            rec.outcome
        );
        assert!(rec.max_deviation > 0.1);
        assert!(rec.outputs.is_some(), "detail mode records outputs");
    }

    #[test]
    fn x_high_exponent_flip_is_severe_under_algorithm_one() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(200);
        let golden = golden_run(&w, &cfg);
        // Bit 29 of the f32 x: a high exponent bit; mid-range value ~20
        // becomes astronomically large -> throttle pinned at 70.
        let loc = find_location(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 29 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 2,
            },
            false,
        );
        match rec.outcome {
            Outcome::ValueFailure(s) => assert!(s.is_severe(), "got {s}"),
            other => panic!("expected a severe value failure, got {other:?}"),
        }
    }

    #[test]
    fn same_fault_is_recovered_by_algorithm_two() {
        let w = Workload::algorithm_two();
        let cfg = LoopConfig::short(200);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 29 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 2,
            },
            false,
        );
        assert!(
            !matches!(rec.outcome, Outcome::ValueFailure(Severity::Permanent)),
            "Algorithm II must prevent permanent failures from huge x: {:?}",
            rec.outcome
        );
        // The assertion catches the corrupted state, so at worst a minor
        // failure remains.
        if let Outcome::ValueFailure(s) = rec.outcome {
            assert!(!s.is_severe(), "recovered fault must be minor, got {s}");
        }
    }

    #[test]
    fn pc_corruption_is_detected() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(30);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::Pc { bit: 20 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 3,
            },
            false,
        );
        assert!(
            matches!(rec.outcome, Outcome::Detected(_)),
            "PC high-bit flip must be detected, got {:?}",
            rec.outcome
        );
    }

    #[test]
    fn injection_at_time_zero_and_near_end_work() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(20);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::Reg { index: 9, bit: 0 }));
        for at in [0, golden.total_instructions - 1] {
            let rec = run_experiment(
                &w,
                &cfg,
                &golden,
                FaultSpec {
                    location_index: loc,
                    inject_at: at,
                },
                false,
            );
            // Any classification is fine; the run must just terminate.
            let _ = rec.outcome;
        }
    }

    #[test]
    fn experiments_are_reproducible() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(60);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 24 }));
        let f = FaultSpec {
            location_index: loc,
            inject_at: golden.total_instructions / 4,
        };
        let a = run_experiment(&w, &cfg, &golden, f, false);
        let b = run_experiment(&w, &cfg, &golden, f, false);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.max_deviation, b.max_deviation);
    }
}

#[cfg(test)]
mod fault_model_tests {
    use super::*;
    use crate::workload::Workload;
    use bera_tcpu::scan;

    #[test]
    fn single_bit_model_flips_one_location() {
        assert_eq!(FaultModel::SingleBit.locations(5), vec![5]);
    }

    #[test]
    fn double_bit_model_flips_adjacent_locations() {
        assert_eq!(FaultModel::AdjacentDoubleBit.locations(5), vec![5, 6]);
        // Wraps at the end of the catalog.
        let n = scan::catalog().len();
        assert_eq!(
            FaultModel::AdjacentDoubleBit.locations(n - 1),
            vec![n - 1, 0]
        );
    }

    #[test]
    fn double_bit_experiments_run_and_classify() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(40);
        let golden = golden_run(&w, &cfg);
        for loc in [0usize, 100, 700, 1500] {
            let rec = run_experiment_with_model(
                &w,
                &cfg,
                &golden,
                FaultSpec {
                    location_index: loc,
                    inject_at: golden.total_instructions / 2,
                },
                FaultModel::AdjacentDoubleBit,
                false,
            );
            let _ = rec.outcome; // must terminate with a classification
        }
    }
}
