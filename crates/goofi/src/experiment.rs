//! Single fault-injection experiments: golden reference execution and the
//! inject–run–classify cycle.

use crate::classify::{Classifier, Outcome};
use crate::observer::{CampaignObserver, NullObserver};
use crate::workload::Workload;
use bera_plant::{Engine, Profiles};
use bera_tcpu::access::AccessTrace;
use bera_tcpu::machine::{Machine, RunExit, PORT_R, PORT_U, PORT_Y};
use bera_tcpu::scan::{self, BitLocation, CpuPart, ScanSnapshot};
use bera_tcpu::vis::VisTrace;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The closed-loop configuration an experiment runs under.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Number of control iterations (650 in the paper: 10 s at 15.4 ms).
    pub iterations: usize,
    /// Sample interval in seconds.
    pub sample_interval: f64,
    /// Input profiles (reference speed and load torque).
    pub profiles: Profiles,
    /// Initial engine (plant) state.
    pub engine: Engine,
    /// Run the target with a parity-protected data cache (the hardware
    /// alternative of Section 4.3; used by the ablation study).
    pub parity_cache: bool,
    /// Capture a golden-run checkpoint every this many iterations. Each
    /// experiment then fast-forwards by cloning the nearest checkpoint at
    /// or before its injection point, and prunes its tail once the faulty
    /// state provably rejoins the golden trajectory. `0` disables both:
    /// every experiment replays from reset. Outcomes are bit-identical
    /// either way; the stride only trades checkpoint memory for campaign
    /// speed.
    pub checkpoint_stride: usize,
    /// Execute experiments through the predecoded fast-replay block engine
    /// (see `Machine::set_fast_replay` and DESIGN.md §8j). Outcomes are
    /// bit-identical with it on or off — the block engine falls back to the
    /// scalar step on any state a scan flip or ROM change could have
    /// perturbed — so this switch exists for the equivalence suite and for
    /// perf A/B runs, not for correctness.
    pub fast_replay: bool,
}

impl LoopConfig {
    /// The paper's configuration: 650 iterations of 15.4 ms against the
    /// paper's engine and profiles.
    #[must_use]
    pub fn paper() -> Self {
        LoopConfig {
            iterations: 650,
            sample_interval: 0.0154,
            profiles: Profiles::paper(),
            engine: Engine::paper(),
            parity_cache: false,
            checkpoint_stride: 4,
            fast_replay: true,
        }
    }

    /// A reduced-length configuration for fast tests.
    #[must_use]
    pub fn short(iterations: usize) -> Self {
        LoopConfig {
            iterations,
            ..LoopConfig::paper()
        }
    }
}

/// The fault model of a campaign (GOOFI's set-up phase selects it).
///
/// The paper's headline numbers use [`FaultModel::SingleBit`] transients;
/// the remaining models probe how the assertion/recovery conclusions shift
/// under richer fault behaviour (multi-cell upsets, marginal cells that
/// re-assert, hard stuck-at defects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FaultModel {
    /// A single bit-flip — the paper's model for CPU transients.
    #[default]
    SingleBit,
    /// A multi-cell upset: two *adjacent* scan-chain bits flip together,
    /// as caused by one particle striking neighbouring cells. This is the
    /// model under which the placement of Algorithm II's backups in a
    /// separate cache line matters.
    AdjacentDoubleBit,
    /// An intermittent fault: the bit flips at injection and the *same*
    /// flip re-asserts at the next `reassert_iterations` control-iteration
    /// boundaries (a marginal cell that keeps glitching before going
    /// quiet). A run cannot be convergence-pruned until the last
    /// re-assertion has been delivered.
    Intermittent {
        /// How many iteration boundaries after injection re-flip the bit.
        reassert_iterations: usize,
    },
    /// A stuck-at hard fault: the bit is forced to `value` at injection and
    /// re-forced at every subsequent iteration boundary through the scan
    /// interface, so no target write can durably clear it. Stuck-at runs
    /// are never convergence-pruned — the fault remains assertable to the
    /// end of the run.
    StuckAt {
        /// The level the bit is stuck at (`false` = stuck-at-0).
        value: bool,
    },
    /// A burst upset: a contiguous cluster of scan-chain bits flips
    /// together. The cluster width varies per sampled location,
    /// deterministically, between 1 and `width` bits (clamped to the
    /// catalog size).
    Burst {
        /// Maximum cluster width in bits.
        width: usize,
    },
}

/// One sampled fault: a scan-chain bit and an injection time, expressed as
/// a dynamic-instruction index ("the point in time when a machine
/// instruction is to be executed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Index into [`bera_tcpu::scan::catalog`].
    pub location_index: usize,
    /// Dynamic instruction count at which the bit is flipped.
    pub inject_at: u64,
}

impl FaultModel {
    /// The scan-catalog indices this model perturbs for a sampled location.
    #[must_use]
    pub fn locations(&self, location_index: usize) -> Vec<usize> {
        self.cluster(location_index, scan::catalog().len())
    }

    /// The indices (mod `n`) this model perturbs for a sampled index, over
    /// a state population of `n` bits — shared by SCIFI (`n` = scan-catalog
    /// length) and SWIFI (`n` = 64 bits of an `f64` state variable). The
    /// result is always non-empty, in-range and free of duplicates;
    /// clusters wider than the population are clamped to it.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — there is no state to perturb.
    #[must_use]
    pub fn cluster(&self, index: usize, n: usize) -> Vec<usize> {
        assert!(n > 0, "cannot sample a fault from an empty population");
        match *self {
            FaultModel::SingleBit
            | FaultModel::Intermittent { .. }
            | FaultModel::StuckAt { .. } => vec![index % n],
            FaultModel::AdjacentDoubleBit => {
                if n == 1 {
                    vec![0]
                } else {
                    vec![index % n, (index + 1) % n]
                }
            }
            FaultModel::Burst { width } => {
                let max = width.clamp(1, n);
                // Derive this cluster's width from the location itself, so
                // one campaign deterministically exercises the whole
                // 1..=width range. A contiguous run of fewer than `n`
                // indices mod `n` cannot repeat, so no dedup pass is
                // needed.
                let mut h = bera_tcpu::Fnv64::new();
                h.write_u64(index as u64);
                let w = 1 + (h.finish() as usize) % max;
                (0..w).map(|i| (index + i) % n).collect()
            }
        }
    }

    /// How many iteration boundaries after injection the fault re-asserts
    /// at; `usize::MAX` for a stuck-at fault (every boundary to the end of
    /// the run), zero for the one-shot transient models.
    #[must_use]
    pub fn reassert_budget(&self) -> usize {
        match self {
            FaultModel::Intermittent {
                reassert_iterations,
            } => *reassert_iterations,
            FaultModel::StuckAt { .. } => usize::MAX,
            _ => 0,
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::SingleBit => f.write_str("single"),
            FaultModel::AdjacentDoubleBit => f.write_str("double"),
            FaultModel::Intermittent {
                reassert_iterations,
            } => write!(f, "intermittent:{reassert_iterations}"),
            FaultModel::StuckAt { value } => write!(f, "stuck{}", u8::from(*value)),
            FaultModel::Burst { width } => write!(f, "burst:{width}"),
        }
    }
}

impl std::str::FromStr for FaultModel {
    type Err = String;

    /// Parses the CLI spellings: `single`, `double`, `intermittent:N`,
    /// `stuck0`, `stuck1`, `burst:W`. The spellings round-trip through
    /// [`FaultModel`]'s `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let number = |name: &str, v: &str| -> Result<usize, String> {
            v.parse::<usize>()
                .map_err(|e| format!("{name} expects a number, got `{v}`: {e}"))
        };
        match s {
            "single" => Ok(FaultModel::SingleBit),
            "double" => Ok(FaultModel::AdjacentDoubleBit),
            "stuck0" => Ok(FaultModel::StuckAt { value: false }),
            "stuck1" => Ok(FaultModel::StuckAt { value: true }),
            _ => {
                if let Some(v) = s.strip_prefix("intermittent:") {
                    Ok(FaultModel::Intermittent {
                        reassert_iterations: number("intermittent:N", v)?,
                    })
                } else if let Some(v) = s.strip_prefix("burst:") {
                    let width = number("burst:W", v)?;
                    if width == 0 {
                        return Err("burst:W requires a width of at least 1".to_string());
                    }
                    Ok(FaultModel::Burst { width })
                } else {
                    Err(format!(
                        "unknown fault model `{s}` (expected single, double, \
                         intermittent:N, stuck0, stuck1 or burst:W)"
                    ))
                }
            }
        }
    }
}

/// The fault-free reference execution logged before a campaign
/// (GOOFI's fault injection phase starts with exactly this run).
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Controller output bit patterns, one per iteration.
    pub outputs: Vec<u32>,
    /// Plant speed trajectory (rpm), one sample per iteration.
    pub speeds: Vec<f64>,
    /// Total dynamic instructions executed.
    pub total_instructions: u64,
    /// Scan-chain state at the end of the run.
    pub end_scan: ScanSnapshot,
    /// The machine at the end of the run (for memory comparison).
    pub end_machine: Machine,
    /// Periodic snapshots of the whole loop (see [`Checkpoint`]); one per
    /// [`LoopConfig::checkpoint_stride`] iterations, starting at iteration
    /// 0. Empty when checkpointing is disabled.
    pub checkpoints: Vec<Checkpoint>,
    /// Per-unit access trace recorded while the run executed (see
    /// [`bera_tcpu::access`]): for every traceable state unit, the ordered
    /// dynamic-instruction indices of its reads and full-width writes.
    /// Drives the campaign planner's def/use fault-space pruning
    /// ([`crate::planner`]). Deterministic for a given workload and loop
    /// configuration, like everything else in the golden run.
    pub trace: AccessTrace,
    /// EDM-visibility trace recorded alongside the access trace (see
    /// [`bera_tcpu::vis`]): for every *untraceable* state unit, the
    /// ordered instants at which an asynchronous observer (pipeline
    /// fetch, branch-condition check, cache hit check, EDM sample)
    /// actually consulted or wholly redeposited it, plus operand-latch
    /// shift instants. Extends analytic classification and lockstep
    /// batching to the PC/PSR/tag/buffer fault population.
    pub vis: VisTrace,
    /// Process-unique token identifying this golden run to the per-worker
    /// machine arenas (DESIGN.md §8j). A worker's resident machine is only
    /// delta-restored when its token matches; otherwise the arena falls
    /// back to a full checkpoint clone. The supervisor's stride-0 retry
    /// golden keeps the token but has no checkpoints, so it never reaches
    /// the arena at all.
    pub arena_token: u64,
    /// For each pair of consecutive checkpoints, the dense data-memory
    /// word keys (see `Memory::data_diff_keys`) at which the two images
    /// differ: `ckpt_data_deltas[j]` covers `checkpoints[j]` →
    /// `checkpoints[j + 1]`. Lets the arena restore a machine across
    /// checkpoints by copying only words the golden run itself touched,
    /// and lets `drive_from`'s convergence check compare memory sparsely.
    pub ckpt_data_deltas: Vec<Vec<u32>>,
}

impl GoldenRun {
    /// The last checkpoint whose instruction count does not exceed
    /// `inject_at` — the state an experiment may legally resume from, since
    /// the fault-free prefix up to the injection point is bit-identical to
    /// the golden run.
    #[must_use]
    pub fn checkpoint_before(&self, inject_at: u64) -> Option<&Checkpoint> {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.machine.instr_count() <= inject_at)
    }

    /// Index of [`GoldenRun::checkpoint_before`]'s result within
    /// `checkpoints`, for arena bookkeeping.
    #[must_use]
    pub fn checkpoint_index_before(&self, inject_at: u64) -> Option<usize> {
        self.checkpoints
            .iter()
            .rposition(|c| c.machine.instr_count() <= inject_at)
    }

    /// Digest identifying this golden run across processes: outputs,
    /// speeds, instruction count and end-of-run machine state. Two golden
    /// runs of the same workload and loop configuration always agree
    /// (execution is deterministic); any difference in workload, iteration
    /// count, profiles or plant shows up here. The checkpoint stride is
    /// deliberately excluded — it does not perturb the run (proven by
    /// `tests/checkpoint_equivalence.rs`), so result stores written under
    /// one stride may be resumed under another.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = bera_tcpu::Fnv64::new();
        h.write_u32_slice(&self.outputs);
        for &s in &self.speeds {
            h.write_u64(s.to_bits());
        }
        h.write_u64(self.total_instructions);
        h.write_u64(self.end_machine.state_digest());
        h.finish()
    }
}

/// A snapshot of the whole closed loop at the start of one control
/// iteration: machine (input ports already loaded for that iteration),
/// plant, and a digest for cheap convergence filtering.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Iteration index `k`: when this state is live, the golden run has
    /// logged `outputs[..k]` and `speeds[..=k]`.
    pub iteration: usize,
    /// Machine state, with `set_ports` for iteration `k` already applied.
    pub machine: Machine,
    /// Plant state after `k` control intervals.
    pub engine: Engine,
    /// Combined machine + plant digest (see [`Machine::state_digest`]).
    pub digest: u64,
}

impl Checkpoint {
    fn capture(iteration: usize, machine: &Machine, engine: &Engine) -> Self {
        Checkpoint {
            iteration,
            machine: machine.clone(),
            engine: engine.clone(),
            digest: loop_digest(machine, engine),
        }
    }
}

/// Digest of the combined machine + plant state at an iteration boundary.
fn loop_digest(machine: &Machine, engine: &Engine) -> u64 {
    let mut h = bera_tcpu::Fnv64::new();
    h.write_u64(machine.state_digest());
    h.write_u64(engine.state_digest());
    h.finish()
}

/// How an [`ExperimentRecord`]'s classification was obtained. Provenance
/// metadata only: a record's semantic fields (outcome, deviations,
/// latency, outputs) are identical whichever path produced them — that is
/// the contract `tests/prune_equivalence.rs` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Provenance {
    /// The fault was injected into the simulator and the run executed.
    #[default]
    Simulated,
    /// Classified from the golden access trace alone (the first
    /// post-injection access to the faulted unit was a full-width write,
    /// or the unit was never accessed again); no faulty run was executed.
    Analytic,
    /// Copied from the simulated representative of this fault's def/use
    /// equivalence class (same unit, same first post-injection read), with
    /// the detection latency re-based to this fault's injection time.
    Replicated,
}

impl Provenance {
    /// Stable lower-case label (`simulated` / `analytic` / `replicated`)
    /// for telemetry and machine-readable artifacts.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Provenance::Simulated => "simulated",
            Provenance::Analytic => "analytic",
            Provenance::Replicated => "replicated",
        }
    }
}

/// The record of one completed experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The injected fault.
    pub fault: FaultSpec,
    /// Which part of the CPU the fault hit (table column).
    pub part: CpuPart,
    /// The concrete state element hit.
    pub location: BitLocation,
    /// Final classification.
    pub outcome: Outcome,
    /// Largest absolute output deviation (degrees) over the run; 0 when the
    /// run trapped before completing.
    pub max_deviation: f64,
    /// First iteration whose output deviated by more than the threshold
    /// (`None` when no iteration did).
    pub first_strong_iteration: Option<usize>,
    /// Instructions from injection to detection (`None` unless detected) —
    /// the error-detection latency.
    pub detection_latency: Option<u64>,
    /// Full output sequence (bit patterns); populated only in detail mode.
    pub outputs: Option<Vec<u32>>,
    /// Iteration at which convergence pruning ended the run early, the
    /// golden tail being provably identical (`None` when the run executed
    /// to its natural termination). Metadata only: the classification is
    /// unaffected by pruning.
    pub pruned_at: Option<usize>,
    /// How this classification was obtained: simulated directly, derived
    /// analytically from the golden access trace, or replicated from an
    /// equivalence-class representative. Metadata only (see
    /// [`Provenance`]).
    pub provenance: Provenance,
    /// Human-readable detail when `outcome` is
    /// [`Outcome::HarnessFailure`]: the caught panic payload or the
    /// watchdog deadline description. `None` for every target outcome.
    pub harness_error: Option<String>,
}

/// How a closed-loop drive ended.
enum DriveEnd {
    Completed,
    Trapped(bera_tcpu::edm::Trap),
    Hang,
    /// The faulty state provably rejoined the golden trajectory at the
    /// start of this iteration; the remaining iterations were not executed
    /// because they would replay the golden tail bit-for-bit.
    Converged {
        iteration: usize,
    },
    /// The wall-clock watchdog deadline expired at an iteration boundary —
    /// a harness abort, not a target outcome.
    DeadlineExceeded,
}

/// Applies a [`FaultModel`] to a running machine: the initial scan-chain
/// perturbation once the dynamic instruction count reaches the injection
/// point, plus any re-assertions at later iteration boundaries
/// (intermittent and stuck-at models).
struct FaultInjector {
    inject_at: u64,
    locations: Vec<BitLocation>,
    kind: InjectKind,
    injected: bool,
}

enum InjectKind {
    /// One-shot flip at injection (single-bit, double-bit, burst).
    Flip,
    /// Re-flip at the next `remaining` iteration boundaries after
    /// injection.
    Reassert { remaining: usize },
    /// Force the bit(s) to `value` at injection and at every iteration
    /// boundary after it.
    Stuck { value: bool },
}

impl FaultInjector {
    fn new(model: FaultModel, fault: FaultSpec) -> Self {
        let locations = model
            .locations(fault.location_index)
            .into_iter()
            .map(|i| scan::catalog()[i])
            .collect();
        let kind = match model {
            FaultModel::Intermittent {
                reassert_iterations,
            } => InjectKind::Reassert {
                remaining: reassert_iterations,
            },
            FaultModel::StuckAt { value } => InjectKind::Stuck { value },
            FaultModel::SingleBit | FaultModel::AdjacentDoubleBit | FaultModel::Burst { .. } => {
                InjectKind::Flip
            }
        };
        FaultInjector {
            inject_at: fault.inject_at,
            locations,
            kind,
            injected: false,
        }
    }

    /// An injector for a replica split off a lockstep batch: the flip was
    /// already deposited by [`bera_tcpu::BatchMachine::materialize`], so
    /// this injector starts quiescent — it never perturbs the machine, it
    /// only reports the fault as delivered (enabling convergence pruning
    /// from the first boundary, exactly as a scalar run of the same fault
    /// would be by its split instant).
    fn pre_injected(fault: FaultSpec) -> Self {
        FaultInjector {
            inject_at: fault.inject_at,
            locations: Vec::new(),
            kind: InjectKind::Flip,
            injected: true,
        }
    }

    /// Where the current `run_until` must stop: the injection point while
    /// the fault is pending, the hang cap afterwards.
    fn stop_at(&self, instr_cap: u64) -> u64 {
        if self.injected {
            instr_cap
        } else {
            self.inject_at.min(instr_cap)
        }
    }

    /// Delivers the initial perturbation.
    fn inject(&mut self, machine: &mut Machine) {
        match self.kind {
            InjectKind::Stuck { value } => {
                for &loc in &self.locations {
                    machine.scan_set(loc, value);
                }
            }
            InjectKind::Flip | InjectKind::Reassert { .. } => {
                for &loc in &self.locations {
                    machine.scan_flip(loc);
                }
            }
        }
        self.injected = true;
    }

    /// Called at every iteration boundary: re-asserts the fault if the
    /// model still has re-assertions pending. Keyed on the iteration index
    /// only, so the schedule is identical under from-reset replay and
    /// checkpoint fast-forward.
    fn at_boundary(&mut self, machine: &mut Machine) {
        if !self.injected {
            return;
        }
        match &mut self.kind {
            InjectKind::Flip => {}
            InjectKind::Reassert { remaining } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    for &loc in &self.locations {
                        machine.scan_flip(loc);
                    }
                }
            }
            InjectKind::Stuck { value } => {
                let value = *value;
                for &loc in &self.locations {
                    machine.scan_set(loc, value);
                }
            }
        }
    }

    /// `true` once the fault has been delivered in full and can never
    /// perturb the machine again — the precondition for convergence
    /// pruning. Stuck-at faults are never quiescent.
    fn quiescent(&self) -> bool {
        self.injected
            && match self.kind {
                InjectKind::Flip => true,
                InjectKind::Reassert { remaining } => remaining == 0,
                InjectKind::Stuck { .. } => false,
            }
    }
}

struct DriveResult {
    outputs: Vec<u32>,
    speeds: Vec<f64>,
    end: DriveEnd,
}

/// What [`drive_from`] does at checkpoint-stride iteration boundaries.
enum DriveMode<'a> {
    /// Plain closed-loop drive (checkpointing disabled).
    Plain,
    /// Golden run: capture a [`Checkpoint`] at every stride boundary.
    Capture(&'a mut Vec<Checkpoint>),
    /// Experiment: once the fault has been injected, test for convergence
    /// against the golden checkpoint of the same iteration and stop early
    /// on a proven match. `resident` is the index of the checkpoint the
    /// machine's dirty-word log was started from, so the convergence
    /// compare can walk only the words the experiment or the golden run
    /// touched since (see [`converged`]).
    Prune {
        golden: &'a GoldenRun,
        resident: usize,
    },
}

/// Worst-case dynamic instructions one control iteration may execute; used
/// to budget the golden run's hang cap before the true per-run instruction
/// count is known. The workloads execute a few hundred instructions per
/// iteration, so this is a generous bound.
const WORST_CASE_ITERATION_INSTRUCTIONS: u64 = 10_000;

/// Hang-detection instruction cap for a run expected to execute
/// `expected_instructions`: 100% headroom for fault-induced detours plus a
/// fixed allowance so very short runs are not capped too tightly. The
/// golden run and every experiment derive their caps from this one helper
/// (they previously used two different formulas, which made hang
/// classification depend on which path computed the cap).
#[must_use]
pub fn instruction_cap(expected_instructions: u64) -> u64 {
    expected_instructions * 2 + 20_000
}

fn set_ports(machine: &mut Machine, cfg: &LoopConfig, k: usize, engine: &Engine) {
    let t = k as f64 * cfg.sample_interval;
    machine.set_port_f32(PORT_R, cfg.profiles.reference(t) as f32);
    machine.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
}

/// Converts a (possibly corrupted) actuator word into the physical throttle
/// angle: the actuator hardware saturates at its mechanical limits and
/// rejects non-finite bit patterns at the lower stop.
fn actuate(u: f32) -> f64 {
    let u = f64::from(u);
    if u.is_finite() {
        u.clamp(0.0, 70.0)
    } else {
        0.0
    }
}

/// Proven convergence test at an iteration boundary: exact plant and
/// machine equality first, then the hang-cap guard. `true` means a
/// from-reset run of this experiment would finish by replaying the golden
/// tail bit-for-bit, so executing the tail is unnecessary.
///
/// Equality is checked directly rather than via the digest: comparing two
/// resident states is a short-circuiting memcmp (nanoseconds on the common
/// diverged path), while hashing the faulty state costs a full pass over
/// memory every checked boundary. The stored digest still identifies the
/// checkpoint across runs; here it only cross-checks a positive match.
///
/// When the machine carries a dirty-word log (the arena path), memory is
/// compared sparsely: outside `delta_keys` — the golden run's own writes
/// between the machine's resident checkpoint and `ckpt` — plus the
/// experiment's dirty set, both images provably still equal the resident
/// checkpoint, so only the union of the two key sets needs a look.
fn converged(
    machine: &Machine,
    engine: &Engine,
    ckpt: &Checkpoint,
    golden: &GoldenRun,
    instr_cap: u64,
    delta_keys: &[u32],
) -> bool {
    if *engine != ckpt.engine {
        return false;
    }
    let state_eq = match machine.state_equals_sparse(&ckpt.machine, delta_keys) {
        Some(eq) => {
            debug_assert_eq!(
                eq,
                machine.state_equals(&ckpt.machine),
                "sparse convergence equality must agree with the full walk"
            );
            eq
        }
        None => machine.state_equals(&ckpt.machine),
    };
    if !state_eq {
        return false;
    }
    debug_assert_eq!(
        loop_digest(machine, engine),
        ckpt.digest,
        "equal states must agree on the checkpoint digest"
    );
    // The golden tail from this checkpoint executes a known number of
    // further instructions. Prune only if the faulty run's counter stays
    // under the hang cap for the whole tail; otherwise keep executing so a
    // genuine from-reset Hang classification is reproduced exactly.
    let tail = golden.total_instructions - ckpt.machine.instr_count();
    machine.instr_count() + tail <= instr_cap
}

/// Drives the machine in closed loop from the state the caller prepared:
/// iteration index `k` with `set_ports(k)` already applied, `outputs`
/// holding the first `k` logged outputs and `speeds` the first `k + 1`
/// speed samples. `injector` perturbs scan-chain bits when the dynamic
/// instruction count reaches its injection point (and re-asserts at later
/// iteration boundaries for intermittent/stuck-at models); `instr_cap`
/// bounds the total instruction count to detect hangs; `deadline` is the
/// wall-clock watchdog, checked at iteration boundaries only so target
/// execution stays deterministic; `mode` selects the checkpoint behaviour
/// at stride boundaries. `on_inject` fires once, at the moment the initial
/// scan-chain perturbation lands (the observer's "fault injected" event).
#[allow(clippy::too_many_arguments)]
fn drive_from(
    machine: &mut Machine,
    cfg: &LoopConfig,
    mut engine: Engine,
    mut k: usize,
    mut outputs: Vec<u32>,
    mut speeds: Vec<f64>,
    mut injector: Option<FaultInjector>,
    instr_cap: u64,
    deadline: Option<Instant>,
    mut mode: DriveMode<'_>,
    on_inject: &mut dyn FnMut(),
) -> DriveResult {
    let stride = cfg.checkpoint_stride;
    // Accumulated golden data-memory write keys from the machine's resident
    // checkpoint up to the boundary under test, extended lazily from
    // `GoldenRun::ckpt_data_deltas` as the drive advances. Only the Prune
    // mode uses these (see `converged`). The same hot words repeat in
    // window after window, so a membership bitmap (lazily sized to the
    // data-word universe) keeps the key list duplicate-free: the sparse
    // convergence compare then walks each distinct word once and the list
    // stays bounded by the universe instead of growing per window.
    let mut golden_delta_keys: Vec<u32> = Vec::new();
    let mut delta_seen: Vec<u64> = Vec::new();
    let mut delta_cursor = match &mode {
        DriveMode::Prune { resident, .. } => *resident,
        _ => 0,
    };
    // Set when execution sits at the start of iteration `k` (function entry
    // and after every completed iteration); cleared once the boundary has
    // been processed so mid-iteration injection resumes don't repeat it.
    let mut at_boundary = true;
    while k < cfg.iterations {
        if at_boundary {
            at_boundary = false;
            // Re-assert the fault first so checkpoint capture/pruning below
            // observes the boundary state a from-reset run would have.
            if let Some(inj) = injector.as_mut() {
                inj.at_boundary(machine);
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return DriveResult {
                        outputs,
                        speeds,
                        end: DriveEnd::DeadlineExceeded,
                    };
                }
            }
            if stride > 0 && k.is_multiple_of(stride) {
                match &mut mode {
                    DriveMode::Plain => {}
                    DriveMode::Capture(into) => {
                        into.push(Checkpoint::capture(k, machine, &engine));
                    }
                    DriveMode::Prune { golden, .. } => {
                        // Convergence is only meaningful once the fault has
                        // been delivered in full: before injection the run
                        // *is* the golden run, and while re-assertions are
                        // pending the state can still diverge again.
                        if injector.as_ref().is_some_and(FaultInjector::quiescent) {
                            if let Some(ckpt) = golden.checkpoints.get(k / stride) {
                                if ckpt.iteration == k {
                                    while delta_cursor < k / stride {
                                        if let Some(w) = golden.ckpt_data_deltas.get(delta_cursor) {
                                            if delta_seen.is_empty() {
                                                delta_seen = vec![
                                                    0u64;
                                                    bera_tcpu::mem::NUM_DATA_WORDS
                                                        .div_ceil(64)
                                                ];
                                            }
                                            for &key in w {
                                                let slot = key as usize / 64;
                                                let bit = 1u64 << (key % 64);
                                                if delta_seen[slot] & bit == 0 {
                                                    delta_seen[slot] |= bit;
                                                    golden_delta_keys.push(key);
                                                }
                                            }
                                        }
                                        delta_cursor += 1;
                                    }
                                    if converged(
                                        machine,
                                        &engine,
                                        ckpt,
                                        golden,
                                        instr_cap,
                                        &golden_delta_keys,
                                    ) {
                                        return DriveResult {
                                            outputs,
                                            speeds,
                                            end: DriveEnd::Converged { iteration: k },
                                        };
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let stop = injector
            .as_ref()
            .map_or(instr_cap, |inj| inj.stop_at(instr_cap));
        match machine.run_until(stop) {
            RunExit::Yield => {
                // The harness observing the actuator port is a semantic
                // read of that port: record it in the access trace (a
                // no-op unless this machine is the tracing golden run).
                machine.trace_harness_port_read(PORT_U);
                let u = machine.port_out_f32(PORT_U);
                outputs.push(u.to_bits());
                let t = k as f64 * cfg.sample_interval;
                engine.advance(actuate(u), cfg.profiles.load(t), cfg.sample_interval);
                k += 1;
                if k < cfg.iterations {
                    speeds.push(engine.speed_rpm());
                    set_ports(machine, cfg, k, &engine);
                }
                at_boundary = true;
            }
            RunExit::Trap(trap) => {
                return DriveResult {
                    outputs,
                    speeds,
                    end: DriveEnd::Trapped(trap),
                };
            }
            RunExit::Budget => match injector.as_mut() {
                Some(inj) if !inj.injected && machine.instr_count() < instr_cap => {
                    inj.inject(machine);
                    on_inject();
                }
                _ => {
                    return DriveResult {
                        outputs,
                        speeds,
                        end: DriveEnd::Hang,
                    };
                }
            },
        }
    }
    DriveResult {
        outputs,
        speeds,
        end: DriveEnd::Completed,
    }
}

/// Executes the fault-free reference run and logs the golden state.
///
/// # Panics
///
/// Panics if the workload traps or hangs without any fault injected —
/// that would be a workload bug, not an experiment outcome.
#[must_use]
pub fn golden_run(workload: &Workload, cfg: &LoopConfig) -> GoldenRun {
    let mut machine = Machine::new();
    machine.load_program(workload.program());
    machine.set_cache_parity(cfg.parity_cache);
    machine.start_access_trace();
    machine.start_vis_trace();
    let engine = cfg.engine.clone();
    let speeds = vec![engine.speed_rpm()];
    set_ports(&mut machine, cfg, 0, &engine);
    let cap = instruction_cap(cfg.iterations as u64 * WORST_CASE_ITERATION_INSTRUCTIONS);
    let mut checkpoints = Vec::new();
    let mode = if cfg.checkpoint_stride > 0 {
        DriveMode::Capture(&mut checkpoints)
    } else {
        DriveMode::Plain
    };
    let result = drive_from(
        &mut machine,
        cfg,
        engine,
        0,
        Vec::with_capacity(cfg.iterations),
        speeds,
        None,
        cap,
        None,
        mode,
        &mut || {},
    );
    match result.end {
        DriveEnd::Completed => {}
        DriveEnd::Trapped(t) => panic!("golden run trapped: {t:?}"),
        DriveEnd::Hang => panic!("golden run exceeded the instruction cap"),
        DriveEnd::Converged { .. } => unreachable!("golden run never prunes"),
        DriveEnd::DeadlineExceeded => unreachable!("golden run has no deadline"),
    }
    let trace = machine
        .take_access_trace()
        .expect("the golden machine was tracing");
    let vis = machine
        .take_vis_trace()
        .expect("the golden machine was vis-tracing");
    let ckpt_data_deltas = checkpoints
        .windows(2)
        .map(|pair| {
            pair[0]
                .machine
                .memory()
                .data_diff_keys(pair[1].machine.memory())
        })
        .collect();
    GoldenRun {
        outputs: result.outputs,
        speeds: result.speeds,
        total_instructions: machine.instr_count(),
        end_scan: machine.scan_snapshot(),
        end_machine: machine,
        checkpoints,
        trace,
        vis,
        arena_token: NEXT_ARENA_TOKEN.fetch_add(1, Ordering::Relaxed),
        ckpt_data_deltas,
    }
}

/// Source of [`GoldenRun::arena_token`] values. Starts at 1 so 0 can act as
/// "no golden" in arena slots.
static NEXT_ARENA_TOKEN: AtomicU64 = AtomicU64::new(1);

/// A worker thread's reusable experiment machine (DESIGN.md §8j): the
/// machine left over from the thread's previous experiment, plus where it
/// was left. Checking out restores it to the next experiment's checkpoint
/// by copying only the words either run touched since the two states last
/// coincided, replacing the per-experiment deep clone with an O(touched)
/// delta restore.
struct ArenaSlot {
    machine: Machine,
    /// [`GoldenRun::arena_token`] of the run the machine belongs to.
    token: u64,
    /// Checkpoint index the machine's dirty-word log was started from.
    resident: usize,
}

thread_local! {
    static ARENA: RefCell<Option<ArenaSlot>> = const { RefCell::new(None) };
}

/// Checks a machine out of this worker's arena, positioned exactly at
/// `golden.checkpoints[ckpt_index]` with a fresh dirty-word log. Returns
/// the machine, the number of data words copied, and whether the arena
/// missed (full checkpoint clone). The slot is left empty while the
/// experiment runs: if classification panics, the machine unwinds with the
/// stack and the next checkout starts from a clean clone, so a poisoned
/// intermediate state can never leak into a later record.
fn arena_checkout(golden: &GoldenRun, ckpt_index: usize) -> (Machine, usize, bool) {
    let ckpt = &golden.checkpoints[ckpt_index];
    let slot = ARENA.with(|a| a.borrow_mut().take());
    match slot {
        Some(slot) if slot.token == golden.arena_token => {
            let mut machine = slot.machine;
            // The resident machine's memory differs from the target
            // checkpoint by its own dirty set (logged) plus whatever the
            // golden run wrote between the two checkpoints (precomputed).
            let lo = slot.resident.min(ckpt_index);
            let hi = slot.resident.max(ckpt_index);
            let copied =
                machine.restore_delta_from(&ckpt.machine, &golden.ckpt_data_deltas[lo..hi]);
            (machine, copied, false)
        }
        _ => {
            let mut machine = ckpt.machine.clone();
            machine.begin_dirty_log();
            (machine, 0, true)
        }
    }
}

/// Returns an experiment's machine to this worker's arena for the next
/// checkout, recording which checkpoint its dirty log is relative to.
fn arena_release(machine: Machine, golden: &GoldenRun, ckpt_index: usize) {
    ARENA.with(|a| {
        *a.borrow_mut() = Some(ArenaSlot {
            machine,
            token: golden.arena_token,
            resident: ckpt_index,
        });
    });
}

/// Runs one fault-injection experiment against a previously logged golden
/// run and classifies the outcome.
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[must_use]
pub fn run_experiment(
    workload: &Workload,
    cfg: &LoopConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    detail: bool,
) -> ExperimentRecord {
    run_experiment_with_model(workload, cfg, golden, fault, FaultModel::SingleBit, detail)
}

/// Like [`run_experiment`], with an explicit [`FaultModel`].
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[must_use]
pub fn run_experiment_with_model(
    workload: &Workload,
    cfg: &LoopConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    model: FaultModel,
    detail: bool,
) -> ExperimentRecord {
    run_experiment_observed(
        workload,
        cfg,
        golden,
        fault,
        model,
        detail,
        0,
        &NullObserver,
    )
}

/// Like [`run_experiment_with_model`], reporting each life-cycle stage
/// (started, injected, detected / spliced, classified) to `observer` as it
/// happens. `index` is the fault-list index carried on every event so
/// observers can correlate them; it does not affect execution.
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_experiment_observed(
    workload: &Workload,
    cfg: &LoopConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    model: FaultModel,
    detail: bool,
    index: usize,
    observer: &dyn CampaignObserver,
) -> ExperimentRecord {
    match run_experiment_watchdog(
        workload, cfg, golden, fault, model, detail, index, observer, None,
    ) {
        Ok(record) => record,
        Err(WatchdogExpired) => unreachable!("no deadline was set"),
    }
}

/// The wall-clock watchdog deadline expired before the experiment reached a
/// target outcome. The run is abandoned without classification (and without
/// an `experiment_classified` event) — the supervisor decides whether to
/// retry or quarantine.
#[derive(Debug)]
pub(crate) struct WatchdogExpired;

/// Like [`run_experiment_observed`], aborting with [`WatchdogExpired`] if
/// the wall-clock `deadline` passes before the run finishes. The deadline
/// is checked at iteration boundaries only, so target execution (and hence
/// every classified record) stays bit-deterministic regardless of host
/// timing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_experiment_watchdog(
    workload: &Workload,
    cfg: &LoopConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    model: FaultModel,
    detail: bool,
    index: usize,
    observer: &dyn CampaignObserver,
    deadline: Option<Instant>,
) -> Result<ExperimentRecord, WatchdogExpired> {
    let location = scan::catalog()[fault.location_index];
    let injector = FaultInjector::new(model, fault);
    let cap = instruction_cap(golden.total_instructions);

    // Fast-forward: resume from the nearest golden checkpoint at or before
    // the injection point instead of re-executing the fault-free prefix
    // (which is bit-identical to the golden run by determinism). The
    // checkpoint state comes out of this worker's machine arena — a delta
    // restore when the previous experiment ran against the same golden, a
    // full clone otherwise. With checkpointing disabled this falls back to
    // a from-reset run that never touches the arena.
    let ckpt_index = golden.checkpoint_index_before(fault.inject_at);
    let (mut machine, engine, start_k, prefix_outputs, prefix_speeds) = match ckpt_index {
        Some(ci) => {
            let ckpt = &golden.checkpoints[ci];
            let (machine, copied, full_clone) = arena_checkout(golden, ci);
            observer.arena_restored(copied, full_clone);
            // Size the logs for the whole drive up front so the per-
            // iteration pushes never reallocate.
            let mut prefix_outputs = Vec::with_capacity(cfg.iterations);
            prefix_outputs.extend_from_slice(&golden.outputs[..ckpt.iteration]);
            let mut prefix_speeds = Vec::with_capacity(cfg.iterations + 1);
            prefix_speeds.extend_from_slice(&golden.speeds[..=ckpt.iteration]);
            (
                machine,
                ckpt.engine.clone(),
                ckpt.iteration,
                prefix_outputs,
                prefix_speeds,
            )
        }
        None => {
            let mut machine = Machine::new();
            machine.load_program(workload.program());
            machine.set_cache_parity(cfg.parity_cache);
            let engine = cfg.engine.clone();
            let speeds = vec![engine.speed_rpm()];
            set_ports(&mut machine, cfg, 0, &engine);
            (
                machine,
                engine,
                0,
                Vec::with_capacity(cfg.iterations),
                speeds,
            )
        }
    };
    if !cfg.fast_replay {
        machine.set_fast_replay(false);
    }
    observer.experiment_started(
        index,
        fault,
        ckpt_index.map(|ci| golden.checkpoints[ci].iteration),
    );
    let start_instructions = machine.instr_count();
    let start_block_instructions = machine.block_instructions();
    let result = drive_from(
        &mut machine,
        cfg,
        engine,
        start_k,
        prefix_outputs,
        prefix_speeds,
        Some(injector),
        cap,
        deadline,
        DriveMode::Prune {
            golden,
            resident: ckpt_index.unwrap_or(0),
        },
        &mut || observer.fault_injected(index, fault),
    );
    observer.experiment_executed(
        index,
        machine.instr_count().saturating_sub(start_instructions),
        machine
            .block_instructions()
            .saturating_sub(start_block_instructions),
    );
    let record = classify_drive(
        result, &machine, golden, fault, location, detail, index, observer,
    );
    if let Some(ci) = ckpt_index {
        arena_release(machine, golden, ci);
    }
    record
}

/// Classifies a finished drive into the final [`ExperimentRecord`] and
/// fires the detection / splice / classified observer events. Shared by
/// the scalar experiment path and the lockstep split-off path so both
/// produce records through the identical code.
#[allow(clippy::too_many_arguments)]
fn classify_drive(
    result: DriveResult,
    machine: &Machine,
    golden: &GoldenRun,
    fault: FaultSpec,
    location: BitLocation,
    detail: bool,
    index: usize,
    observer: &dyn CampaignObserver,
) -> Result<ExperimentRecord, WatchdogExpired> {
    let classifier = Classifier::paper();
    let DriveResult {
        mut outputs, end, ..
    } = result;
    let mut detection_latency = None;
    let mut pruned_at = None;
    let (outcome, max_deviation, first_strong) = match end {
        DriveEnd::DeadlineExceeded => return Err(WatchdogExpired),
        DriveEnd::Trapped(trap) => {
            let latency = trap.at_instruction.saturating_sub(fault.inject_at);
            observer.error_detected(index, trap.mechanism, latency);
            detection_latency = Some(latency);
            (Outcome::Detected(trap.mechanism), 0.0, None)
        }
        DriveEnd::Hang => (Outcome::Hang, 0.0, None),
        DriveEnd::Completed => {
            let (max_dev, first) = deviation_stats(&golden.outputs, &outputs, classifier.threshold);
            match classifier.classify_bits(&golden.outputs, &outputs) {
                Some(severity) => (Outcome::ValueFailure(severity), max_dev, first),
                None => {
                    // Outputs identical: latent iff any machine or memory
                    // state differs from the golden end state.
                    let scan_differs = machine.scan_snapshot().diff_count(&golden.end_scan) != 0;
                    let mem_differs = !machine.memory().data_equals(golden.end_machine.memory());
                    if scan_differs || mem_differs {
                        (Outcome::Latent, 0.0, None)
                    } else {
                        (Outcome::Overwritten, 0.0, None)
                    }
                }
            }
        }
        DriveEnd::Converged { iteration } => {
            // The run provably rejoined the golden trajectory at this
            // boundary: splice the golden tail in place of executing it.
            // The spliced sequence equals what a from-reset run would have
            // produced, so the value-failure classification is unchanged.
            observer.convergence_spliced(index, iteration);
            pruned_at = Some(iteration);
            outputs.extend_from_slice(&golden.outputs[iteration..]);
            let (max_dev, first) = deviation_stats(&golden.outputs, &outputs, classifier.threshold);
            match classifier.classify_bits(&golden.outputs, &outputs) {
                Some(severity) => (Outcome::ValueFailure(severity), max_dev, first),
                // Convergence proved the machine and plant equal to the
                // golden checkpoint, so the run would end in exactly the
                // golden end state: no latent damage is possible.
                None => (Outcome::Overwritten, 0.0, None),
            }
        }
    };

    let record = ExperimentRecord {
        fault,
        part: location.part(),
        location,
        outcome,
        max_deviation,
        first_strong_iteration: first_strong,
        detection_latency,
        outputs: detail.then_some(outputs),
        pruned_at,
        provenance: Provenance::Simulated,
        harness_error: None,
    };
    observer.experiment_classified(index, &record);
    Ok(record)
}

/// Runs the divergent tail of a replica split off a lockstep batch (see
/// [`bera_tcpu::BatchMachine`]): materializes the replica's exact state at
/// the last golden checkpoint at or before its split instant — golden
/// state plus the surviving `flips` — and drives the ordinary
/// inject–run–classify pipeline from there with a pre-injected
/// [`FaultInjector`]. The lockstep prefix between injection and that
/// checkpoint is never executed; by the batch engine's invariant (no delta
/// unit accessed in that window) the materialized state is bit-identical
/// to what the scalar path would have computed, so the record is too.
///
/// Returns `None` when there is no checkpoint inside `[inject_at,
/// split_at]` to materialize from — the split saves nothing over the
/// scalar path then, and the caller falls back to it.
///
/// # Panics
///
/// Panics if `fault.location_index` is outside the scan catalog.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_split_experiment(
    cfg: &LoopConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    flips: &[BitLocation],
    split_at: u64,
    detail: bool,
    index: usize,
    observer: &dyn CampaignObserver,
) -> Option<ExperimentRecord> {
    let location = scan::catalog()[fault.location_index];
    let cap = instruction_cap(golden.total_instructions);
    let ci = golden.checkpoint_index_before(split_at)?;
    let ckpt = &golden.checkpoints[ci];
    if ckpt.machine.instr_count() < fault.inject_at {
        // The nearest checkpoint predates the injection: flips deposited
        // there would amount to injecting early. No prefix is skipped by
        // splitting here anyway, so let the scalar path run it.
        return None;
    }
    let (mut machine, copied, full_clone) = arena_checkout(golden, ci);
    observer.arena_restored(copied, full_clone);
    if !cfg.fast_replay {
        machine.set_fast_replay(false);
    }
    for &bit in flips {
        machine.scan_flip(bit);
    }
    let injector = FaultInjector::pre_injected(fault);
    observer.experiment_started(index, fault, Some(ckpt.iteration));
    observer.fault_injected(index, fault);
    let start_instructions = machine.instr_count();
    let start_block_instructions = machine.block_instructions();
    let mut prefix_outputs = Vec::with_capacity(cfg.iterations);
    prefix_outputs.extend_from_slice(&golden.outputs[..ckpt.iteration]);
    let mut prefix_speeds = Vec::with_capacity(cfg.iterations + 1);
    prefix_speeds.extend_from_slice(&golden.speeds[..=ckpt.iteration]);
    let result = drive_from(
        &mut machine,
        cfg,
        ckpt.engine.clone(),
        ckpt.iteration,
        prefix_outputs,
        prefix_speeds,
        Some(injector),
        cap,
        None,
        DriveMode::Prune {
            golden,
            resident: ci,
        },
        &mut || {},
    );
    observer.experiment_executed(
        index,
        machine.instr_count().saturating_sub(start_instructions),
        machine
            .block_instructions()
            .saturating_sub(start_block_instructions),
    );
    let record = match classify_drive(
        result, &machine, golden, fault, location, detail, index, observer,
    ) {
        Ok(record) => Some(record),
        Err(WatchdogExpired) => unreachable!("no deadline was set"),
    };
    arena_release(machine, golden, ci);
    record
}

fn deviation_stats(golden: &[u32], observed: &[u32], threshold: f64) -> (f64, Option<usize>) {
    let mut max_dev = 0.0f64;
    let mut first = None;
    for (k, (&g, &o)) in golden.iter().zip(observed.iter()).enumerate() {
        let gv = f64::from(f32::from_bits(g));
        let ov = f64::from(f32::from_bits(o));
        let d = if ov.is_finite() {
            (gv - ov).abs()
        } else {
            f64::INFINITY
        };
        if d > max_dev {
            max_dev = d;
        }
        if first.is_none() && d > threshold {
            first = Some(k);
        }
    }
    (max_dev, first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Severity;
    use bera_tcpu::scan::catalog;

    fn find_location(pred: impl Fn(&BitLocation) -> bool) -> usize {
        catalog().iter().position(pred).expect("location exists")
    }

    #[test]
    fn golden_run_completes_and_is_deterministic() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(50);
        let a = golden_run(&w, &cfg);
        let b = golden_run(&w, &cfg);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.total_instructions, b.total_instructions);
        assert_eq!(a.outputs.len(), 50);
        assert_eq!(a.end_scan.diff_count(&b.end_scan), 0);
    }

    #[test]
    fn unused_save_register_fault_is_latent() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(30);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::Save { index: 1, bit: 7 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 2,
            },
            false,
        );
        assert_eq!(rec.outcome, Outcome::Latent);
    }

    #[test]
    fn x_sign_flip_is_a_value_failure() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(100);
        let golden = golden_run(&w, &cfg);
        // x sits at bytes 0..4 of cache line 0; bit 31 is its sign.
        let loc = find_location(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 31 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 2,
            },
            true,
        );
        assert!(
            rec.outcome.is_value_failure(),
            "sign flip of cached x must corrupt the output: {:?}",
            rec.outcome
        );
        assert!(rec.max_deviation > 0.1);
        assert!(rec.outputs.is_some(), "detail mode records outputs");
    }

    #[test]
    fn x_high_exponent_flip_is_severe_under_algorithm_one() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(200);
        let golden = golden_run(&w, &cfg);
        // Bit 29 of the f32 x: a high exponent bit; mid-range value ~20
        // becomes astronomically large -> throttle pinned at 70.
        let loc = find_location(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 29 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 2,
            },
            false,
        );
        match rec.outcome {
            Outcome::ValueFailure(s) => assert!(s.is_severe(), "got {s}"),
            other => panic!("expected a severe value failure, got {other:?}"),
        }
    }

    #[test]
    fn same_fault_is_recovered_by_algorithm_two() {
        let w = Workload::algorithm_two();
        let cfg = LoopConfig::short(200);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 29 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 2,
            },
            false,
        );
        assert!(
            !matches!(rec.outcome, Outcome::ValueFailure(Severity::Permanent)),
            "Algorithm II must prevent permanent failures from huge x: {:?}",
            rec.outcome
        );
        // The assertion catches the corrupted state, so at worst a minor
        // failure remains.
        if let Outcome::ValueFailure(s) = rec.outcome {
            assert!(!s.is_severe(), "recovered fault must be minor, got {s}");
        }
    }

    #[test]
    fn pc_corruption_is_detected() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(30);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::Pc { bit: 20 }));
        let rec = run_experiment(
            &w,
            &cfg,
            &golden,
            FaultSpec {
                location_index: loc,
                inject_at: golden.total_instructions / 3,
            },
            false,
        );
        assert!(
            matches!(rec.outcome, Outcome::Detected(_)),
            "PC high-bit flip must be detected, got {:?}",
            rec.outcome
        );
    }

    #[test]
    fn injection_at_time_zero_and_near_end_work() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(20);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::Reg { index: 9, bit: 0 }));
        for at in [0, golden.total_instructions - 1] {
            let rec = run_experiment(
                &w,
                &cfg,
                &golden,
                FaultSpec {
                    location_index: loc,
                    inject_at: at,
                },
                false,
            );
            // Any classification is fine; the run must just terminate.
            let _ = rec.outcome;
        }
    }

    #[test]
    fn experiments_are_reproducible() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(60);
        let golden = golden_run(&w, &cfg);
        let loc = find_location(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 24 }));
        let f = FaultSpec {
            location_index: loc,
            inject_at: golden.total_instructions / 4,
        };
        let a = run_experiment(&w, &cfg, &golden, f, false);
        let b = run_experiment(&w, &cfg, &golden, f, false);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.max_deviation, b.max_deviation);
    }
}

#[cfg(test)]
mod fault_model_tests {
    use super::*;
    use crate::workload::Workload;
    use bera_tcpu::scan;

    #[test]
    fn single_bit_model_flips_one_location() {
        assert_eq!(FaultModel::SingleBit.locations(5), vec![5]);
    }

    #[test]
    fn double_bit_model_flips_adjacent_locations() {
        assert_eq!(FaultModel::AdjacentDoubleBit.locations(5), vec![5, 6]);
        // Wraps at the end of the catalog.
        let n = scan::catalog().len();
        assert_eq!(
            FaultModel::AdjacentDoubleBit.locations(n - 1),
            vec![n - 1, 0]
        );
    }

    #[test]
    fn double_bit_experiments_run_and_classify() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(40);
        let golden = golden_run(&w, &cfg);
        for loc in [0usize, 100, 700, 1500] {
            let rec = run_experiment_with_model(
                &w,
                &cfg,
                &golden,
                FaultSpec {
                    location_index: loc,
                    inject_at: golden.total_instructions / 2,
                },
                FaultModel::AdjacentDoubleBit,
                false,
            );
            let _ = rec.outcome; // must terminate with a classification
        }
    }
}
