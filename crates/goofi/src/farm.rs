//! Sharded multi-process campaign farm (DESIGN.md § 8i).
//!
//! A *farm* runs one campaign across many worker **processes**: a
//! coordinator splits the fault list into contiguous shards and publishes
//! a manifest in a farm directory; workers claim shards through
//! lease-based atomic claims (create-exclusive lease files refreshed by a
//! heartbeat), stream each shard into its own checksummed JSONL segment
//! using the ordinary [`crate::store`] machinery, and mark it done; a
//! merge step folds the completed segments into one canonical store that
//! is byte-identical to a single-process run of the same configuration.
//!
//! The single-process campaign plane already survives thread death (the
//! supervisor) and process death (the durable store + `--resume`); the
//! farm extends the same guarantee to a *fleet*: any worker may be
//! SIGKILLed at any instant. Its lease then expires, another worker (or
//! the coordinator's tend loop) reclaims the shard, torn-tail-recovers
//! the partial segment exactly as `--resume` would, and re-runs only the
//! missing faults. Byte-identity of the merged result rests on
//! [`crate::campaign::PreparedCampaign::run_shard`]: every worker
//! recomputes the identical global plan from the manifest's
//! configuration, so a record is the same bytes (outcome, deviation,
//! *and* provenance) no matter which process produced it.
//!
//! Single ownership is enforced by the lease protocol: a claim is an
//! `O_CREAT|O_EXCL` lease-file creation (atomic on every filesystem we
//! target), ownership is kept alive by rewriting the lease every
//! heartbeat interval (refreshing its mtime), and a lease whose mtime is
//! older than the expiry is taken over by an atomic rename-aside — the
//! previous owner's next heartbeat then fails with `NotFound`, which
//! fences its store appends. The expiry must be comfortably larger than
//! the heartbeat (enforced ≥ 2×) so a live-but-slow worker is not
//! usurped.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use serde::{Deserialize, Serialize};

use crate::campaign::{prepare_campaign, CampaignConfig};
use crate::experiment::{ExperimentRecord, FaultModel, LoopConfig};
use crate::observer::{CampaignObserver, ObserverSet, Telemetry, TelemetrySnapshot};
use crate::store::{
    headerless_remnant, load_store, telemetry_sidecar_path, write_telemetry_sidecar, JsonlStore,
    LoadedCampaign, StoreError, StoreHeader,
};
use crate::workload::Workload;

/// First line of `manifest.json`; distinguishes a farm directory from any
/// other directory full of JSON.
pub const FARM_MAGIC: &str = "bera-campaign-farm";

/// Manifest format version; bumped on incompatible layout changes.
pub const FARM_VERSION: u32 = 1;

/// Lease timing: how often owners prove liveness and how stale a lease
/// must be before it is declared abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeasePolicy {
    /// Interval between lease refreshes by the owning worker.
    pub heartbeat_ms: u64,
    /// Lease age (since last refresh) after which the owner is presumed
    /// dead and the shard may be reclaimed. Must be at least twice the
    /// heartbeat so one delayed refresh cannot cost a live worker its
    /// shard.
    pub expiry_ms: u64,
    /// Initial back-off after a contested claim sweep found nothing to
    /// run.
    pub backoff_base_ms: u64,
    /// Back-off ceiling (exponential doubling stops here).
    pub backoff_max_ms: u64,
}

impl Default for LeasePolicy {
    fn default() -> Self {
        LeasePolicy {
            heartbeat_ms: 1000,
            expiry_ms: 10_000,
            backoff_base_ms: 50,
            backoff_max_ms: 2000,
        }
    }
}

impl LeasePolicy {
    /// Checks the internal consistency of the policy.
    ///
    /// # Errors
    ///
    /// [`FarmError::Manifest`] when the heartbeat is zero or the expiry is
    /// under twice the heartbeat.
    pub fn validate(&self) -> Result<(), FarmError> {
        if self.heartbeat_ms == 0 {
            return Err(FarmError::Manifest(
                "lease heartbeat must be non-zero".to_string(),
            ));
        }
        if self.expiry_ms < 2 * self.heartbeat_ms {
            return Err(FarmError::Manifest(format!(
                "lease expiry ({} ms) must be at least twice the heartbeat ({} ms)",
                self.expiry_ms, self.heartbeat_ms
            )));
        }
        Ok(())
    }
}

/// One shard: the contiguous fault-index range `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Shard number (also the segment/lease file number).
    pub index: usize,
    /// First fault index owned by this shard.
    pub start: usize,
    /// One past the last fault index owned by this shard.
    pub end: usize,
}

impl ShardSpec {
    /// Number of faults in the shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for a degenerate empty shard (never produced by
    /// [`init_farm`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `index` belongs to this shard.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        self.start <= index && index < self.end
    }
}

/// The farm's identity document, published once by the coordinator at
/// init and read-only thereafter. It carries everything a worker needs to
/// reconstruct the exact campaign (so every worker computes the same
/// plan, the same fault list, the same records) plus the precomputed
/// store header each segment must match field-by-field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarmManifest {
    /// Always [`FARM_MAGIC`].
    pub magic: String,
    /// Always [`FARM_VERSION`] for directories this build writes.
    pub version: u32,
    /// CLI workload key (`alg1` … `alg3`); see [`Workload::by_key`].
    pub workload_key: String,
    /// Campaign size.
    pub faults: usize,
    /// Fault-list RNG seed.
    pub seed: u64,
    /// Closed-loop iterations per experiment.
    pub iterations: usize,
    /// Whether the data cache runs parity-protected.
    pub parity_cache: bool,
    /// Golden checkpoint stride.
    pub checkpoint_stride: usize,
    /// The campaign's fault model.
    pub fault_model: FaultModel,
    /// Def/use pruning enabled.
    pub prune: bool,
    /// EDM-visibility analytic layer enabled.
    pub vis: bool,
    /// Lockstep batch width.
    pub batch_width: usize,
    /// Lease timing for this farm.
    pub lease: LeasePolicy,
    /// The store header every segment (and the merged store) must carry.
    pub header: StoreHeader,
    /// The shard partition, in index order, covering `0..faults` exactly.
    pub shards: Vec<ShardSpec>,
}

impl FarmManifest {
    /// Reconstructs the campaign configuration the manifest describes.
    /// `threads` is a per-worker execution knob (not part of the campaign
    /// identity), so the caller chooses it.
    #[must_use]
    pub fn campaign_config(&self, threads: usize) -> CampaignConfig {
        let mut cfg = CampaignConfig::paper(self.faults, self.seed);
        cfg.loop_cfg = LoopConfig {
            iterations: self.iterations,
            parity_cache: self.parity_cache,
            checkpoint_stride: self.checkpoint_stride,
            ..LoopConfig::paper()
        };
        cfg.threads = threads;
        cfg.fault_model = self.fault_model;
        cfg.prune = self.prune;
        cfg.vis = self.vis;
        cfg.batch_width = self.batch_width;
        cfg
    }

    /// Resolves the manifest's workload.
    ///
    /// # Errors
    ///
    /// [`FarmError::Manifest`] when the key is not one this build knows.
    pub fn workload(&self) -> Result<Workload, FarmError> {
        Workload::by_key(&self.workload_key).ok_or_else(|| {
            FarmError::Manifest(format!("unknown workload key `{}`", self.workload_key))
        })
    }

    /// The shard owning fault index `i`, if any.
    #[must_use]
    pub fn shard_of(&self, i: usize) -> Option<&ShardSpec> {
        self.shards.iter().find(|s| s.contains(i))
    }
}

/// Errors from farm operations.
#[derive(Debug)]
pub enum FarmError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// A segment or merged store failed to load or validate.
    Store(StoreError),
    /// The manifest is missing, malformed, or internally inconsistent.
    Manifest(String),
    /// A shard-level problem (torn done segment, bad lease, …).
    Shard {
        /// The shard in question.
        shard: usize,
        /// What went wrong.
        message: String,
    },
    /// Two segments both carry a record for the same fault index.
    DuplicateIndex {
        /// The doubly-recorded fault index.
        index: usize,
        /// Shard whose segment recorded it first (scan order).
        first_shard: usize,
        /// Shard whose segment recorded it again.
        second_shard: usize,
    },
    /// A segment carries a record outside its shard's range.
    ForeignIndex {
        /// The out-of-range fault index.
        index: usize,
        /// Shard whose segment carries it.
        shard: usize,
        /// Shard that actually owns the index.
        owner: usize,
    },
    /// A completed-farm operation (merge) found unfinished work.
    Incomplete {
        /// Shards with no done marker.
        missing_shards: usize,
        /// Fault indices with no record across all segments.
        missing_records: usize,
    },
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Io(e) => write!(f, "farm I/O error: {e}"),
            FarmError::Store(e) => write!(f, "{e}"),
            FarmError::Manifest(m) => write!(f, "farm manifest error: {m}"),
            FarmError::Shard { shard, message } => write!(f, "farm shard {shard}: {message}"),
            FarmError::DuplicateIndex {
                index,
                first_shard,
                second_shard,
            } => write!(
                f,
                "fault index {index} is recorded by both shard {first_shard} and \
                 shard {second_shard} (refusing to merge ambiguous segments)"
            ),
            FarmError::ForeignIndex {
                index,
                shard,
                owner,
            } => write!(
                f,
                "shard {shard}'s segment carries fault index {index}, which \
                 belongs to shard {owner} (refusing a segment that crossed its range)"
            ),
            FarmError::Incomplete {
                missing_shards,
                missing_records,
            } => write!(
                f,
                "farm incomplete: {missing_shards} shard(s) unfinished, \
                 {missing_records} record(s) missing (run more workers, then merge)"
            ),
        }
    }
}

impl std::error::Error for FarmError {}

impl From<std::io::Error> for FarmError {
    fn from(e: std::io::Error) -> Self {
        FarmError::Io(e)
    }
}

impl From<StoreError> for FarmError {
    fn from(e: StoreError) -> Self {
        FarmError::Store(e)
    }
}

/// Path of the farm manifest inside `root`.
#[must_use]
pub fn manifest_path(root: &Path) -> PathBuf {
    root.join("manifest.json")
}

/// Path of shard `index`'s segment store inside `root`.
#[must_use]
pub fn segment_path(root: &Path, index: usize) -> PathBuf {
    root.join("shards")
        .join(format!("shard-{index:04}.segment.jsonl"))
}

/// Path of shard `index`'s lease file inside `root`.
#[must_use]
pub fn lease_path(root: &Path, index: usize) -> PathBuf {
    root.join("shards").join(format!("shard-{index:04}.lease"))
}

/// Path of shard `index`'s done marker inside `root`.
#[must_use]
pub fn done_path(root: &Path, index: usize) -> PathBuf {
    root.join("shards").join(format!("shard-{index:04}.done"))
}

/// Path of the canonical merged store inside `root`.
#[must_use]
pub fn merged_path(root: &Path) -> PathBuf {
    root.join("merged.jsonl")
}

/// Is this directory a farm? (Cheap check: the manifest file exists.)
#[must_use]
pub fn is_farm_dir(path: &Path) -> bool {
    path.is_dir() && manifest_path(path).is_file()
}

/// Initializes a farm directory: runs the campaign's set-up phase once to
/// compute the store header (golden run + fault-list identity), splits
/// `0..cfg.faults` into `shard_count` contiguous shards (clamped to the
/// fault count), and atomically publishes `manifest.json`.
///
/// # Errors
///
/// [`FarmError::Manifest`] when the directory already holds a farm, the
/// configuration is degenerate, or the lease policy is inconsistent;
/// [`FarmError::Io`] on filesystem failure.
pub fn init_farm(
    root: &Path,
    workload_key: &str,
    cfg: &CampaignConfig,
    shard_count: usize,
    lease: LeasePolicy,
) -> Result<FarmManifest, FarmError> {
    lease.validate()?;
    if cfg.faults == 0 {
        return Err(FarmError::Manifest(
            "a farm needs at least one fault".to_string(),
        ));
    }
    if shard_count == 0 {
        return Err(FarmError::Manifest(
            "a farm needs at least one shard".to_string(),
        ));
    }
    let workload = Workload::by_key(workload_key)
        .ok_or_else(|| FarmError::Manifest(format!("unknown workload key `{workload_key}`")))?;
    if manifest_path(root).exists() {
        return Err(FarmError::Manifest(format!(
            "{} already holds a farm manifest (refusing to re-initialize)",
            root.display()
        )));
    }

    let prepared = prepare_campaign(&workload, cfg);
    let header = StoreHeader::new(workload.name(), cfg, prepared.golden());

    // Even contiguous split; the first `faults % n` shards take the
    // remainder. Empty shards are never produced.
    let n = shard_count.min(cfg.faults);
    let base = cfg.faults / n;
    let extra = cfg.faults % n;
    let mut shards = Vec::with_capacity(n);
    let mut start = 0;
    for index in 0..n {
        let len = base + usize::from(index < extra);
        shards.push(ShardSpec {
            index,
            start,
            end: start + len,
        });
        start += len;
    }

    let manifest = FarmManifest {
        magic: FARM_MAGIC.to_string(),
        version: FARM_VERSION,
        workload_key: workload_key.to_string(),
        faults: cfg.faults,
        seed: cfg.seed,
        iterations: cfg.loop_cfg.iterations,
        parity_cache: cfg.loop_cfg.parity_cache,
        checkpoint_stride: cfg.loop_cfg.checkpoint_stride,
        fault_model: cfg.fault_model,
        prune: cfg.prune,
        vis: cfg.vis,
        batch_width: cfg.batch_width,
        lease,
        header,
        shards,
    };

    fs::create_dir_all(root.join("shards"))?;
    // Atomic publish: a crash mid-write can never leave a half manifest
    // that a worker might half-trust.
    let tmp = root.join("manifest.json.tmp");
    let json = serde_json::to_string_pretty(&manifest)
        .map_err(|e| FarmError::Manifest(format!("manifest does not serialize: {e}")))?;
    let mut file = File::create(&tmp)?;
    file.write_all(json.as_bytes())?;
    file.write_all(b"\n")?;
    file.sync_all()?;
    fs::rename(&tmp, manifest_path(root))?;
    Ok(manifest)
}

/// Reads and validates `root`'s manifest.
///
/// # Errors
///
/// [`FarmError::Manifest`] on a missing/unparsable/foreign manifest or an
/// inconsistent shard partition.
pub fn read_manifest(root: &Path) -> Result<FarmManifest, FarmError> {
    let path = manifest_path(root);
    let text = fs::read_to_string(&path)
        .map_err(|e| FarmError::Manifest(format!("cannot read {}: {e}", path.display())))?;
    let manifest: FarmManifest = serde_json::from_str(&text)
        .map_err(|e| FarmError::Manifest(format!("{} does not parse: {e}", path.display())))?;
    if manifest.magic != FARM_MAGIC {
        return Err(FarmError::Manifest(format!(
            "{} is not a campaign farm (magic `{}`)",
            path.display(),
            manifest.magic
        )));
    }
    if manifest.version != FARM_VERSION {
        return Err(FarmError::Manifest(format!(
            "farm version {} unsupported (this build writes {FARM_VERSION})",
            manifest.version
        )));
    }
    manifest.lease.validate()?;
    // The partition must tile 0..faults exactly, in order.
    let mut expect = 0;
    for (i, s) in manifest.shards.iter().enumerate() {
        if s.index != i || s.start != expect || s.end <= s.start || s.end > manifest.faults {
            return Err(FarmError::Manifest(format!(
                "shard table is not a contiguous partition at shard {i} ({}..{})",
                s.start, s.end
            )));
        }
        expect = s.end;
    }
    if expect != manifest.faults {
        return Err(FarmError::Manifest(format!(
            "shard table covers {expect} faults but the campaign has {}",
            manifest.faults
        )));
    }
    Ok(manifest)
}

/// Lease-file payload. The mtime, not this content, carries liveness; the
/// content only names the owner for status displays and post-mortems.
#[derive(Debug, Serialize, Deserialize)]
struct LeaseBody {
    worker: String,
    beats: u64,
}

/// Attempts the create-exclusive claim of shard `index`.
///
/// Returns `Ok(true)` when the lease is ours, `Ok(false)` when someone
/// else holds it.
///
/// # Errors
///
/// Filesystem errors other than "already exists".
fn try_claim(root: &Path, index: usize, worker: &str) -> Result<bool, FarmError> {
    let path = lease_path(root, index);
    let file = match OpenOptions::new().write(true).create_new(true).open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => return Ok(false),
        Err(e) => return Err(e.into()),
    };
    let body = LeaseBody {
        worker: worker.to_string(),
        beats: 0,
    };
    let mut file = file;
    file.write_all(
        serde_json::to_string(&body)
            .expect("lease serializes")
            .as_bytes(),
    )?;
    file.sync_all()?;
    crate::fp!("farm.lease.claim");
    Ok(true)
}

/// Refreshes an owned lease: rewrites its content, updating the mtime.
///
/// # Errors
///
/// `NotFound` (the lease was reclaimed out from under us — ownership is
/// lost) or any other filesystem error.
fn refresh_lease(root: &Path, index: usize, worker: &str, beats: u64) -> Result<(), FarmError> {
    crate::fp!("farm.lease.heartbeat");
    let path = lease_path(root, index);
    // No `create`: if the reclaim rename already took the file away, this
    // open fails with NotFound instead of resurrecting a dead lease.
    let mut file = OpenOptions::new().write(true).truncate(true).open(&path)?;
    let body = LeaseBody {
        worker: worker.to_string(),
        beats,
    };
    file.write_all(
        serde_json::to_string(&body)
            .expect("lease serializes")
            .as_bytes(),
    )?;
    file.flush()?;
    Ok(())
}

/// Age of the lease file (time since last refresh), if it exists.
fn lease_age(root: &Path, index: usize) -> Option<(LeaseBody, Duration)> {
    let path = lease_path(root, index);
    let meta = fs::metadata(&path).ok()?;
    let mtime = meta.modified().ok()?;
    let age = SystemTime::now()
        .duration_since(mtime)
        .unwrap_or(Duration::ZERO);
    let body = fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok())
        .unwrap_or(LeaseBody {
            worker: "<unknown>".to_string(),
            beats: 0,
        });
    Some((body, age))
}

/// Reclaims shard `index`'s lease if it has expired: renames it aside to
/// a unique stale name (atomic takeover — the old owner's next heartbeat
/// fails) and deletes the stale file. Also sweeps stale files left by a
/// crash between the rename and the delete.
///
/// Returns `true` when an expired lease was actually reclaimed.
///
/// # Errors
///
/// Filesystem errors (a concurrently vanishing lease is not an error).
pub fn reclaim_expired(
    root: &Path,
    manifest: &FarmManifest,
    index: usize,
) -> Result<bool, FarmError> {
    sweep_stale(root, index)?;
    let Some((_, age)) = lease_age(root, index) else {
        return Ok(false);
    };
    if age < Duration::from_millis(manifest.lease.expiry_ms) {
        return Ok(false);
    }
    let path = lease_path(root, index);
    let nonce = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos());
    let stale = path.with_file_name(format!(
        "shard-{index:04}.lease.stale-{}-{nonce}",
        std::process::id()
    ));
    match fs::rename(&path, &stale) {
        Ok(()) => {}
        // Someone else reclaimed it first, or the owner released it.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e.into()),
    }
    crate::fp!("farm.lease.reclaim");
    let _ = fs::remove_file(&stale);
    Ok(true)
}

/// Deletes leftover `.stale-*` rename targets for shard `index` (a crash
/// between rename-aside and delete leaves one; it is inert — the live
/// lease path is already free — but sweeping keeps the directory clean).
fn sweep_stale(root: &Path, index: usize) -> Result<(), FarmError> {
    let dir = root.join("shards");
    let prefix = format!("shard-{index:04}.lease.stale-");
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().starts_with(&prefix) {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(())
}

/// Store observer that stops appending once lease ownership is lost: the
/// worker cannot interrupt a running shard, but it can guarantee that at
/// most the records already in flight reach a segment another worker may
/// now own. Merged duplicates are byte-identical by construction and the
/// loader is last-wins, so the overlap window is harmless — fencing just
/// keeps it from growing.
struct FencedStore<'a> {
    store: &'a JsonlStore,
    lost: &'a AtomicBool,
}

impl CampaignObserver for FencedStore<'_> {
    fn experiment_classified(&self, index: usize, record: &ExperimentRecord) {
        if self.lost.load(Ordering::Relaxed) {
            return;
        }
        self.store.experiment_classified(index, record);
    }
}

/// What happened to one claimed shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutcome {
    /// Ran (or verified) to completion; done marker written.
    Completed,
    /// Lease ownership was lost mid-run (heartbeat failed); the shard's
    /// durable records survive and the new owner resumes them.
    LeaseLost,
}

/// Summary of one worker invocation.
#[derive(Debug, Clone, Default)]
pub struct WorkerSummary {
    /// Shards this worker completed (done marker written by us).
    pub completed: Vec<usize>,
    /// Shards whose lease we lost mid-run.
    pub lost: Vec<usize>,
}

/// Runs a worker process over the farm at `root` until every shard has a
/// done marker: claim, execute, finalize, repeat, with expired-lease
/// reclaim and exponential back-off on contested sweeps.
///
/// `threads` sizes this worker's thread pool (0 = one per core);
/// `progress` receives one human line per state change (pass
/// `|_| {}` to silence).
///
/// # Errors
///
/// Configuration mismatches ([`FarmError::Manifest`],
/// [`StoreError::HeaderMismatch`] wrapped in [`FarmError::Store`]) and
/// filesystem failures. A lost lease is **not** an error — the shard
/// belongs to someone else now; it is reported in the summary.
pub fn run_worker(
    root: &Path,
    worker_id: &str,
    threads: usize,
    progress: &mut dyn FnMut(String),
) -> Result<WorkerSummary, FarmError> {
    let manifest = read_manifest(root)?;
    let workload = manifest.workload()?;
    let cfg = manifest.campaign_config(threads);
    let prepared = prepare_campaign(&workload, &cfg);
    let computed = StoreHeader::new(workload.name(), &cfg, prepared.golden());
    // The manifest's header is the farm's identity; a worker whose build
    // computes a different campaign must refuse, not write alien records.
    manifest.header.validate_against(&computed)?;

    let mut summary = WorkerSummary::default();
    let mut backoff = Duration::from_millis(manifest.lease.backoff_base_ms);
    loop {
        let mut all_done = true;
        let mut progressed = false;
        for shard in &manifest.shards {
            if done_path(root, shard.index).exists() {
                continue;
            }
            all_done = false;
            if !try_claim(root, shard.index, worker_id)? {
                // Contested: if the holder is dead, free it for the next
                // sweep.
                if reclaim_expired(root, &manifest, shard.index)? {
                    progress(format!(
                        "worker {worker_id}: reclaimed expired lease on shard {}",
                        shard.index
                    ));
                    progressed = true;
                }
                continue;
            }
            progress(format!(
                "worker {worker_id}: claimed shard {} ({}..{})",
                shard.index, shard.start, shard.end
            ));
            match run_claimed_shard(root, &manifest, &prepared, shard, worker_id)? {
                ShardOutcome::Completed => {
                    progress(format!(
                        "worker {worker_id}: shard {} complete",
                        shard.index
                    ));
                    summary.completed.push(shard.index);
                }
                ShardOutcome::LeaseLost => {
                    progress(format!(
                        "worker {worker_id}: lost lease on shard {} (usurped); moving on",
                        shard.index
                    ));
                    summary.lost.push(shard.index);
                }
            }
            progressed = true;
        }
        if all_done {
            return Ok(summary);
        }
        if progressed {
            backoff = Duration::from_millis(manifest.lease.backoff_base_ms);
        } else {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(manifest.lease.backoff_max_ms));
        }
    }
}

/// Executes one shard under an owned lease: open/resume the segment,
/// heartbeat in the background, run the shard's faults, then finalize
/// (flush + telemetry sidecar + done marker + lease release).
fn run_claimed_shard(
    root: &Path,
    manifest: &FarmManifest,
    prepared: &crate::campaign::PreparedCampaign<'_>,
    shard: &ShardSpec,
    worker_id: &str,
) -> Result<ShardOutcome, FarmError> {
    let seg = segment_path(root, shard.index);

    // Attach the segment store exactly like the single-process `--resume`
    // path: a headerless remnant restarts cleanly, an existing segment is
    // validated and torn-tail-recovered, anything else is created fresh.
    let mut preloaded: Vec<Option<ExperimentRecord>> = Vec::new();
    let store = if seg.exists() && headerless_remnant(&seg) {
        JsonlStore::create(&seg, &manifest.header)?
    } else if seg.exists() {
        let (store, loaded) = JsonlStore::open_resume(&seg, &manifest.header)?;
        for (i, slot) in loaded.records.iter().enumerate() {
            if slot.is_some() && !shard.contains(i) {
                let owner = manifest.shard_of(i).map_or(usize::MAX, |s| s.index);
                return Err(FarmError::ForeignIndex {
                    index: i,
                    shard: shard.index,
                    owner,
                });
            }
        }
        preloaded = loaded.records;
        store
    } else {
        JsonlStore::create(&seg, &manifest.header)?
    };
    let already = preloaded.iter().filter(|r| r.is_some()).count();
    if preloaded.is_empty() {
        preloaded = vec![None; manifest.faults];
    }

    let telemetry = Telemetry::new(shard.len());
    telemetry.note_preloaded(already);
    let lost = Arc::new(AtomicBool::new(false));
    let fenced = FencedStore {
        store: &store,
        lost: &lost,
    };
    let mut observers = ObserverSet::new();
    observers.push(&fenced);
    observers.push(&telemetry);

    // Background heartbeat: refresh the lease until told to stop. A
    // refresh failure means the lease was reclaimed (or the disk is
    // gone) — flag ownership lost so the fenced store stops appending.
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let stop = Arc::clone(&stop);
        let lost = Arc::clone(&lost);
        let root = root.to_path_buf();
        let worker = worker_id.to_string();
        let index = shard.index;
        let interval = Duration::from_millis(manifest.lease.heartbeat_ms);
        std::thread::spawn(move || {
            let mut beats = 0u64;
            'outer: loop {
                // Sleep in short slices so shutdown is prompt even under
                // second-scale heartbeats.
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    let slice = Duration::from_millis(10).min(interval - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
                beats += 1;
                if refresh_lease(&root, index, &worker, beats).is_err() {
                    lost.store(true, Ordering::Relaxed);
                    break;
                }
            }
        })
    };

    let records = prepared.run_shard(shard.start..shard.end, preloaded, &observers);
    drop(observers);
    stop.store(true, Ordering::Relaxed);
    let _ = heartbeat.join();

    if lost.load(Ordering::Relaxed) {
        // The shard belongs to someone else now. Everything durable in
        // the segment is still valid (byte-identical records); do NOT
        // finalize or release — the new owner does that.
        drop(store);
        return Ok(ShardOutcome::LeaseLost);
    }
    debug_assert!(
        records[shard.start..shard.end].iter().all(Option::is_some),
        "run_shard left a gap in its own range"
    );

    store.finish()?;
    write_telemetry_sidecar(&seg, &telemetry.snapshot())?;
    crate::fp!("farm.segment.finalize");
    // The done marker is the shard's commit point: forced durable so a
    // machine crash cannot leave a marker claiming an unflushed segment.
    let done = done_path(root, shard.index);
    let mut marker = File::create(&done)?;
    marker.write_all(worker_id.as_bytes())?;
    marker.write_all(b"\n")?;
    marker.sync_all()?;
    let _ = fs::remove_file(lease_path(root, shard.index));
    Ok(ShardOutcome::Completed)
}

/// A lease's externally observable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseState {
    /// No lease file (and no done marker): available.
    Unclaimed,
    /// Held with a fresh heartbeat.
    Held {
        /// Owner's worker id.
        worker: String,
        /// Time since the last heartbeat.
        age: Duration,
    },
    /// Held but stale past expiry: reclaimable.
    Expired {
        /// Last known owner.
        worker: String,
        /// Time since the last heartbeat.
        age: Duration,
    },
}

/// Point-in-time view of one shard.
#[derive(Debug)]
pub struct ShardStatus {
    /// The shard's identity and range.
    pub spec: ShardSpec,
    /// Whether the done marker exists.
    pub done: bool,
    /// Valid records currently in the segment.
    pub records: usize,
    /// Whether the segment currently ends in a torn line.
    pub torn: bool,
    /// The lease state.
    pub lease: LeaseState,
    /// The shard's telemetry sidecar, when one has been written.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// Everything a farm's segments currently hold, assembled and
/// cross-validated: per-shard status plus the (possibly partial) record
/// array.
#[derive(Debug)]
pub struct FarmAssembly {
    /// The validated manifest.
    pub manifest: FarmManifest,
    /// One status per shard, in shard order.
    pub shards: Vec<ShardStatus>,
    /// One slot per fault index, populated from the segments.
    pub records: Vec<Option<ExperimentRecord>>,
}

impl FarmAssembly {
    /// Fault indices with a valid record.
    #[must_use]
    pub fn done(&self) -> usize {
        self.records.iter().filter(|r| r.is_some()).count()
    }

    /// `true` when every fault index has a record.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.records.iter().all(Option::is_some)
    }

    /// Repackages the assembly as a loaded campaign (for the report
    /// plane, which already knows how to tabulate one).
    #[must_use]
    pub fn into_loaded(self) -> LoadedCampaign {
        LoadedCampaign {
            header: self.manifest.header,
            records: self.records,
            torn_tail: false,
        }
    }
}

/// Reads every segment of the farm at `root`, validates each against the
/// manifest (field-by-field header check, range check, duplicate check)
/// and assembles the records. Works mid-flight: missing segments and
/// gaps are fine; *inconsistent* segments are not.
///
/// # Errors
///
/// [`FarmError::Store`] on a header mismatch or corruption,
/// [`FarmError::ForeignIndex`] / [`FarmError::DuplicateIndex`] on
/// cross-shard violations, [`FarmError::Shard`] on a torn done segment.
pub fn assemble_farm(root: &Path) -> Result<FarmAssembly, FarmError> {
    let manifest = read_manifest(root)?;
    let expiry = Duration::from_millis(manifest.lease.expiry_ms);
    let mut records: Vec<Option<ExperimentRecord>> = vec![None; manifest.faults];
    let mut owner_of: Vec<Option<usize>> = vec![None; manifest.faults];
    let mut shards = Vec::with_capacity(manifest.shards.len());
    for shard in &manifest.shards {
        crate::fp!("farm.merge.segment");
        let done = done_path(root, shard.index).exists();
        let seg = segment_path(root, shard.index);
        let mut count = 0;
        let mut torn = false;
        if seg.exists() && !headerless_remnant(&seg) {
            let loaded = load_store(&seg)?;
            loaded.header.validate_against(&manifest.header)?;
            torn = loaded.torn_tail;
            if done && torn {
                return Err(FarmError::Shard {
                    shard: shard.index,
                    message: "done marker present but the segment ends in a torn line \
                              (finalize is ordered after the flush; this segment did \
                              not come from this farm's protocol)"
                        .to_string(),
                });
            }
            for (i, slot) in loaded.records.into_iter().enumerate() {
                let Some(record) = slot else { continue };
                if !shard.contains(i) {
                    let owner = manifest.shard_of(i).map_or(usize::MAX, |s| s.index);
                    return Err(FarmError::ForeignIndex {
                        index: i,
                        shard: shard.index,
                        owner,
                    });
                }
                if let Some(first) = owner_of[i] {
                    return Err(FarmError::DuplicateIndex {
                        index: i,
                        first_shard: first,
                        second_shard: shard.index,
                    });
                }
                owner_of[i] = Some(shard.index);
                records[i] = Some(record);
                count += 1;
            }
        }
        let lease = match lease_age(root, shard.index) {
            None => LeaseState::Unclaimed,
            Some((body, age)) if age >= expiry => LeaseState::Expired {
                worker: body.worker,
                age,
            },
            Some((body, age)) => LeaseState::Held {
                worker: body.worker,
                age,
            },
        };
        let telemetry = fs::read_to_string(telemetry_sidecar_path(&seg))
            .ok()
            .and_then(|t| serde_json::from_str(&t).ok());
        shards.push(ShardStatus {
            spec: *shard,
            done,
            records: count,
            torn,
            lease,
            telemetry,
        });
    }
    Ok(FarmAssembly {
        manifest,
        shards,
        records,
    })
}

/// Outcome of a successful merge.
#[derive(Debug)]
pub struct MergeReport {
    /// Path of the canonical merged store.
    pub path: PathBuf,
    /// Records merged (always the campaign size).
    pub records: usize,
    /// The farm-level telemetry sum, when at least one shard had a
    /// sidecar.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// Folds a completed farm's segments into the canonical merged store at
/// [`merged_path`], written atomically (temp + rename) so a crash
/// mid-merge never leaves a half store at the published path. Shard
/// telemetry sidecars are summed ([`TelemetrySnapshot::accumulate`]) into
/// one farm-level sidecar next to the merged store. Idempotent: re-running
/// re-validates and rewrites.
///
/// # Errors
///
/// [`FarmError::Incomplete`] while any shard is unfinished, plus
/// everything [`assemble_farm`] can return.
pub fn merge_farm(root: &Path) -> Result<MergeReport, FarmError> {
    let assembly = assemble_farm(root)?;
    let missing_shards = assembly.shards.iter().filter(|s| !s.done).count();
    let missing_records = assembly.records.iter().filter(|r| r.is_none()).count();
    if missing_shards > 0 || missing_records > 0 {
        return Err(FarmError::Incomplete {
            missing_shards,
            missing_records,
        });
    }

    let out = merged_path(root);
    let tmp = root.join("merged.jsonl.tmp");
    let store = JsonlStore::create(&tmp, &assembly.manifest.header)?;
    for (i, record) in assembly.records.iter().enumerate() {
        let record = record.as_ref().expect("completeness checked above");
        store.append(i, record)?;
    }
    store.finish()?;
    crate::fp!("farm.merge.publish");
    fs::rename(&tmp, &out)?;

    // Farm-level telemetry: the sum of the per-shard sidecars, not the
    // last writer. A shard without a sidecar just contributes nothing.
    let mut sum: Option<TelemetrySnapshot> = None;
    for status in &assembly.shards {
        let Some(snap) = status.telemetry else {
            continue;
        };
        match &mut sum {
            None => sum = Some(snap),
            Some(acc) => acc.accumulate(&snap),
        }
    }
    if let Some(snap) = &sum {
        write_telemetry_sidecar(&out, snap)?;
    }
    Ok(MergeReport {
        path: out,
        records: assembly.records.len(),
        telemetry: sum,
    })
}

/// One pass of the coordinator's tend loop: sweep every unfinished shard
/// for an expired lease and reclaim it. Returns the number of leases
/// reclaimed.
///
/// # Errors
///
/// Filesystem failures during the sweep.
pub fn tend_once(root: &Path, manifest: &FarmManifest) -> Result<usize, FarmError> {
    let mut reclaimed = 0;
    for shard in &manifest.shards {
        if done_path(root, shard.index).exists() {
            continue;
        }
        if reclaim_expired(root, manifest, shard.index)? {
            reclaimed += 1;
        }
    }
    Ok(reclaimed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bera-farm-unit")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quick_cfg(faults: usize) -> CampaignConfig {
        CampaignConfig::quick(faults, 11)
    }

    #[test]
    fn init_splits_evenly_and_round_trips() {
        let root = scratch("init");
        let m = init_farm(&root, "alg1", &quick_cfg(10), 3, LeasePolicy::default()).unwrap();
        assert_eq!(m.shards.len(), 3);
        assert_eq!(
            m.shards.iter().map(ShardSpec::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        let read = read_manifest(&root).unwrap();
        assert_eq!(read, m);
        // Re-init refuses.
        assert!(matches!(
            init_farm(&root, "alg1", &quick_cfg(10), 3, LeasePolicy::default()),
            Err(FarmError::Manifest(_))
        ));
    }

    #[test]
    fn shard_count_clamps_to_faults() {
        let root = scratch("clamp");
        let m = init_farm(&root, "alg1", &quick_cfg(2), 8, LeasePolicy::default()).unwrap();
        assert_eq!(m.shards.len(), 2);
    }

    #[test]
    fn lease_policy_validates() {
        assert!(LeasePolicy {
            heartbeat_ms: 100,
            expiry_ms: 150,
            ..LeasePolicy::default()
        }
        .validate()
        .is_err());
        assert!(LeasePolicy::default().validate().is_ok());
    }

    #[test]
    fn claim_is_exclusive_and_reclaim_needs_expiry() {
        let root = scratch("claim");
        let m = init_farm(
            &root,
            "alg1",
            &quick_cfg(4),
            2,
            LeasePolicy {
                heartbeat_ms: 50,
                expiry_ms: 60_000,
                ..LeasePolicy::default()
            },
        )
        .unwrap();
        assert!(try_claim(&root, 0, "a").unwrap());
        assert!(!try_claim(&root, 0, "b").unwrap());
        // Fresh lease: not reclaimable.
        assert!(!reclaim_expired(&root, &m, 0).unwrap());
        assert!(!try_claim(&root, 0, "b").unwrap());
    }

    #[test]
    fn expired_lease_is_reclaimed_and_fences_the_old_owner() {
        let root = scratch("expire");
        let m = init_farm(
            &root,
            "alg1",
            &quick_cfg(4),
            2,
            LeasePolicy {
                heartbeat_ms: 10,
                expiry_ms: 20,
                backoff_base_ms: 5,
                backoff_max_ms: 20,
            },
        )
        .unwrap();
        assert!(try_claim(&root, 0, "dead").unwrap());
        std::thread::sleep(Duration::from_millis(40));
        assert!(reclaim_expired(&root, &m, 0).unwrap());
        // Old owner's refresh now fails (NotFound): fenced.
        assert!(refresh_lease(&root, 0, "dead", 1).is_err());
        // And the shard is claimable again.
        assert!(try_claim(&root, 0, "heir").unwrap());
    }

    #[test]
    fn single_worker_farm_matches_single_process_run() {
        let root = scratch("identity");
        let cfg = quick_cfg(12);
        let workload = Workload::algorithm_one();
        init_farm(&root, "alg1", &cfg, 3, LeasePolicy::default()).unwrap();
        let summary = run_worker(&root, "w0", 1, &mut |_| {}).unwrap();
        assert_eq!(summary.completed, vec![0, 1, 2]);
        let report = merge_farm(&root).unwrap();
        assert_eq!(report.records, 12);

        // The merged store must hold byte-identical records to a
        // single-process run of the same campaign.
        let merged = load_store(&report.path).unwrap();
        let single = crate::campaign::run_scifi_campaign(&workload, &cfg);
        let merged_records: Vec<_> = merged.records.into_iter().flatten().collect();
        assert_eq!(merged_records.len(), single.records.len());
        for (i, (a, b)) in merged_records.iter().zip(&single.records).enumerate() {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "record {i} differs between farm and single-process run"
            );
        }
        // Farm-level telemetry sums the shard totals.
        let snap = report.telemetry.expect("shards wrote sidecars");
        assert_eq!(snap.total, 12);
        assert_eq!(snap.done(), 12);
    }

    #[test]
    fn merge_refuses_incomplete_and_duplicate() {
        let root = scratch("merge-guards");
        let cfg = quick_cfg(6);
        let m = init_farm(&root, "alg1", &cfg, 2, LeasePolicy::default()).unwrap();
        assert!(matches!(
            merge_farm(&root),
            Err(FarmError::Incomplete { .. })
        ));
        run_worker(&root, "w0", 1, &mut |_| {}).unwrap();
        // Forge a duplicate: copy shard 0's records into a fresh shard-1
        // segment (shard 1's own records are already there — append a
        // foreign index instead to trip the range check first).
        let loaded = load_store(&segment_path(&root, 0)).unwrap();
        let record = loaded.records[0].clone().unwrap();
        let seg1 = segment_path(&root, 1);
        let mut file = OpenOptions::new().append(true).open(&seg1).unwrap();
        let line = crate::store::encode_record(0, &record);
        file.write_all(line.as_bytes()).unwrap();
        file.write_all(b"\n").unwrap();
        drop(file);
        match merge_farm(&root) {
            Err(FarmError::ForeignIndex {
                index: 0,
                shard: 1,
                owner: 0,
            }) => {}
            other => panic!("expected ForeignIndex, got {other:?}"),
        }
        let _ = m;
    }
}
