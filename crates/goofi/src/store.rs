//! Streaming JSONL result store: the persisted, re-analyzable campaign
//! database.
//!
//! A store file is self-describing. Line 1 is a [`StoreHeader`] carrying
//! the campaign configuration (workload, fault count, seed, fault model,
//! loop shape) plus the golden-run digest and logged golden vectors; every
//! following line is one [`crate::experiment::ExperimentRecord`] wrapped
//! with its fault-list index and an FNV-64 checksum of the serialized
//! body. Records stream out as experiments classify (the store is a
//! [`CampaignObserver`]), so a crash at fault 9 000 of 9 290 loses at most
//! the line being written — and a torn final line is detected by parse or
//! checksum failure and simply re-run on resume.
//!
//! Resume contract: [`JsonlStore::open_resume`] validates the stored
//! header against the header of the *current* configuration
//! ([`StoreHeader::validate_against`]) and refuses to mix campaigns that
//! differ in workload, fault count, seed, fault model, loop shape or
//! golden digest. The checkpoint stride is deliberately *not* validated:
//! checkpointing is a pure optimisation with bit-identical outcomes
//! (proven by `tests/checkpoint_equivalence.rs`), so a resume may use a
//! different stride than the interrupted run.
//!
//! Non-finite floats have no JSON representation (the serializer emits
//! `null`), so `max_deviation` — which is `+inf` when a corrupted output
//! is non-finite — additionally travels as its IEEE-754 bit pattern and is
//! restored exactly on read.

use crate::campaign::{CampaignConfig, CampaignResult};
use crate::experiment::{ExperimentRecord, FaultModel, GoldenRun};
use crate::observer::{CampaignObserver, TelemetrySnapshot};
use bera_tcpu::Fnv64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First bytes of every store file, guarding against feeding an arbitrary
/// JSON file to the resume path.
pub const STORE_MAGIC: &str = "bera-campaign-store";

/// Wire-format version; bumped on incompatible layout changes.
/// Version 2 added the `harness_error` record field (supervised execution
/// quarantine); version 3 added the `provenance` record field and the
/// `prune` header field (def/use fault-space pruning); version 4 added
/// the `vis` header field (EDM-visibility analytic classification).
/// Older stores are refused on resume rather than misread, since the
/// vendored deserializer has no field defaults.
pub const STORE_VERSION: u32 = 4;

/// Everything needed to validate and re-interpret a stored campaign:
/// the identity of the run plus the golden vectors records are classified
/// against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreHeader {
    /// Always [`STORE_MAGIC`].
    pub magic: String,
    /// Always [`STORE_VERSION`] for files this build writes.
    pub version: u32,
    /// Workload name ("Algorithm I" / "Algorithm II" / ...).
    pub workload: String,
    /// Campaign size (number of faults in the sampled list).
    pub faults: usize,
    /// Fault-list RNG seed.
    pub seed: u64,
    /// The campaign's fault model.
    pub fault_model: FaultModel,
    /// Whether def/use fault-space pruning was enabled. Validated on
    /// resume: pruned and unpruned records are outcome-equivalent, but
    /// their provenance tags differ, so mixing the two in one store would
    /// make the provenance split meaningless.
    pub prune: bool,
    /// Whether EDM-visibility analytic classification was enabled.
    /// Validated on resume for the same reason as `prune`: the visibility
    /// layer changes which faults carry `Analytic`/`Replicated`
    /// provenance, so a resumed half must use the same setting.
    pub vis: bool,
    /// Closed-loop iterations per experiment.
    pub iterations: usize,
    /// Whether the data cache ran parity-protected.
    pub parity_cache: bool,
    /// Scannable state elements (fault location population).
    pub total_locations: usize,
    /// Dynamic instructions of the golden run (fault time population).
    pub total_instructions: u64,
    /// Digest of the golden run (outputs, speeds, end state); see
    /// [`GoldenRun::digest`].
    pub golden_digest: u64,
    /// Golden output bit patterns, one per iteration.
    pub golden_outputs: Vec<u32>,
    /// Golden plant speed trajectory (rpm).
    pub golden_speeds: Vec<f64>,
}

impl StoreHeader {
    /// Builds the header describing `cfg` run against `golden`.
    #[must_use]
    pub fn new(workload: &str, cfg: &CampaignConfig, golden: &GoldenRun) -> Self {
        StoreHeader {
            magic: STORE_MAGIC.to_string(),
            version: STORE_VERSION,
            workload: workload.to_string(),
            faults: cfg.faults,
            seed: cfg.seed,
            fault_model: cfg.fault_model,
            prune: cfg.prune,
            vis: cfg.vis,
            iterations: cfg.loop_cfg.iterations,
            parity_cache: cfg.loop_cfg.parity_cache,
            total_locations: bera_tcpu::scan::catalog().len(),
            total_instructions: golden.total_instructions,
            golden_digest: golden.digest(),
            golden_outputs: golden.outputs.clone(),
            golden_speeds: golden.speeds.clone(),
        }
    }

    /// Checks that a stored header describes the same campaign as
    /// `current` (the header freshly computed from the configuration a
    /// resume is about to run).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::HeaderMismatch`] naming the first differing
    /// field — resuming must never silently mix two campaigns.
    pub fn validate_against(&self, current: &StoreHeader) -> Result<(), StoreError> {
        fn check<T: PartialEq + fmt::Debug>(
            field: &'static str,
            stored: &T,
            current: &T,
        ) -> Result<(), StoreError> {
            if stored == current {
                Ok(())
            } else {
                Err(StoreError::HeaderMismatch {
                    field,
                    stored: format!("{stored:?}"),
                    current: format!("{current:?}"),
                })
            }
        }
        check("magic", &self.magic, &current.magic)?;
        check("version", &self.version, &current.version)?;
        check("workload", &self.workload, &current.workload)?;
        check("faults", &self.faults, &current.faults)?;
        check("seed", &self.seed, &current.seed)?;
        check("fault_model", &self.fault_model, &current.fault_model)?;
        check("prune", &self.prune, &current.prune)?;
        check("vis", &self.vis, &current.vis)?;
        check("iterations", &self.iterations, &current.iterations)?;
        check("parity_cache", &self.parity_cache, &current.parity_cache)?;
        check(
            "total_locations",
            &self.total_locations,
            &current.total_locations,
        )?;
        check(
            "total_instructions",
            &self.total_instructions,
            &current.total_instructions,
        )?;
        check("golden_digest", &self.golden_digest, &current.golden_digest)?;
        Ok(())
    }
}

/// Errors from writing, reading or validating a store file.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// A line failed to parse or failed its checksum. `line` is 1-based
    /// (line 1 is the header).
    Corrupt {
        /// 1-based line number in the store file.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The stored header names a different campaign than the one being
    /// resumed or reported on.
    HeaderMismatch {
        /// The first differing header field.
        field: &'static str,
        /// Value found in the store file.
        stored: String,
        /// Value of the campaign being run now.
        current: String,
    },
    /// A completed-campaign operation (reporting) found gaps.
    Incomplete {
        /// Fault indices with no valid record.
        missing: usize,
        /// Campaign size from the header.
        total: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { line, message } => {
                write!(f, "store line {line} is corrupt: {message}")
            }
            StoreError::HeaderMismatch {
                field,
                stored,
                current,
            } => write!(
                f,
                "stored campaign does not match the current configuration: \
                 `{field}` is {stored} in the store but {current} now \
                 (refusing to mix campaigns; delete the file or fix the flags)"
            ),
            StoreError::Incomplete { missing, total } => write!(
                f,
                "campaign incomplete: {missing} of {total} records missing \
                 (resume it with --resume, or report with --partial)"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One record line's payload: the index ties the record to the fault list,
/// and the bit pattern restores `max_deviation` exactly even when it is
/// non-finite (JSON would flatten it to `null`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RecordBody {
    index: u64,
    max_deviation_bits: u64,
    record: ExperimentRecord,
}

/// One full record line: checksum plus body.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RecordLine {
    crc: String,
    body: RecordBody,
}

fn fnv64_hex(bytes: &[u8]) -> String {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    format!("{:016x}", h.finish())
}

fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("vendored serde_json cannot fail")
}

/// Encodes one record as a store line (no trailing newline).
#[must_use]
pub fn encode_record(index: usize, record: &ExperimentRecord) -> String {
    let body = RecordBody {
        index: index as u64,
        max_deviation_bits: record.max_deviation.to_bits(),
        record: record.clone(),
    };
    let crc = fnv64_hex(to_json(&body).as_bytes());
    to_json(&RecordLine { crc, body })
}

/// Decodes one store line back into `(index, record)`, verifying the
/// checksum and restoring the exact `max_deviation` bit pattern.
///
/// # Errors
///
/// Returns a description of the parse failure or checksum mismatch; a
/// truncated (torn) line always fails here rather than half-parsing.
pub fn decode_record(line: &str) -> Result<(usize, ExperimentRecord), String> {
    let parsed: RecordLine = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let crc = fnv64_hex(to_json(&parsed.body).as_bytes());
    if crc != parsed.crc {
        return Err(format!(
            "checksum mismatch (line says {}, body hashes to {crc})",
            parsed.crc
        ));
    }
    let RecordBody {
        index,
        max_deviation_bits,
        mut record,
    } = parsed.body;
    record.max_deviation = f64::from_bits(max_deviation_bits);
    let index = usize::try_from(index).map_err(|_| format!("index {index} out of range"))?;
    Ok((index, record))
}

/// A fully parsed store file.
#[derive(Debug)]
pub struct LoadedCampaign {
    /// The validated header (magic and version already checked).
    pub header: StoreHeader,
    /// One slot per fault index; `None` where no valid record exists yet.
    pub records: Vec<Option<ExperimentRecord>>,
    /// Whether the final line was torn (truncated mid-write) and dropped.
    pub torn_tail: bool,
}

impl LoadedCampaign {
    /// Number of fault indices with a valid record.
    #[must_use]
    pub fn done(&self) -> usize {
        self.records.iter().filter(|r| r.is_some()).count()
    }

    /// `true` when every fault index has a record.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.records.iter().all(Option::is_some)
    }

    /// Reassembles the [`CampaignResult`] this store was streamed from.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Incomplete`] if any record is missing.
    pub fn into_result(self) -> Result<CampaignResult, StoreError> {
        let total = self.records.len();
        let missing = self.records.iter().filter(|r| r.is_none()).count();
        if missing > 0 {
            return Err(StoreError::Incomplete { missing, total });
        }
        Ok(self.into_partial_result())
    }

    /// Reassembles a result from however many records are present (for
    /// auditing a still-running or interrupted campaign). Record order
    /// follows the fault list, with gaps skipped.
    #[must_use]
    pub fn into_partial_result(self) -> CampaignResult {
        CampaignResult {
            workload: self.header.workload,
            seed: self.header.seed,
            total_locations: self.header.total_locations,
            total_instructions: self.header.total_instructions,
            golden_outputs: self.header.golden_outputs,
            golden_speeds: self.header.golden_speeds,
            records: self.records.into_iter().flatten().collect(),
        }
    }
}

/// Reads and verifies a store file: header line, then every record line.
///
/// A torn final line (crash mid-write) is tolerated and reported via
/// [`LoadedCampaign::torn_tail`]; its index is simply absent from
/// `records`. Corruption anywhere else is an error. When the same index
/// appears on several valid lines (e.g. a resume raced a flush), the last
/// occurrence wins.
///
/// # Errors
///
/// [`StoreError::Io`] on read failure, [`StoreError::Corrupt`] on a bad
/// header or a bad non-final line, [`StoreError::HeaderMismatch`] when the
/// magic or version is wrong.
pub fn load_store(path: &Path) -> Result<LoadedCampaign, StoreError> {
    let bytes = std::fs::read(path)?;
    let ends_with_newline = bytes.last() == Some(&b'\n');
    let chunks: Vec<&[u8]> = bytes
        .split(|&b| b == b'\n')
        .filter(|c| !c.is_empty())
        .collect();
    let Some(&header_bytes) = chunks.first() else {
        return Err(StoreError::Corrupt {
            line: 1,
            message: "empty file (no header line)".to_string(),
        });
    };
    let header_text = std::str::from_utf8(header_bytes).map_err(|_| StoreError::Corrupt {
        line: 1,
        message: "header is not UTF-8".to_string(),
    })?;
    let header: StoreHeader =
        serde_json::from_str(header_text).map_err(|e| StoreError::Corrupt {
            line: 1,
            message: format!("header does not parse: {e}"),
        })?;
    if header.magic != STORE_MAGIC {
        return Err(StoreError::HeaderMismatch {
            field: "magic",
            stored: header.magic.clone(),
            current: STORE_MAGIC.to_string(),
        });
    }
    if header.version != STORE_VERSION {
        return Err(StoreError::HeaderMismatch {
            field: "version",
            stored: header.version.to_string(),
            current: STORE_VERSION.to_string(),
        });
    }

    let mut records: Vec<Option<ExperimentRecord>> = Vec::new();
    records.resize_with(header.faults, || None);
    let mut torn_tail = false;
    for (i, chunk) in chunks.iter().enumerate().skip(1) {
        let line_no = i + 1;
        let is_final = i + 1 == chunks.len();
        let decoded = std::str::from_utf8(chunk)
            .map_err(|_| "line is not UTF-8".to_string())
            .and_then(decode_record);
        match decoded {
            Ok((index, record)) => {
                let slot = records.get_mut(index).ok_or(StoreError::Corrupt {
                    line: line_no,
                    message: format!(
                        "fault index {index} out of range for a {}-fault campaign",
                        header.faults
                    ),
                })?;
                *slot = Some(record);
            }
            // Only an unterminated final line can legitimately be torn —
            // appends are newline-terminated and flushed under one lock.
            Err(_) if is_final && !ends_with_newline => {
                torn_tail = true;
            }
            Err(message) => {
                return Err(StoreError::Corrupt {
                    line: line_no,
                    message,
                });
            }
        }
    }
    Ok(LoadedCampaign {
        header,
        records,
        torn_tail,
    })
}

struct StoreInner {
    writer: BufWriter<File>,
    /// First append failure, surfaced by [`JsonlStore::finish`]. Appends
    /// run inside observer callbacks on worker threads, which have nowhere
    /// to return an error to.
    deferred_error: Option<std::io::Error>,
}

/// The streaming sink: an open store file accepting record appends.
///
/// Implements [`CampaignObserver`], so threading it through a campaign
/// persists every record the moment it is classified. Appends are
/// serialized by a mutex and flushed line-at-a-time, so a crash leaves at
/// most one torn (detectable) final line.
pub struct JsonlStore {
    inner: Mutex<StoreInner>,
}

impl JsonlStore {
    /// Creates (truncating) a store file and writes the header line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path, header: &StoreHeader) -> Result<Self, StoreError> {
        let file = File::create(path)?;
        crate::fp!("store.create.before-header");
        let mut writer = BufWriter::new(file);
        writer.write_all(to_json(header).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        crate::fp!("store.create.after-header");
        // The header is the store's identity: force it to stable storage
        // before any record references it, so a machine crash cannot leave
        // records under a header that never made it to disk. Records
        // themselves rely on line-at-a-time flushes plus checksum
        // detection — a torn tail is re-run on resume by design.
        writer.get_ref().sync_all()?;
        Ok(JsonlStore {
            inner: Mutex::new(StoreInner {
                writer,
                deferred_error: None,
            }),
        })
    }

    /// Opens an existing store for resumption: loads and verifies it,
    /// validates its header against `current`, and returns the store (now
    /// in append mode) together with the already-completed records.
    ///
    /// # Errors
    ///
    /// Everything [`load_store`] can return, plus
    /// [`StoreError::HeaderMismatch`] when the file belongs to a different
    /// campaign than `current` describes.
    pub fn open_resume(
        path: &Path,
        current: &StoreHeader,
    ) -> Result<(Self, LoadedCampaign), StoreError> {
        let loaded = load_store(path)?;
        loaded.header.validate_against(current)?;
        if loaded.torn_tail {
            // Cut the partial final line so new appends start on a fresh
            // line instead of concatenating onto the torn one.
            crate::fp!("store.resume.before-truncate");
            let bytes = std::fs::read(path)?;
            let keep = bytes
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |pos| pos + 1);
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(keep as u64)?;
            file.sync_all()?;
            crate::fp!("store.resume.after-truncate");
        }
        let writer = BufWriter::new(OpenOptions::new().append(true).open(path)?);
        Ok((
            JsonlStore {
                inner: Mutex::new(StoreInner {
                    writer,
                    deferred_error: None,
                }),
            },
            loaded,
        ))
    }

    /// Writes and flushes one record line; the single append path shared
    /// by [`JsonlStore::append`] and the observer callback, so the
    /// failpoint instrumentation covers both.
    fn write_line(inner: &mut StoreInner, line: &str) -> std::io::Result<()> {
        crate::fp!("store.append.before-write");
        inner.writer.write_all(line.as_bytes())?;
        inner.writer.write_all(b"\n")?;
        crate::fp!("store.append.after-write");
        inner.writer.flush()?;
        crate::fp!("store.append.after-flush");
        Ok(())
    }

    /// Appends one record line and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&self, index: usize, record: &ExperimentRecord) -> Result<(), StoreError> {
        let line = encode_record(index, record);
        let mut inner = self.inner.lock().expect("store lock poisoned");
        Self::write_line(&mut inner, &line)?;
        Ok(())
    }

    /// Flushes and closes the store, surfacing the first append error that
    /// occurred inside observer callbacks (if any).
    ///
    /// # Errors
    ///
    /// The deferred append error, or a final flush failure.
    pub fn finish(self) -> Result<(), StoreError> {
        let mut inner = self.inner.into_inner().expect("store lock poisoned");
        if let Some(e) = inner.deferred_error.take() {
            return Err(StoreError::Io(e));
        }
        inner.writer.flush()?;
        Ok(())
    }
}

/// The conventional path of a store's telemetry sidecar:
/// `<store>.telemetry.json` next to the store file.
#[must_use]
pub fn telemetry_sidecar_path(store: &Path) -> PathBuf {
    let mut name = store
        .file_name()
        .map_or_else(Default::default, std::ffi::OsStr::to_os_string);
    name.push(".telemetry.json");
    store.with_file_name(name)
}

/// Writes the telemetry sidecar for the store at `store` atomically: the
/// snapshot is serialized to a `.tmp` sibling and renamed into place, so
/// a crash mid-write can never leave a truncated or half-JSON sidecar at
/// the published path — readers (`report`) see the old sidecar, the new
/// one, or none.
///
/// # Errors
///
/// Propagates filesystem errors; the temporary file is cleaned up on a
/// failed rename.
pub fn write_telemetry_sidecar(
    store: &Path,
    snapshot: &TelemetrySnapshot,
) -> Result<PathBuf, StoreError> {
    let side = telemetry_sidecar_path(store);
    let mut tmp_name = side
        .file_name()
        .map_or_else(Default::default, std::ffi::OsStr::to_os_string);
    tmp_name.push(".tmp");
    let tmp = side.with_file_name(tmp_name);
    crate::fp!("sidecar.before-write");
    let json = serde_json::to_string_pretty(snapshot).map_err(|e| StoreError::Corrupt {
        line: 0,
        message: format!("telemetry snapshot does not serialize: {e}"),
    })?;
    let write_tmp = || -> std::io::Result<()> {
        let mut file = File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
        crate::fp!("sidecar.before-rename");
        std::fs::rename(&tmp, &side)
    };
    if let Err(e) = write_tmp() {
        let _ = std::fs::remove_file(&tmp);
        return Err(StoreError::Io(e));
    }
    Ok(side)
}

/// Recognizes the disk state left by a crash between store creation and a
/// durable header: an empty file, or a file containing no newline at all
/// (a torn header write — a valid store always begins with a
/// newline-terminated header line, so such a file provably holds no
/// records). A resume can safely recreate such a remnant from scratch;
/// anything else that fails to load is genuine corruption and must be
/// refused, never overwritten.
#[must_use]
pub fn headerless_remnant(path: &Path) -> bool {
    let Ok(bytes) = std::fs::read(path) else {
        return false;
    };
    !bytes.contains(&b'\n')
}

impl CampaignObserver for JsonlStore {
    fn experiment_classified(&self, index: usize, record: &ExperimentRecord) {
        let line = encode_record(index, record);
        let mut inner = self.inner.lock().expect("store lock poisoned");
        if inner.deferred_error.is_some() {
            return; // already failing; don't spam
        }
        if let Err(e) = Self::write_line(&mut inner, &line) {
            eprintln!("warning: result store append failed: {e}");
            inner.deferred_error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{prepare_campaign, CampaignConfig};
    use crate::observer::NullObserver;
    use crate::workload::Workload;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU32 = AtomicU32::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "bera-store-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn record_line_roundtrips_exactly() {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(6, 2);
        let prepared = prepare_campaign(&w, &cfg);
        let result = prepared.run(&NullObserver);
        for (i, rec) in result.records.iter().enumerate() {
            let line = encode_record(i, rec);
            let (index, back) = decode_record(&line).expect("valid line decodes");
            assert_eq!(index, i);
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(rec).unwrap()
            );
            assert_eq!(back.max_deviation.to_bits(), rec.max_deviation.to_bits());
        }
    }

    #[test]
    fn streamed_store_reloads_as_the_same_result() {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(12, 4);
        let path = temp_path("stream");
        let prepared = prepare_campaign(&w, &cfg);
        let header = StoreHeader::new(w.name(), &cfg, prepared.golden());
        let store = JsonlStore::create(&path, &header).unwrap();
        let result = prepared.run(&store);
        store.finish().unwrap();

        let loaded = load_store(&path).unwrap();
        assert!(!loaded.torn_tail);
        assert!(loaded.is_complete());
        assert_eq!(loaded.done(), 12);
        let reloaded = loaded.into_result().unwrap();
        assert_eq!(
            serde_json::to_string(&reloaded).unwrap(),
            serde_json::to_string(&result).unwrap(),
            "the store must reconstruct the in-memory result bit-for-bit"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_detected_not_half_parsed() {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(5, 9);
        let path = temp_path("torn");
        let prepared = prepare_campaign(&w, &cfg);
        let header = StoreHeader::new(w.name(), &cfg, prepared.golden());
        let store = JsonlStore::create(&path, &header).unwrap();
        let _ = prepared.run(&store);
        store.finish().unwrap();

        let full = std::fs::read_to_string(&path).unwrap();
        // Cut the file mid-way through the final record line.
        let cut = full.trim_end().len() - 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        let loaded = load_store(&path).unwrap();
        assert!(
            loaded.torn_tail,
            "truncated final line must register as torn"
        );
        assert_eq!(loaded.done(), 4, "the torn record is absent, not invented");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_middle_line_is_an_error() {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(5, 9);
        let path = temp_path("corrupt");
        let prepared = prepare_campaign(&w, &cfg);
        let header = StoreHeader::new(w.name(), &cfg, prepared.golden());
        let store = JsonlStore::create(&path, &header).unwrap();
        let _ = prepared.run(&store);
        store.finish().unwrap();

        let full = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = full.lines().collect();
        let tampered = lines[2].replace("\"crc\":\"", "\"crc\":\"0");
        lines[2] = &tampered;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        match load_store(&path) {
            Err(StoreError::Corrupt { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected a corrupt-line error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sidecar_path_follows_the_store_name() {
        let p = telemetry_sidecar_path(Path::new("/tmp/run/camp.jsonl"));
        assert_eq!(p, PathBuf::from("/tmp/run/camp.jsonl.telemetry.json"));
    }

    #[test]
    fn sidecar_write_is_atomic_and_reparses() {
        let store_path = temp_path("sidecar");
        let snap = crate::observer::Telemetry::new(7).snapshot();
        let side = write_telemetry_sidecar(&store_path, &snap).expect("sidecar write");
        assert_eq!(side, telemetry_sidecar_path(&store_path));
        let json = std::fs::read_to_string(&side).expect("sidecar readable");
        let back: TelemetrySnapshot = serde_json::from_str(&json).expect("sidecar parses");
        assert_eq!(back.total, 7);
        let mut tmp_name = side.file_name().unwrap().to_os_string();
        tmp_name.push(".tmp");
        assert!(
            !side.with_file_name(tmp_name).exists(),
            "temporary file must not survive a successful rename"
        );
        std::fs::remove_file(&side).ok();
    }

    #[test]
    fn headerless_remnants_are_recognized_and_real_stores_are_not() {
        let path = temp_path("remnant");
        std::fs::write(&path, b"").unwrap();
        assert!(headerless_remnant(&path), "empty file is a remnant");
        std::fs::write(&path, b"{\"magic\":\"bera-camp").unwrap();
        assert!(headerless_remnant(&path), "torn header is a remnant");
        std::fs::write(&path, b"{\"hello\":1}\nmore\n").unwrap();
        assert!(
            !headerless_remnant(&path),
            "newline-terminated content is never recreated over"
        );
        std::fs::remove_file(&path).ok();
        assert!(
            !headerless_remnant(&path),
            "a missing file is not a remnant"
        );
    }

    #[test]
    fn non_campaign_file_is_rejected() {
        let path = temp_path("garbage");
        std::fs::write(&path, "{\"hello\":1}\n").unwrap();
        assert!(matches!(
            load_store(&path),
            Err(StoreError::Corrupt { line: 1, .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
