//! Error-propagation analysis — GOOFI's *detail mode*.
//!
//! The paper (Section 3.3.3): "The detail mode operation is used to produce
//! an execution trace, allowing the error propagation to be analyzed in
//! detail." This module runs the golden and the faulty machine in lockstep,
//! one instruction at a time, and reports how the single flipped bit
//! spreads through the processor state, when it first reaches an output,
//! and whether a detection mechanism ends the experiment.

use crate::experiment::{FaultSpec, LoopConfig};
use crate::workload::Workload;
use bera_plant::Engine;
use bera_tcpu::edm::Trap;
use bera_tcpu::machine::{Machine, RunExit, StepEvent, PORT_R, PORT_U, PORT_Y};
use bera_tcpu::scan::{self, BitLocation};
use serde::{Deserialize, Serialize};

/// How far the fault propagated within the analysis window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PropagationReport {
    /// The injected fault.
    pub fault: FaultSpec,
    /// The flipped state element.
    pub location: BitLocation,
    /// Differing scan bits immediately after injection (always ≥ 1).
    pub initial_diff: usize,
    /// First instruction (dynamic index) at which the corruption spread
    /// beyond the originally flipped element.
    pub spread_at: Option<u64>,
    /// First instruction at which the output port `u_lim` differed.
    pub output_diverged_at: Option<u64>,
    /// Trap that ended the faulty run inside the window, if any.
    pub detected: Option<Trap>,
    /// Differing scan bits at the end of the window (0 = fully healed).
    pub final_diff: usize,
    /// Instructions actually analysed.
    pub steps_analysed: u64,
}

impl PropagationReport {
    /// `true` when no trace of the fault remained at the end of the window
    /// and the output never diverged.
    #[must_use]
    pub fn healed(&self) -> bool {
        self.final_diff == 0 && self.output_diverged_at.is_none() && self.detected.is_none()
    }
}

/// One machine plus its own plant, advanced instruction by instruction.
struct Lockstep {
    machine: Machine,
    engine: Engine,
    iteration: usize,
}

impl Lockstep {
    fn new(workload: &Workload, cfg: &LoopConfig) -> Self {
        let mut machine = Machine::new();
        machine.load_program(workload.program());
        machine.set_cache_parity(cfg.parity_cache);
        let engine = cfg.engine.clone();
        let mut this = Lockstep {
            machine,
            engine,
            iteration: 0,
        };
        this.set_ports(cfg);
        this
    }

    fn set_ports(&mut self, cfg: &LoopConfig) {
        let t = self.iteration as f64 * cfg.sample_interval;
        self.machine
            .set_port_f32(PORT_R, cfg.profiles.reference(t) as f32);
        self.machine
            .set_port_f32(PORT_Y, self.engine.speed_rpm() as f32);
    }

    fn step(&mut self, cfg: &LoopConfig) -> Result<(), Trap> {
        match self.machine.step() {
            Ok(StepEvent::Yield) => {
                let u = f64::from(self.machine.port_out_f32(PORT_U));
                let t = self.iteration as f64 * cfg.sample_interval;
                let act = if u.is_finite() {
                    u.clamp(0.0, 70.0)
                } else {
                    0.0
                };
                self.engine
                    .advance(act, cfg.profiles.load(t), cfg.sample_interval);
                self.iteration += 1;
                self.set_ports(cfg);
                Ok(())
            }
            Ok(StepEvent::Normal) => Ok(()),
            Err(trap) => Err(trap),
        }
    }
}

/// Runs the golden and faulty machines in lockstep and reports the fault's
/// propagation over a window of `window` instructions after injection.
///
/// # Panics
///
/// Panics if `fault.location_index` is out of range or the golden run traps
/// (a workload bug).
#[must_use]
pub fn analyze(
    workload: &Workload,
    cfg: &LoopConfig,
    fault: FaultSpec,
    window: u64,
) -> PropagationReport {
    let location = scan::catalog()[fault.location_index];
    let mut golden = Lockstep::new(workload, cfg);
    let mut faulty = Lockstep::new(workload, cfg);

    // Advance both to the injection point.
    for m in [&mut golden, &mut faulty] {
        let exit = loop {
            if m.machine.instr_count() >= fault.inject_at {
                break None;
            }
            match m.step(cfg) {
                Ok(()) => {}
                Err(t) => break Some(t),
            }
        };
        assert!(exit.is_none(), "pre-injection run must be fault-free");
    }

    faulty.machine.scan_flip(location);
    let initial_diff = faulty
        .machine
        .scan_snapshot()
        .diff_count(&golden.machine.scan_snapshot());

    let mut spread_at = None;
    let mut output_diverged_at = None;
    let mut detected = None;
    let mut steps = 0u64;
    let mut final_diff = initial_diff;

    for _ in 0..window {
        let idx = golden.machine.instr_count();
        golden.step(cfg).expect("golden run must stay fault-free");
        match faulty.step(cfg) {
            Ok(()) => {}
            Err(trap) => {
                detected = Some(trap);
                steps += 1;
                break;
            }
        }
        steps += 1;
        let diff = faulty
            .machine
            .scan_snapshot()
            .diff_count(&golden.machine.scan_snapshot());
        final_diff = diff;
        if spread_at.is_none() && diff > initial_diff {
            spread_at = Some(idx);
        }
        if output_diverged_at.is_none()
            && faulty.machine.port_out(PORT_U) != golden.machine.port_out(PORT_U)
        {
            output_diverged_at = Some(idx);
        }
        if diff == 0 && output_diverged_at.is_none() {
            // Fully healed; nothing more can happen deterministically.
            break;
        }
    }

    PropagationReport {
        fault,
        location,
        initial_diff,
        spread_at,
        output_diverged_at,
        detected,
        final_diff,
        steps_analysed: steps,
    }
}

/// Convenience: trace the faulty run instruction-by-instruction from the
/// injection point (GOOFI's detail-mode log) for `window` instructions.
#[must_use]
pub fn detail_trace(
    workload: &Workload,
    cfg: &LoopConfig,
    fault: FaultSpec,
    window: u64,
) -> (Vec<bera_tcpu::trace::TraceEntry>, RunExit) {
    let location = scan::catalog()[fault.location_index];
    let mut m = Lockstep::new(workload, cfg);
    while m.machine.instr_count() < fault.inject_at {
        m.step(cfg).expect("pre-injection run must be fault-free");
    }
    m.machine.scan_flip(location);
    bera_tcpu::trace::trace_run(&mut m.machine, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::golden_run;
    use bera_tcpu::scan::catalog;

    fn find(pred: impl Fn(&BitLocation) -> bool) -> usize {
        catalog().iter().position(pred).expect("location exists")
    }

    #[test]
    fn dead_state_fault_never_spreads() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(10);
        let fault = FaultSpec {
            location_index: find(|l| matches!(l, BitLocation::Save { index: 0, bit: 3 })),
            inject_at: 100,
        };
        let report = analyze(&w, &cfg, fault, 2_000);
        assert_eq!(report.initial_diff, 1);
        assert_eq!(report.spread_at, None, "supervisor save regs are dead");
        assert_eq!(report.output_diverged_at, None);
        assert_eq!(report.final_diff, 1, "the flip stays latent");
    }

    #[test]
    fn x_corruption_spreads_and_reaches_the_output() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(20);
        let golden = golden_run(&w, &cfg);
        let fault = FaultSpec {
            location_index: find(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 30 })),
            inject_at: golden.total_instructions / 3,
        };
        let report = analyze(&w, &cfg, fault, 5_000);
        assert!(report.spread_at.is_some(), "corrupted x must propagate");
        assert!(
            report.output_diverged_at.is_some() || report.detected.is_some(),
            "a high exponent bit of x must reach the output or trap: {report:?}"
        );
        if let (Some(spread), Some(out)) = (report.spread_at, report.output_diverged_at) {
            assert!(spread <= out, "state corruption precedes output corruption");
        }
    }

    #[test]
    fn scratch_fault_heals() {
        // A flip in a scrub register right at an iteration boundary gets
        // overwritten by the next scrub prologue.
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(10);
        let fault = FaultSpec {
            location_index: find(|l| matches!(l, BitLocation::Reg { index: 10, bit: 7 })),
            inject_at: 3,
        };
        let report = analyze(&w, &cfg, fault, 3_000);
        assert!(
            report.healed(),
            "scrub register flip must be overwritten: {report:?}"
        );
    }

    #[test]
    fn pc_fault_is_detected_in_window() {
        // A PC flip heals if the very next instruction is a taken control
        // transfer (which rewrites the PC); anywhere in straight-line code
        // it is caught when the prefetch from the wild address is consumed.
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(10);
        let location_index = find(|l| matches!(l, BitLocation::Pc { bit: 22 }));
        let detections = (5..25)
            .map(|inject_at| {
                analyze(
                    &w,
                    &cfg,
                    FaultSpec {
                        location_index,
                        inject_at,
                    },
                    2_000,
                )
            })
            .filter(|r| r.detected.is_some())
            .count();
        assert!(
            detections > 10,
            "most wild PCs must be caught: {detections}"
        );
    }

    #[test]
    fn detail_trace_starts_at_injection() {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(10);
        let fault = FaultSpec {
            location_index: 0,
            inject_at: 40,
        };
        let (entries, _) = detail_trace(&w, &cfg, fault, 50);
        assert_eq!(entries.first().unwrap().index, 40);
        // The trace ends at the window or at the next yield, whichever
        // comes first.
        assert!(!entries.is_empty() && entries.len() <= 50);
    }
}
