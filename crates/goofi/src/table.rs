//! Aggregation of campaign results into the paper's tables.
//!
//! [`tabulate`] turns a [`CampaignResult`] into a [`PaperTable`] with the
//! exact row structure of Tables 2 and 3 (per-mechanism detections, severe
//! and minor undetected wrong results, latent/overwritten, coverage — split
//! into Cache, Registers and Total columns, each with a 95 % confidence
//! interval). [`ComparisonTable`] renders the Table 4 comparison of two
//! campaigns with the severity split.

use crate::campaign::CampaignResult;
use crate::classify::{Outcome, Severity};
use bera_stats::proportion::Proportion;

use bera_tcpu::edm::ErrorMechanism;
use bera_tcpu::scan::CpuPart;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A row of the per-campaign table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowKind {
    /// Latent errors (non-effective).
    Latent,
    /// Overwritten errors (non-effective).
    Overwritten,
    /// Errors detected by a specific mechanism.
    Edm(ErrorMechanism),
    /// Errors whose detection GOOFI could not attribute; in this
    /// reproduction these are hangs.
    OtherErrors,
    /// Severe undetected wrong results (permanent + semi-permanent).
    SevereWrong,
    /// Minor undetected wrong results (transient + insignificant).
    MinorWrong,
    /// Experiments the harness quarantined instead of classifying
    /// (supervised execution's [`crate::classify::Outcome::HarnessFailure`]).
    HarnessFailure,
}

/// Aggregated campaign counts in the layout of the paper's Tables 2/3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperTable {
    workload: String,
    faults: HashMap<CpuPart, u64>,
    counts: HashMap<(RowKind, CpuPart), u64>,
    severities: HashMap<(Severity, CpuPart), u64>,
}

/// Summary of error-detection latencies (instructions from injection to
/// trap) over a campaign's detected errors.
#[must_use]
pub fn detection_latency_summary(result: &CampaignResult) -> bera_stats::Summary {
    result
        .records
        .iter()
        .filter_map(|r| r.detection_latency)
        .map(|l| l as f64)
        .collect()
}

/// Per-mechanism detection-latency summaries, in table order; mechanisms
/// that never fired are omitted.
#[must_use]
pub fn latency_by_mechanism(result: &CampaignResult) -> Vec<(ErrorMechanism, bera_stats::Summary)> {
    TABLE_MECHANISMS
        .iter()
        .filter_map(|&m| {
            let s: bera_stats::Summary = result
                .records
                .iter()
                .filter(|r| r.outcome == Outcome::Detected(m))
                .filter_map(|r| r.detection_latency)
                .map(|l| l as f64)
                .collect();
            (s.count() > 0).then_some((m, s))
        })
        .collect()
}

/// Builds the paper-style table from a campaign result.
#[must_use]
pub fn tabulate(result: &CampaignResult) -> PaperTable {
    let mut faults: HashMap<CpuPart, u64> = HashMap::new();
    let mut counts: HashMap<(RowKind, CpuPart), u64> = HashMap::new();
    let mut severities: HashMap<(Severity, CpuPart), u64> = HashMap::new();
    for rec in &result.records {
        *faults.entry(rec.part).or_default() += 1;
        let row = match rec.outcome {
            Outcome::Latent => RowKind::Latent,
            Outcome::Overwritten => RowKind::Overwritten,
            Outcome::Detected(m) => RowKind::Edm(m),
            Outcome::Hang => RowKind::OtherErrors,
            Outcome::ValueFailure(s) => {
                *severities.entry((s, rec.part)).or_default() += 1;
                if s.is_severe() {
                    RowKind::SevereWrong
                } else {
                    RowKind::MinorWrong
                }
            }
            Outcome::HarnessFailure(_) => RowKind::HarnessFailure,
        };
        *counts.entry((row, rec.part)).or_default() += 1;
    }
    PaperTable {
        workload: result.workload.clone(),
        faults,
        counts,
        severities,
    }
}

/// The two CPU parts in table order.
const PARTS: [CpuPart; 2] = [CpuPart::Cache, CpuPart::Registers];

/// The detection mechanisms listed in the paper's tables, in their order.
pub const TABLE_MECHANISMS: [ErrorMechanism; 13] = [
    ErrorMechanism::BusError,
    ErrorMechanism::AddressError,
    ErrorMechanism::DataError,
    ErrorMechanism::InstructionError,
    ErrorMechanism::JumpError,
    ErrorMechanism::ConstraintError,
    ErrorMechanism::AccessCheck,
    ErrorMechanism::StorageError,
    ErrorMechanism::OverflowCheck,
    ErrorMechanism::UnderflowCheck,
    ErrorMechanism::DivisionCheck,
    ErrorMechanism::IllegalOperation,
    ErrorMechanism::ControlFlowError,
];

impl PaperTable {
    /// Workload name.
    #[must_use]
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Faults injected into `part` (`None` = total).
    #[must_use]
    pub fn faults(&self, part: Option<CpuPart>) -> u64 {
        match part {
            Some(p) => self.faults.get(&p).copied().unwrap_or(0),
            None => self.faults.values().sum(),
        }
    }

    /// Total faults injected.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.faults(None)
    }

    /// Count in a row (`None` part = total).
    #[must_use]
    pub fn count(&self, row: RowKind, part: Option<CpuPart>) -> u64 {
        match part {
            Some(p) => self.counts.get(&(row, p)).copied().unwrap_or(0),
            None => PARTS
                .iter()
                .map(|&p| self.counts.get(&(row, p)).copied().unwrap_or(0))
                .sum(),
        }
    }

    /// Count of a specific value-failure severity.
    #[must_use]
    pub fn severity_count(&self, s: Severity, part: Option<CpuPart>) -> u64 {
        match part {
            Some(p) => self.severities.get(&(s, p)).copied().unwrap_or(0),
            None => PARTS
                .iter()
                .map(|&p| self.severities.get(&(s, p)).copied().unwrap_or(0))
                .sum(),
        }
    }

    /// Proportion of a row's count among the faults injected into `part`.
    #[must_use]
    pub fn proportion(&self, row: RowKind, part: Option<CpuPart>) -> Proportion {
        Proportion::new(self.count(row, part), self.faults(part))
    }

    /// Non-effective errors (latent + overwritten).
    #[must_use]
    pub fn non_effective(&self, part: Option<CpuPart>) -> u64 {
        self.count(RowKind::Latent, part) + self.count(RowKind::Overwritten, part)
    }

    /// Detected errors (all mechanisms + other/hangs).
    #[must_use]
    pub fn detected(&self, part: Option<CpuPart>) -> u64 {
        TABLE_MECHANISMS
            .iter()
            .map(|&m| self.count(RowKind::Edm(m), part))
            .sum::<u64>()
            + self.count(RowKind::OtherErrors, part)
    }

    /// Undetected wrong results (severe + minor).
    #[must_use]
    pub fn wrong_results(&self, part: Option<CpuPart>) -> u64 {
        self.count(RowKind::SevereWrong, part) + self.count(RowKind::MinorWrong, part)
    }

    /// Effective errors (detected + wrong results).
    #[must_use]
    pub fn effective(&self, part: Option<CpuPart>) -> u64 {
        self.detected(part) + self.wrong_results(part)
    }

    /// Experiments quarantined by the supervisor (no target outcome).
    #[must_use]
    pub fn harness_failures(&self, part: Option<CpuPart>) -> u64 {
        self.count(RowKind::HarnessFailure, part)
    }

    /// Error-detection coverage: 1 − P(undetected wrong result).
    #[must_use]
    pub fn coverage(&self, part: Option<CpuPart>) -> Proportion {
        let n = self.faults(part);
        Proportion::new(n - self.wrong_results(part), n)
    }

    /// Percentage of value failures that are severe — the paper's headline
    /// numbers: 10.7 % for Algorithm I, 3.2 % for Algorithm II.
    #[must_use]
    pub fn severe_share_of_failures(&self) -> Proportion {
        Proportion::new(
            self.count(RowKind::SevereWrong, None),
            self.wrong_results(None).max(1),
        )
    }

    fn cell(&self, count: u64, part: Option<CpuPart>) -> String {
        let p = Proportion::new(count, self.faults(part));
        format!("{:>18} {:>5}", p.normal_ci95().to_string(), count)
    }

    fn row(&self, label: &str, counts: [u64; 3]) -> String {
        format!(
            "{label:<38}{}{}{}\n",
            self.cell(counts[0], Some(CpuPart::Cache)),
            self.cell(counts[1], Some(CpuPart::Registers)),
            self.cell(counts[2], None),
        )
    }

    /// Exports the table as CSV (`row,cache_count,registers_count,total_count`)
    /// for downstream analysis.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("row,cache,registers,total\n");
        let mut push = |label: &str, f: &dyn Fn(Option<CpuPart>) -> u64| {
            out.push_str(&format!(
                "{label},{},{},{}\n",
                f(Some(CpuPart::Cache)),
                f(Some(CpuPart::Registers)),
                f(None)
            ));
        };
        push("faults", &|p| self.faults(p));
        push("latent", &|p| self.count(RowKind::Latent, p));
        push("overwritten", &|p| self.count(RowKind::Overwritten, p));
        for m in TABLE_MECHANISMS {
            push(m.table_name(), &|p| self.count(RowKind::Edm(m), p));
        }
        push("other", &|p| self.count(RowKind::OtherErrors, p));
        push("uwr_severe", &|p| self.count(RowKind::SevereWrong, p));
        push("uwr_minor", &|p| self.count(RowKind::MinorWrong, p));
        push("harness_failure", &|p| self.harness_failures(p));
        out
    }

    /// Renders the table in the layout of the paper's Tables 2/3.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Results for {}\n", self.workload));
        out.push_str(&format!(
            "{:<38}{:>24}{:>24}{:>24}\n",
            "Part of CPU fault injected", "Cache", "Registers", "Total"
        ));
        out.push_str(&format!(
            "{:<38}{:>24}{:>24}{:>24}\n",
            "(faults injected)",
            self.faults(Some(CpuPart::Cache)),
            self.faults(Some(CpuPart::Registers)),
            self.total_faults()
        ));
        let per_part = |f: &dyn Fn(Option<CpuPart>) -> u64| {
            [
                f(Some(CpuPart::Cache)),
                f(Some(CpuPart::Registers)),
                f(None),
            ]
        };
        out.push_str(&self.row(
            "Latent Errors",
            per_part(&|p| self.count(RowKind::Latent, p)),
        ));
        out.push_str(&self.row(
            "Overwritten Errors",
            per_part(&|p| self.count(RowKind::Overwritten, p)),
        ));
        out.push_str(&self.row(
            "Total (Non Effective Errors)",
            per_part(&|p| self.non_effective(p)),
        ));
        for m in TABLE_MECHANISMS {
            out.push_str(&self.row(
                m.table_name(),
                per_part(&|p| self.count(RowKind::Edm(m), p)),
            ));
        }
        out.push_str(&self.row(
            "Other Errors",
            per_part(&|p| self.count(RowKind::OtherErrors, p)),
        ));
        out.push_str(&self.row(
            "Undetected Wrong Results (Severe)",
            per_part(&|p| self.count(RowKind::SevereWrong, p)),
        ));
        out.push_str(&self.row(
            "Undetected Wrong Results (Minor)",
            per_part(&|p| self.count(RowKind::MinorWrong, p)),
        ));
        out.push_str(&self.row("Total (Effective Errors)", per_part(&|p| self.effective(p))));
        out.push_str(&self.row(
            "Total (Undetected Wrong Results)",
            per_part(&|p| self.wrong_results(p)),
        ));
        // Quarantined experiments are outside the paper's taxonomy; the row
        // only appears when the supervisor actually quarantined something,
        // so healthy campaigns render byte-identically to the paper layout.
        if self.harness_failures(None) > 0 {
            out.push_str(&self.row(
                "Harness Failures (Quarantined)",
                per_part(&|p| self.harness_failures(p)),
            ));
        }
        out.push_str(&format!(
            "{:<38}{:>24}{:>24}{:>24}\n",
            "Coverage",
            self.coverage(Some(CpuPart::Cache))
                .normal_ci95()
                .to_string(),
            self.coverage(Some(CpuPart::Registers))
                .normal_ci95()
                .to_string(),
            self.coverage(None).normal_ci95().to_string(),
        ));
        out
    }
}

impl fmt::Display for PaperTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The Table 4 comparison of two campaigns (Algorithm I vs Algorithm II),
/// with the value-failure severity split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonTable {
    /// Aggregation of the first campaign (Algorithm I in the paper).
    pub first: PaperTable,
    /// Aggregation of the second campaign (Algorithm II in the paper).
    pub second: PaperTable,
}

impl ComparisonTable {
    /// Builds the comparison from two campaign results.
    #[must_use]
    pub fn new(first: &CampaignResult, second: &CampaignResult) -> Self {
        ComparisonTable {
            first: tabulate(first),
            second: tabulate(second),
        }
    }

    fn row(&self, label: &str, f: &dyn Fn(&PaperTable) -> u64) -> String {
        let cell = |t: &PaperTable| {
            let p = Proportion::new(f(t), t.total_faults());
            format!("{:>20} {:>6}", p.normal_ci95().to_string(), f(t))
        };
        format!("{label:<46}{}{}\n", cell(&self.first), cell(&self.second))
    }

    /// Renders the comparison in the layout of the paper's Table 4.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<46}{:>27}{:>27}\n",
            "",
            format!("Results for {}", self.first.workload()),
            format!("Results for {}", self.second.workload()),
        ));
        out.push_str(&self.row("Total (Non Effective Errors)", &|t| t.non_effective(None)));
        out.push_str(&self.row("Total (Detected Errors)", &|t| t.detected(None)));
        for (label, sev) in [
            ("Undetected Wrong Results (Permanent)", Severity::Permanent),
            (
                "Undetected Wrong Results (Semi-Permanent)",
                Severity::SemiPermanent,
            ),
            ("Undetected Wrong Results (Transient)", Severity::Transient),
            (
                "Undetected Wrong Results (Insignificant)",
                Severity::Insignificant,
            ),
        ] {
            out.push_str(&self.row(label, &|t| t.severity_count(sev, None)));
        }
        out.push_str(&self.row("Total (Undetected Wrong Results)", &|t| {
            t.wrong_results(None)
        }));
        out.push_str(&self.row("Total (Effective Errors)", &|t| t.effective(None)));
        out.push_str(&format!(
            "{:<46}{:>27}{:>27}\n",
            "Total (Faults Injected)",
            self.first.total_faults(),
            self.second.total_faults()
        ));
        out.push_str(&format!(
            "\nSevere share of value failures: {} vs {}\n",
            self.first.severe_share_of_failures().normal_ci95(),
            self.second.severe_share_of_failures().normal_ci95()
        ));
        out
    }

    /// Exports the Table 4 comparison as CSV: one data column per
    /// campaign, in the same row structure as [`ComparisonTable::render`].
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = format!("row,{},{}\n", self.first.workload(), self.second.workload());
        let mut push = |label: &str, f: &dyn Fn(&PaperTable) -> u64| {
            out.push_str(&format!("{label},{},{}\n", f(&self.first), f(&self.second)));
        };
        push("faults", &|t| t.total_faults());
        push("non_effective", &|t| t.non_effective(None));
        push("detected", &|t| t.detected(None));
        for (label, sev) in [
            ("uwr_permanent", Severity::Permanent),
            ("uwr_semi_permanent", Severity::SemiPermanent),
            ("uwr_transient", Severity::Transient),
            ("uwr_insignificant", Severity::Insignificant),
        ] {
            push(label, &|t| t.severity_count(sev, None));
        }
        push("uwr_total", &|t| t.wrong_results(None));
        push("effective", &|t| t.effective(None));
        push("harness_failure", &|t| t.harness_failures(None));
        out
    }
}

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A per-fault-model severity breakdown: one column per campaign, labelled
/// by its fault model, in the row structure of the paper's tables. Because
/// each column is a plain [`PaperTable`] of that campaign's records, the
/// single-bit column of a breakdown reproduces [`tabulate`]'s numbers for
/// that campaign exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBreakdown {
    columns: Vec<(String, PaperTable)>,
}

impl ModelBreakdown {
    /// Builds the breakdown from `(fault-model label, campaign)` pairs,
    /// one column each, in the given order.
    #[must_use]
    pub fn new(groups: &[(String, &CampaignResult)]) -> Self {
        ModelBreakdown {
            columns: groups
                .iter()
                .map(|(label, result)| (label.clone(), tabulate(result)))
                .collect(),
        }
    }

    /// The aggregated column for `label`, if present.
    #[must_use]
    pub fn column(&self, label: &str) -> Option<&PaperTable> {
        self.columns
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, t)| t)
    }

    /// Column labels in table order.
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        self.columns.iter().map(|(l, _)| l.as_str()).collect()
    }

    fn row(&self, label: &str, f: &dyn Fn(&PaperTable) -> u64) -> String {
        let mut out = format!("{label:<46}");
        for (_, t) in &self.columns {
            let p = Proportion::new(f(t), t.total_faults());
            out.push_str(&format!("{:>20} {:>6}", p.normal_ci95().to_string(), f(t)));
        }
        out.push('\n');
        out
    }

    /// Renders the per-model breakdown.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<46}", "Fault model"));
        for (label, _) in &self.columns {
            out.push_str(&format!("{label:>27}"));
        }
        out.push('\n');
        out.push_str(&format!("{:<46}", "Total (Faults Injected)"));
        for (_, t) in &self.columns {
            out.push_str(&format!("{:>27}", t.total_faults()));
        }
        out.push('\n');
        out.push_str(&self.row("Latent Errors", &|t| t.count(RowKind::Latent, None)));
        out.push_str(&self.row("Overwritten Errors", &|t| {
            t.count(RowKind::Overwritten, None)
        }));
        out.push_str(&self.row("Total (Non Effective Errors)", &|t| t.non_effective(None)));
        out.push_str(&self.row("Total (Detected Errors)", &|t| t.detected(None)));
        for (label, sev) in [
            ("Undetected Wrong Results (Permanent)", Severity::Permanent),
            (
                "Undetected Wrong Results (Semi-Permanent)",
                Severity::SemiPermanent,
            ),
            ("Undetected Wrong Results (Transient)", Severity::Transient),
            (
                "Undetected Wrong Results (Insignificant)",
                Severity::Insignificant,
            ),
        ] {
            out.push_str(&self.row(label, &|t| t.severity_count(sev, None)));
        }
        out.push_str(&self.row("Total (Undetected Wrong Results)", &|t| {
            t.wrong_results(None)
        }));
        out.push_str(&self.row("Total (Effective Errors)", &|t| t.effective(None)));
        out.push_str(&self.row("Harness Failures (Quarantined)", &|t| {
            t.harness_failures(None)
        }));
        out.push_str(&format!("{:<46}", "Coverage"));
        for (_, t) in &self.columns {
            out.push_str(&format!(
                "{:>27}",
                t.coverage(None).normal_ci95().to_string()
            ));
        }
        out.push('\n');
        out
    }

    /// Exports the breakdown as CSV: one data column per fault model.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("row");
        for (label, _) in &self.columns {
            out.push_str(&format!(",{label}"));
        }
        out.push('\n');
        let mut push = |label: &str, f: &dyn Fn(&PaperTable) -> u64| {
            out.push_str(label);
            for (_, t) in &self.columns {
                out.push_str(&format!(",{}", f(t)));
            }
            out.push('\n');
        };
        push("faults", &|t| t.total_faults());
        push("latent", &|t| t.count(RowKind::Latent, None));
        push("overwritten", &|t| t.count(RowKind::Overwritten, None));
        for m in TABLE_MECHANISMS {
            push(m.table_name(), &|t| t.count(RowKind::Edm(m), None));
        }
        push("other", &|t| t.count(RowKind::OtherErrors, None));
        push("uwr_severe", &|t| t.count(RowKind::SevereWrong, None));
        push("uwr_minor", &|t| t.count(RowKind::MinorWrong, None));
        push("harness_failure", &|t| t.harness_failures(None));
        out
    }
}

impl fmt::Display for ModelBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_scifi_campaign, CampaignConfig};
    use crate::workload::Workload;

    fn small_result() -> CampaignResult {
        run_scifi_campaign(&Workload::algorithm_one(), &CampaignConfig::quick(60, 5))
    }

    #[test]
    fn counts_are_consistent() {
        let r = small_result();
        let t = tabulate(&r);
        assert_eq!(t.total_faults(), 60);
        assert_eq!(
            t.non_effective(None) + t.effective(None),
            t.total_faults(),
            "every fault is classified exactly once"
        );
        assert_eq!(
            t.faults(Some(CpuPart::Cache)) + t.faults(Some(CpuPart::Registers)),
            t.total_faults()
        );
        assert_eq!(
            t.severity_count(Severity::Permanent, None)
                + t.severity_count(Severity::SemiPermanent, None),
            t.count(RowKind::SevereWrong, None)
        );
        assert_eq!(
            t.severity_count(Severity::Transient, None)
                + t.severity_count(Severity::Insignificant, None),
            t.count(RowKind::MinorWrong, None)
        );
    }

    #[test]
    fn coverage_complements_wrong_results() {
        let r = small_result();
        let t = tabulate(&r);
        let cov = t.coverage(None);
        let uwr = Proportion::new(t.wrong_results(None), t.total_faults());
        assert!((cov.estimate() + uwr.estimate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_all_rows() {
        let r = small_result();
        let t = tabulate(&r);
        let s = t.render();
        for needle in [
            "Latent Errors",
            "Overwritten Errors",
            "Address Error",
            "Control Flow Errors",
            "Undetected Wrong Results (Severe)",
            "Coverage",
            "Cache",
            "Registers",
            "Total",
        ] {
            assert!(s.contains(needle), "missing row {needle}\n{s}");
        }
    }

    #[test]
    fn csv_export_has_all_rows() {
        let r = small_result();
        let t = tabulate(&r);
        let csv = t.to_csv();
        assert!(csv.starts_with("row,cache,registers,total"));
        assert!(csv.contains("uwr_severe"));
        assert!(csv.contains("Address Error"));
        // faults row must sum to the campaign size.
        let faults_line = csv.lines().find(|l| l.starts_with("faults")).unwrap();
        assert!(faults_line.ends_with(",60"), "{faults_line}");
    }

    #[test]
    fn latency_by_mechanism_partitions_detections() {
        let r = small_result();
        let by_mech = latency_by_mechanism(&r);
        let total: u64 = by_mech.iter().map(|(_, s)| s.count()).sum();
        assert_eq!(total, detection_latency_summary(&r).count());
        for (_, s) in &by_mech {
            assert!(s.count() > 0);
        }
    }

    #[test]
    fn detection_latency_summary_counts_detections() {
        let r = small_result();
        let s = detection_latency_summary(&r);
        let detected = r
            .records
            .iter()
            .filter(|rec| matches!(rec.outcome, Outcome::Detected(_)))
            .count() as u64;
        assert_eq!(s.count(), detected);
        if s.count() > 0 {
            assert!(s.min().unwrap() >= 0.0);
        }
    }

    #[test]
    fn model_breakdown_single_bit_column_matches_plain_tabulation() {
        // The per-model report must be a pure regrouping: its single-bit
        // column renders byte-identically to today's plain table.
        let r = small_result();
        let breakdown = ModelBreakdown::new(&[("single".to_string(), &r)]);
        let column = breakdown.column("single").expect("column exists");
        assert_eq!(column.render(), tabulate(&r).render());
        assert_eq!(column.to_csv(), tabulate(&r).to_csv());
        assert_eq!(breakdown.labels(), vec!["single"]);
    }

    #[test]
    fn model_breakdown_renders_one_column_per_model() {
        let single = small_result();
        let mut cfg = CampaignConfig::quick(40, 9);
        cfg.fault_model = crate::experiment::FaultModel::Burst { width: 3 };
        let burst = run_scifi_campaign(&Workload::algorithm_one(), &cfg);
        let breakdown = ModelBreakdown::new(&[
            ("single".to_string(), &single),
            ("burst:3".to_string(), &burst),
        ]);
        let s = breakdown.render();
        for needle in [
            "Fault model",
            "single",
            "burst:3",
            "Latent Errors",
            "Undetected Wrong Results (Permanent)",
            "Coverage",
        ] {
            assert!(s.contains(needle), "missing {needle}\n{s}");
        }
        let csv = breakdown.to_csv();
        assert!(csv.starts_with("row,single,burst:3"), "{csv}");
    }

    #[test]
    fn comparison_table_renders() {
        let a = small_result();
        let b = run_scifi_campaign(&Workload::algorithm_two(), &CampaignConfig::quick(50, 6));
        let cmp = ComparisonTable::new(&a, &b);
        let s = cmp.render();
        assert!(s.contains("Algorithm I"));
        assert!(s.contains("Algorithm II"));
        assert!(s.contains("Permanent"));
        assert!(s.contains("Severe share"));

        // The CSV export mirrors the rendered rows: same totals, one data
        // column per campaign, and the classification sums close.
        let csv = cmp.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("row,Algorithm I,Algorithm II"));
        let row = |name: &str| -> (u64, u64) {
            let line = csv
                .lines()
                .find(|l| l.starts_with(&format!("{name},")))
                .unwrap_or_else(|| panic!("missing row {name}\n{csv}"));
            let mut cells = line.split(',').skip(1);
            (
                cells.next().unwrap().parse().unwrap(),
                cells.next().unwrap().parse().unwrap(),
            )
        };
        assert_eq!(row("faults"), (60, 50));
        let (ne_a, ne_b) = row("non_effective");
        let (ef_a, ef_b) = row("effective");
        assert_eq!(ne_a + ef_a, 60, "every fault classified exactly once");
        assert_eq!(ne_b + ef_b, 50);
    }
}
