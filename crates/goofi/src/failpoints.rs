//! Deterministic failure injection for the campaign plane itself.
//!
//! The paper's discipline — executable assertions plus best-effort
//! recovery — is applied here to our own infrastructure: the store,
//! resume, supervisor and parallel-claim layers are stateful systems that
//! must never lose or corrupt a record, and that claim is only credible if
//! it survives *injected* crashes at every durability boundary. This
//! module provides the failpoints: named program points ([`CATALOG`])
//! instrumented with the [`fp!`](crate::fp) / [`fp_nofail!`](crate::fp_nofail)
//! macros, each of which can be armed from a test (or the `campaign` CLI's
//! `--failpoint id=action` flag) with a deterministic [`Action`]:
//!
//! | action         | effect at the failpoint                             |
//! |----------------|-----------------------------------------------------|
//! | `return-error` | the enclosing function returns an injected I/O error |
//! | `panic`        | the thread panics (exercises supervision/self-heal) |
//! | `crash`        | the process aborts — state persists on disk         |
//! | `delay:MS`     | the thread sleeps `MS` milliseconds                 |
//!
//! A spec may append `@N` (1-based) to arm the action from the Nth hit of
//! that failpoint onward (`store.append.before-write=crash@5` crashes the
//! fifth record append), which lets a test crash *mid*-campaign rather
//! than at the first touch of a boundary.
//!
//! The registry is process-global and thread-safe; the catalog is the
//! closed set of valid IDs, so a typo in a spec is an error rather than a
//! silently dead failpoint. `tests/crash_recovery.rs` drives every
//! catalog entry through a crash-then-recover scenario, and
//! `ASSURANCE.md` maps each ID to the invariant it guards, the test that
//! proves it, and the CI gate that enforces it (`tests/assurance_map.rs`
//! keeps that table honest).
//!
//! # Cost
//!
//! Without the `failpoints` cargo feature the macros expand to nothing:
//! the instrumented hot paths (record append, claim loop) carry zero
//! extra instructions, and the default build/test/bench pipelines are
//! byte-for-byte the code they were before this module existed. With the
//! feature enabled but no failpoint armed, a hit is one relaxed atomic
//! load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// `true` when this build carries the failpoint instrumentation (the
/// `failpoints` cargo feature). The registry below always compiles — the
/// catalog is needed by the assurance tests regardless — but without the
/// feature no program point ever consults it.
pub const ENABLED: bool = cfg!(feature = "failpoints");

/// One failpoint in the catalog: a stable ID and where/what it guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailpointDef {
    /// Stable identifier, namespaced `area.site` (CLI/test facing).
    pub id: &'static str,
    /// The durability boundary the failpoint sits on.
    pub site: &'static str,
    /// Whether the site can propagate `return-error` (it sits in a
    /// `Result` function). At `nofail` sites `return-error` is a
    /// configuration error and panics with a message saying so.
    pub can_return_error: bool,
}

/// The closed catalog of failpoints. Every entry is instrumented at
/// exactly one program point; `tests/crash_recovery.rs` must exercise a
/// `crash` scenario for each, and `ASSURANCE.md` must map each to its
/// invariant (both enforced by `tests/assurance_map.rs`).
pub const CATALOG: &[FailpointDef] = &[
    FailpointDef {
        id: "store.create.before-header",
        site: "JsonlStore::create, after the file exists but before the header line is written",
        can_return_error: true,
    },
    FailpointDef {
        id: "store.create.after-header",
        site: "JsonlStore::create, after the header line is flushed but before it is synced",
        can_return_error: true,
    },
    FailpointDef {
        id: "store.append.before-write",
        site: "record append, before the checksummed line reaches the writer",
        can_return_error: true,
    },
    FailpointDef {
        id: "store.append.after-write",
        site: "record append, after the line is buffered but before the flush",
        can_return_error: true,
    },
    FailpointDef {
        id: "store.append.after-flush",
        site: "record append, after the checksum line flush completes",
        can_return_error: true,
    },
    FailpointDef {
        id: "store.resume.before-truncate",
        site: "JsonlStore::open_resume, torn tail detected but not yet truncated",
        can_return_error: true,
    },
    FailpointDef {
        id: "store.resume.after-truncate",
        site: "JsonlStore::open_resume, tail truncated but append writer not yet reopened",
        can_return_error: true,
    },
    FailpointDef {
        id: "sidecar.before-write",
        site: "telemetry sidecar, before the temporary file is written",
        can_return_error: true,
    },
    FailpointDef {
        id: "sidecar.before-rename",
        site: "telemetry sidecar, temporary file written but not yet renamed into place",
        can_return_error: true,
    },
    FailpointDef {
        id: "experiment.attempt",
        site: "supervised experiment attempt, inside the containment boundary \
               (arm with `panic` to drive the retry/quarantine paths)",
        can_return_error: false,
    },
    FailpointDef {
        id: "supervisor.before-retry",
        site: "supervisor, first attempt failed but the stride-0 retry has not started",
        can_return_error: false,
    },
    FailpointDef {
        id: "supervisor.before-quarantine",
        site: "supervisor, both attempts failed but the quarantine record is not yet emitted",
        can_return_error: false,
    },
    FailpointDef {
        id: "campaign.claim",
        site: "fault-list scheduler, a worker claimed an index but has not run it",
        can_return_error: false,
    },
    FailpointDef {
        id: "campaign.self-heal",
        site: "fault-list scheduler, workers joined but lost claims not yet re-run",
        can_return_error: false,
    },
    FailpointDef {
        id: "farm.lease.claim",
        site: "farm worker, lease file created exclusively but the shard not yet started",
        can_return_error: true,
    },
    FailpointDef {
        id: "farm.lease.heartbeat",
        site: "farm worker heartbeat, before the lease mtime refresh is written",
        can_return_error: true,
    },
    FailpointDef {
        id: "farm.lease.reclaim",
        site: "farm reclaim, expired lease renamed aside but not yet deleted",
        can_return_error: true,
    },
    FailpointDef {
        id: "farm.segment.finalize",
        site: "farm worker, segment complete and flushed but the done marker not yet durable",
        can_return_error: true,
    },
    FailpointDef {
        id: "farm.merge.segment",
        site: "farm merge, next segment validated but its records not yet folded in",
        can_return_error: true,
    },
    FailpointDef {
        id: "farm.merge.publish",
        site: "farm merge, canonical store written to a temp file but not yet renamed into place",
        can_return_error: true,
    },
];

/// Looks an ID up in [`CATALOG`].
#[must_use]
pub fn catalog_entry(id: &str) -> Option<&'static FailpointDef> {
    CATALOG.iter().find(|d| d.id == id)
}

/// What an armed failpoint does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Make the enclosing function return an injected `io::Error`
    /// (`Result` sites only; see [`FailpointDef::can_return_error`]).
    ReturnError,
    /// Panic the hitting thread — exercises supervision and self-healing.
    Panic,
    /// Abort the process ([`std::process::abort`]); on-disk state persists
    /// exactly as the crash left it, which is the whole point.
    Crash,
    /// Sleep for the given duration, then continue.
    Delay(Duration),
}

/// A parsed `--failpoint` spec: the action plus the hit from which it
/// arms (`@N`, 1-based; hits before the Nth pass through untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmedAction {
    /// What to do once armed.
    pub action: Action,
    /// First hit (1-based) at which the action fires.
    pub from_hit: u64,
}

struct Entry {
    armed: ArmedAction,
    hits: u64,
}

/// Count of armed failpoints, letting the hit path skip the registry lock
/// entirely when nothing is armed (the overwhelmingly common case even in
/// failpoint-enabled test builds).
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<&'static str, Entry>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<&'static str, Entry>> {
    // A panic action unwinding through a hit poisons the mutex; that is
    // expected operation here, not corruption (the map is only mutated
    // under the lock by configure/clear).
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms failpoint `id` with `armed`. The ID must exist in [`CATALOG`].
///
/// # Errors
///
/// Returns a message naming the unknown ID.
pub fn set(id: &str, armed: ArmedAction) -> Result<(), String> {
    let def = catalog_entry(id)
        .ok_or_else(|| format!("unknown failpoint `{id}` (see bera_goofi::failpoints::CATALOG)"))?;
    let mut map = lock();
    if map.insert(def.id, Entry { armed, hits: 0 }).is_none() {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
    Ok(())
}

/// Disarms failpoint `id` (a no-op if it was not armed).
pub fn clear(id: &str) {
    let mut map = lock();
    if map.remove(id).is_some() {
        ARMED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Disarms every failpoint and resets all hit counters.
pub fn clear_all() {
    let mut map = lock();
    let n = map.len();
    map.clear();
    ARMED.fetch_sub(n, Ordering::SeqCst);
}

/// Parses and arms one `id=action[@N]` spec, the grammar of the campaign
/// CLI's `--failpoint` flag:
///
/// ```text
/// store.append.before-write=crash@5
/// experiment.attempt=panic
/// store.create.before-header=return-error
/// store.append.after-flush=delay:25
/// ```
///
/// # Errors
///
/// Returns a message describing the malformed spec, the unknown ID, or
/// the unknown action.
pub fn configure(spec: &str) -> Result<(), String> {
    let (id, rest) = spec
        .split_once('=')
        .ok_or_else(|| format!("failpoint spec `{spec}` is not `id=action[@N]`"))?;
    let (action_text, from_hit) = match rest.split_once('@') {
        Some((a, n)) => {
            let n: u64 = n
                .parse()
                .map_err(|e| format!("failpoint spec `{spec}`: bad hit count: {e}"))?;
            if n == 0 {
                return Err(format!("failpoint spec `{spec}`: hit counts are 1-based"));
            }
            (a, n)
        }
        None => (rest, 1),
    };
    let action = match action_text {
        "return-error" => Action::ReturnError,
        "panic" => Action::Panic,
        "crash" => Action::Crash,
        other => match other.strip_prefix("delay:") {
            Some(ms) => {
                let ms: u64 = ms
                    .parse()
                    .map_err(|e| format!("failpoint spec `{spec}`: bad delay: {e}"))?;
                Action::Delay(Duration::from_millis(ms))
            }
            None => {
                return Err(format!(
                    "failpoint spec `{spec}`: unknown action `{other}` \
                     (expected return-error|panic|crash|delay:MS)"
                ))
            }
        },
    };
    set(id, ArmedAction { action, from_hit })
}

fn fire(id: &str, action: Action) -> Option<std::io::Error> {
    match action {
        Action::ReturnError => Some(std::io::Error::other(format!(
            "failpoint {id}: injected error"
        ))),
        Action::Panic => panic!("failpoint {id}: forced panic"),
        Action::Crash => {
            // stderr so a test harness can see where the child died.
            eprintln!("failpoint {id}: aborting process");
            std::process::abort();
        }
        Action::Delay(d) => {
            std::thread::sleep(d);
            None
        }
    }
}

/// Registers a hit of failpoint `id` and performs its armed action, if
/// any. Returns `Some(error)` for `return-error` (the [`fp!`](crate::fp)
/// macro propagates it); panics, aborts, or sleeps in place for the other
/// actions. Called by the macros — instrumented code should not call it
/// directly.
#[must_use]
pub fn hit(id: &str) -> Option<std::io::Error> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let action = {
        let mut map = lock();
        let entry = map.get_mut(id)?;
        entry.hits += 1;
        if entry.hits < entry.armed.from_hit {
            return None;
        }
        entry.armed.action
    }; // lock released before any panic/sleep
    fire(id, action)
}

/// Like [`hit`], for sites that cannot propagate an error. Arming such a
/// site with `return-error` is a configuration mistake and panics with a
/// message saying so.
pub fn hit_nofail(id: &str) {
    if let Some(e) = hit(id) {
        panic!("failpoint {id}: return-error armed at a site that cannot return errors ({e})");
    }
}

/// Instruments a durability boundary inside a function returning
/// `Result<_, E>` where `E: From<std::io::Error>`. Expands to nothing
/// without the `failpoints` feature.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fp {
    ($id:literal) => {
        if let Some(e) = $crate::failpoints::hit($id) {
            return Err(e.into());
        }
    };
}

/// Instruments a durability boundary inside a function returning
/// `Result<_, E>` where `E: From<std::io::Error>`. Expands to nothing
/// without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fp {
    ($id:literal) => {};
}

/// Instruments a program point that cannot propagate errors (`crash`,
/// `panic` and `delay` actions only). Expands to nothing without the
/// `failpoints` feature.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fp_nofail {
    ($id:literal) => {
        $crate::failpoints::hit_nofail($id)
    };
}

/// Instruments a program point that cannot propagate errors (`crash`,
/// `panic` and `delay` actions only). Expands to nothing without the
/// `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fp_nofail {
    ($id:literal) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry state is process-global; tests that arm failpoints
    /// serialize on this lock so `cargo test`'s thread pool cannot
    /// interleave them.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn catalog_ids_are_unique_and_namespaced() {
        let mut seen = std::collections::BTreeSet::new();
        for def in CATALOG {
            assert!(seen.insert(def.id), "duplicate failpoint id {}", def.id);
            assert!(
                def.id.contains('.'),
                "failpoint id `{}` is not namespaced",
                def.id
            );
            assert_eq!(def.id, def.id.to_lowercase());
        }
    }

    #[test]
    fn unarmed_hit_is_a_no_op() {
        let _g = guard();
        clear_all();
        assert!(hit("store.append.before-write").is_none());
        hit_nofail("campaign.claim");
    }

    #[test]
    fn unknown_id_is_rejected() {
        let _g = guard();
        assert!(configure("store.apend.before-write=crash").is_err());
        assert!(set(
            "no.such.point",
            ArmedAction {
                action: Action::Panic,
                from_hit: 1
            }
        )
        .is_err());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = guard();
        assert!(configure("store.append.before-write").is_err());
        assert!(configure("store.append.before-write=explode").is_err());
        assert!(configure("store.append.before-write=crash@0").is_err());
        assert!(configure("store.append.before-write=delay:abc").is_err());
        assert!(configure("store.append.before-write=crash@x").is_err());
    }

    #[test]
    fn return_error_fires_from_the_nth_hit() {
        let _g = guard();
        clear_all();
        configure("store.append.before-write=return-error@3").unwrap();
        assert!(hit("store.append.before-write").is_none());
        assert!(hit("store.append.before-write").is_none());
        let e = hit("store.append.before-write").expect("third hit fires");
        assert!(e.to_string().contains("store.append.before-write"));
        // ...and keeps firing after N.
        assert!(hit("store.append.before-write").is_some());
        clear_all();
        assert!(hit("store.append.before-write").is_none());
    }

    #[test]
    fn panic_action_panics_with_the_id() {
        let _g = guard();
        clear_all();
        configure("experiment.attempt=panic").unwrap();
        let caught = std::panic::catch_unwind(|| hit_nofail("experiment.attempt"));
        clear_all();
        let payload = caught.expect_err("panic action must panic");
        let text = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(text.contains("failpoint experiment.attempt"), "{text}");
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let _g = guard();
        clear_all();
        configure("store.append.after-flush=delay:20").unwrap();
        let t = std::time::Instant::now();
        assert!(hit("store.append.after-flush").is_none());
        assert!(t.elapsed() >= Duration::from_millis(20));
        clear_all();
    }

    #[test]
    fn return_error_at_a_nofail_site_is_a_loud_misconfiguration() {
        let _g = guard();
        clear_all();
        configure("campaign.claim=return-error").unwrap();
        let caught = std::panic::catch_unwind(|| hit_nofail("campaign.claim"));
        clear_all();
        assert!(caught.is_err(), "nofail site must reject return-error");
    }
}
