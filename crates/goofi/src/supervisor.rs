//! Supervised, self-healing experiment execution.
//!
//! A fault-injection harness must be more robust than the system it
//! injects faults into: one panicking or runaway experiment must not abort
//! a 10k-fault campaign and lose all in-flight work. The supervisor wraps
//! each experiment in three layers of containment:
//!
//! 1. **Panic isolation** — the experiment runs behind
//!    [`std::panic::catch_unwind`]; the simulated machine is rebuilt per
//!    attempt, so no shared state observes a broken invariant.
//! 2. **Wall-clock watchdog** — on top of the dynamic instruction cap (a
//!    *target*-side hang detector), an optional host-side deadline aborts
//!    the run at the next iteration boundary. The deadline never alters
//!    target execution, so every *classified* record stays
//!    bit-deterministic.
//! 3. **Retry, then quarantine** — a failed attempt is retried exactly
//!    once with checkpointing disabled (stride-0 full replay, in case the
//!    fast-forward path itself is implicated); a second failure produces a
//!    terminal [`Outcome::HarnessFailure`] record carrying the panic
//!    payload or deadline cause, which flows through the store, the
//!    observer events and the offline report like any other outcome.
//!
//! The state machine per fault:
//!
//! ```text
//! attempt 1 (campaign config) ──ok──▶ classified record
//!        │ panic / deadline
//!        ▼  (experiment_retried event)
//! attempt 2 (stride 0, no checkpoints) ──ok──▶ classified record
//!        │ panic / deadline
//!        ▼
//! quarantine: Outcome::HarnessFailure(cause) record
//! ```
//!
//! [`ChaosHarness`] exists for testing the supervisor itself: it forces
//! panics or stalls at chosen fault indices *inside* the containment
//! boundary, so the quarantine suite can prove a campaign completes.

use crate::classify::{HarnessCause, Outcome};
use crate::experiment::{
    run_experiment_watchdog, ExperimentRecord, FaultSpec, GoldenRun, LoopConfig, WatchdogExpired,
};
use crate::observer::CampaignObserver;
use crate::workload::Workload;
use bera_tcpu::scan;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How campaign experiments are supervised.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Wall-clock budget per experiment *attempt*. `None` disables the
    /// watchdog; the dynamic instruction cap still bounds target progress.
    pub deadline: Option<Duration>,
    /// Fault-injection for the fault injector itself — forces panics or
    /// stalls at chosen indices so the containment path can be tested.
    /// `None` (the default) leaves experiments untouched.
    pub chaos: Option<Arc<ChaosHarness>>,
}

impl SupervisorConfig {
    /// Supervision with a per-attempt wall-clock deadline.
    #[must_use]
    pub fn with_deadline(deadline: Duration) -> Self {
        SupervisorConfig {
            deadline: Some(deadline),
            ..SupervisorConfig::default()
        }
    }
}

/// Deliberately sabotages chosen experiments, from *inside* the
/// supervisor's containment boundary. Purely a test fixture: it lets the
/// quarantine suite prove that a campaign containing panicking and
/// deadline-blowing experiments still runs to completion.
#[derive(Debug, Default)]
pub struct ChaosHarness {
    /// Fault indices that panic on every attempt (quarantined).
    pub panic_on: BTreeSet<usize>,
    /// Fault indices that panic on the first attempt only (retry succeeds).
    pub panic_once_on: BTreeSet<usize>,
    /// Fault indices that stall for [`ChaosHarness::stall_for`] before
    /// running, tripping a short supervisor deadline on every attempt.
    pub stall_on: BTreeSet<usize>,
    /// How long stalled experiments sleep.
    pub stall_for: Duration,
    /// Indices that already panicked once (drives `panic_once_on`).
    tripped: Mutex<BTreeSet<usize>>,
}

impl ChaosHarness {
    /// A harness that panics unconditionally at `indices`.
    #[must_use]
    pub fn panicking(indices: impl IntoIterator<Item = usize>) -> Self {
        ChaosHarness {
            panic_on: indices.into_iter().collect(),
            ..ChaosHarness::default()
        }
    }

    /// A harness that panics on the *first* attempt only at `indices` —
    /// the stride-0 retry succeeds.
    #[must_use]
    pub fn panicking_once(indices: impl IntoIterator<Item = usize>) -> Self {
        ChaosHarness {
            panic_once_on: indices.into_iter().collect(),
            ..ChaosHarness::default()
        }
    }

    /// Adds indices that stall for `stall_for` on every attempt, tripping
    /// a supervisor deadline shorter than the stall.
    #[must_use]
    pub fn stalling(
        mut self,
        indices: impl IntoIterator<Item = usize>,
        stall_for: Duration,
    ) -> Self {
        self.stall_on = indices.into_iter().collect();
        self.stall_for = stall_for;
        self
    }

    /// Called at the start of every attempt; sabotages the experiment if
    /// its index is listed.
    fn before_attempt(&self, index: usize) {
        if self.panic_on.contains(&index) {
            panic!("chaos harness: forced panic at fault index {index}");
        }
        if self.panic_once_on.contains(&index) {
            // Decide while holding the lock, panic after releasing it —
            // panicking with the guard held would poison the set and turn
            // the one-shot panic into a persistent one.
            let first_time = {
                let mut tripped = self
                    .tripped
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                tripped.insert(index)
            };
            if first_time {
                panic!("chaos harness: forced one-shot panic at fault index {index}");
            }
        }
        if self.stall_on.contains(&index) {
            std::thread::sleep(self.stall_for);
        }
    }
}

/// Renders a caught panic payload for the quarantine record.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One supervised attempt: chaos hook, then the watchdog-bounded
/// experiment, all behind the unwind boundary.
#[allow(clippy::too_many_arguments)]
fn attempt(
    workload: &Workload,
    cfg: &LoopConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    model: crate::experiment::FaultModel,
    detail: bool,
    index: usize,
    observer: &dyn CampaignObserver,
    sup: &SupervisorConfig,
) -> Result<ExperimentRecord, (HarnessCause, String)> {
    let deadline = sup.deadline.map(|d| Instant::now() + d);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Inside the containment boundary: arming this with `panic` is the
        // CLI-reachable way to drive the retry/quarantine paths that the
        // ChaosHarness drives from tests (ASSURANCE.md).
        crate::fp_nofail!("experiment.attempt");
        if let Some(chaos) = &sup.chaos {
            chaos.before_attempt(index);
        }
        run_experiment_watchdog(
            workload, cfg, golden, fault, model, detail, index, observer, deadline,
        )
    }));
    match outcome {
        Ok(Ok(record)) => Ok(record),
        Ok(Err(WatchdogExpired)) => {
            let budget = sup.deadline.expect("watchdog fired without a deadline");
            Err((
                HarnessCause::Deadline,
                format!("wall-clock deadline of {budget:?} exceeded"),
            ))
        }
        Err(payload) => Err((HarnessCause::Panic, panic_detail(payload.as_ref()))),
    }
}

/// Runs one experiment under full supervision: panic isolation, watchdog
/// deadline, one stride-0 retry, then quarantine. Always returns a record —
/// by construction this function cannot panic out of a worker thread for
/// any per-experiment failure.
///
/// # Panics
///
/// Panics only if `fault.location_index` is outside the scan catalog — a
/// campaign construction bug, not an experiment failure.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_supervised(
    workload: &Workload,
    cfg: &LoopConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    model: crate::experiment::FaultModel,
    detail: bool,
    index: usize,
    observer: &dyn CampaignObserver,
    sup: &SupervisorConfig,
) -> ExperimentRecord {
    let first = attempt(
        workload, cfg, golden, fault, model, detail, index, observer, sup,
    );
    let (cause, message) = match first {
        Ok(record) => return record,
        Err(failure) => failure,
    };
    // A crash here models dying between a failed attempt and its retry:
    // no record was emitted, so the fault is a gap a resume must re-run.
    crate::fp_nofail!("supervisor.before-retry");
    observer.experiment_retried(index, cause);

    // Graceful degradation: replay from reset with checkpointing disabled,
    // in case the fast-forward / pruning path is implicated. The
    // checkpoint-equivalence suite proves the stride-0 record is
    // bit-identical to the checkpointed one.
    let mut retry_cfg = cfg.clone();
    retry_cfg.checkpoint_stride = 0;
    let retry_golden = GoldenRun {
        checkpoints: Vec::new(),
        ..golden.clone()
    };
    let second = attempt(
        workload,
        &retry_cfg,
        &retry_golden,
        fault,
        model,
        detail,
        index,
        observer,
        sup,
    );
    let (cause, retry_message) = match second {
        Ok(record) => return record,
        Err(failure) => failure,
    };

    // Quarantine: a terminal record accounting for what could not be run.
    // A crash here models dying with the quarantine decision made but its
    // record not yet durable — the fault must re-run (healthy or not) on
    // resume rather than be lost.
    crate::fp_nofail!("supervisor.before-quarantine");
    let location = scan::catalog()[fault.location_index];
    let record = ExperimentRecord {
        fault,
        part: location.part(),
        location,
        outcome: Outcome::HarnessFailure(cause),
        max_deviation: 0.0,
        first_strong_iteration: None,
        detection_latency: None,
        outputs: None,
        pruned_at: None,
        provenance: crate::experiment::Provenance::Simulated,
        harness_error: Some(format!(
            "first attempt: {message}; stride-0 retry: {retry_message}"
        )),
    };
    observer.experiment_classified(index, &record);
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{golden_run, FaultModel};
    use crate::observer::NullObserver;

    fn setup() -> (Workload, LoopConfig, GoldenRun) {
        let w = Workload::algorithm_one();
        let cfg = LoopConfig::short(24);
        let golden = golden_run(&w, &cfg);
        (w, cfg, golden)
    }

    #[test]
    fn healthy_experiment_is_untouched_by_supervision() {
        let (w, cfg, golden) = setup();
        let fault = FaultSpec {
            location_index: 17,
            inject_at: golden.total_instructions / 3,
        };
        let sup = SupervisorConfig::default();
        let supervised = run_supervised(
            &w,
            &cfg,
            &golden,
            fault,
            FaultModel::SingleBit,
            false,
            0,
            &NullObserver,
            &sup,
        );
        let plain = crate::experiment::run_experiment(&w, &cfg, &golden, fault, false);
        assert_eq!(
            serde_json::to_string(&supervised).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "supervision must not perturb a healthy experiment"
        );
    }

    #[test]
    fn persistent_panic_is_quarantined_with_the_payload() {
        let (w, cfg, golden) = setup();
        let fault = FaultSpec {
            location_index: 5,
            inject_at: 100,
        };
        let sup = SupervisorConfig {
            chaos: Some(Arc::new(ChaosHarness::panicking([3]))),
            ..SupervisorConfig::default()
        };
        let record = run_supervised(
            &w,
            &cfg,
            &golden,
            fault,
            FaultModel::SingleBit,
            false,
            3,
            &NullObserver,
            &sup,
        );
        assert_eq!(record.outcome, Outcome::HarnessFailure(HarnessCause::Panic));
        let detail = record.harness_error.as_deref().unwrap();
        assert!(detail.contains("forced panic at fault index 3"), "{detail}");
        assert!(detail.contains("stride-0 retry"), "{detail}");
    }

    #[test]
    fn one_shot_panic_recovers_on_the_stride_zero_retry() {
        let (w, cfg, golden) = setup();
        let fault = FaultSpec {
            location_index: 11,
            inject_at: golden.total_instructions / 2,
        };
        let sup = SupervisorConfig {
            chaos: Some(Arc::new(ChaosHarness {
                panic_once_on: [7].into_iter().collect(),
                ..ChaosHarness::default()
            })),
            ..SupervisorConfig::default()
        };
        let record = run_supervised(
            &w,
            &cfg,
            &golden,
            fault,
            FaultModel::SingleBit,
            false,
            7,
            &NullObserver,
            &sup,
        );
        assert!(
            !record.outcome.is_harness_failure(),
            "the retry succeeds, so the fault classifies normally: {:?}",
            record.outcome
        );
        let plain = crate::experiment::run_experiment(&w, &cfg, &golden, fault, false);
        assert_eq!(
            serde_json::to_string(&record).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "stride-0 retry must reproduce the checkpointed record bit-for-bit"
        );
    }

    #[test]
    fn stalled_experiment_trips_the_deadline() {
        let (w, cfg, golden) = setup();
        let fault = FaultSpec {
            location_index: 2,
            inject_at: 50,
        };
        let sup = SupervisorConfig {
            deadline: Some(Duration::from_millis(5)),
            chaos: Some(Arc::new(ChaosHarness {
                stall_on: [4].into_iter().collect(),
                stall_for: Duration::from_millis(50),
                ..ChaosHarness::default()
            })),
        };
        let record = run_supervised(
            &w,
            &cfg,
            &golden,
            fault,
            FaultModel::SingleBit,
            false,
            4,
            &NullObserver,
            &sup,
        );
        assert_eq!(
            record.outcome,
            Outcome::HarnessFailure(HarnessCause::Deadline)
        );
        assert!(record
            .harness_error
            .as_deref()
            .unwrap()
            .contains("wall-clock deadline"));
    }
}
