//! # bera-goofi — the fault injection framework
//!
//! A Rust reconstruction of **GOOFI** (Generic Object-Oriented Fault
//! Injection tool), the framework the paper uses to run its campaigns. The
//! same four phases are implemented:
//!
//! 1. **Configuration** — choose the injection technique and target:
//!    [`campaign::CampaignConfig`] selects SCIFI on the Thor-like CPU
//!    simulator ([`bera_tcpu`]) or pre-runtime SWIFI on the native
//!    controllers ([`swifi`]);
//! 2. **Set-up** — sample fault locations uniformly over the scan-chain
//!    catalog and injection times uniformly over the dynamic instructions
//!    of the workload ([`campaign::FaultList`]);
//! 3. **Fault injection** — run a golden reference execution, then one
//!    experiment per fault: position the target at the breakpoint, flip the
//!    bit through the scan chain, and run to the termination condition
//!    (an error detection, 650 iterations, or a hang)
//!    ([`experiment`]);
//! 4. **Analysis** — classify every experiment into the paper's taxonomy
//!    (detected / severe / minor value failure / latent / overwritten,
//!    [`classify`]) and aggregate into the paper's tables with 95 %
//!    confidence intervals ([`table`]).
//!
//! Campaigns are observable and durable: an [`observer::CampaignObserver`]
//! receives every life-cycle event (sampled, started, injected, detected,
//! spliced, classified, completed), the [`store`] module streams records
//! to a checksummed JSONL database as they classify, and an interrupted
//! campaign resumes from that database, re-running only the gap
//! ([`campaign::PreparedCampaign::run_resumed`]).
//!
//! # Example
//!
//! ```
//! use bera_goofi::campaign::{run_scifi_campaign, CampaignConfig};
//! use bera_goofi::table::tabulate;
//! use bera_goofi::workload::Workload;
//!
//! let workload = Workload::algorithm_one();
//! let cfg = CampaignConfig::quick(50, 42); // 50 faults, fixed seed
//! let result = run_scifi_campaign(&workload, &cfg);
//! let table = tabulate(&result);
//! assert_eq!(table.total_faults(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod classify;
pub mod experiment;
pub mod failpoints;
pub mod farm;
pub mod observer;
pub mod planner;
pub mod propagation;
pub mod store;
pub mod supervisor;
pub mod swifi;
pub mod table;
pub mod workload;

pub use campaign::{
    prepare_campaign, run_scifi_campaign, run_scifi_campaign_observed, CampaignConfig,
    CampaignResult, PreparedCampaign,
};
pub use classify::{Classifier, HarnessCause, Outcome, Severity};
pub use experiment::{
    golden_run, instruction_cap, run_experiment, Checkpoint, ExperimentRecord, FaultModel,
    FaultSpec, GoldenRun, LoopConfig, Provenance,
};
pub use farm::{
    assemble_farm, init_farm, merge_farm, read_manifest, run_worker, FarmError, FarmManifest,
    LeasePolicy, ShardSpec,
};
pub use observer::{CampaignObserver, NullObserver, ObserverSet, Telemetry, TelemetrySnapshot};
pub use planner::{plan_campaign, records_equivalent, CampaignPlan, PlanAction};
pub use store::{load_store, JsonlStore, LoadedCampaign, StoreError, StoreHeader};
pub use supervisor::{ChaosHarness, SupervisorConfig};
pub use table::{tabulate, ComparisonTable, ModelBreakdown, PaperTable};
pub use workload::{Workload, WorkloadError};
