//! Campaign orchestration: fault-list sampling, parallel experiment
//! execution, and the result database.

use crate::classify::Outcome;
use crate::experiment::{
    golden_run, run_experiment_observed, run_experiment_with_model, run_split_experiment,
    ExperimentRecord, FaultModel, FaultSpec, GoldenRun, LoopConfig, Provenance,
};
use crate::observer::{CampaignObserver, NullObserver};
use crate::planner::{
    analytic_record, batch_eligible, batch_groups, lockstep_converged_record, paranoid_members,
    plan_campaign, prune_eligible, records_equivalent, replicated_record, PlanAction,
};
use crate::supervisor::{run_supervised, SupervisorConfig};
use crate::workload::Workload;
use bera_stats::sampling::UniformSampler;
use bera_tcpu::scan::{self, BitLocation};
use bera_tcpu::{BatchMachine, ReplicaFate};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration of one SCIFI campaign (GOOFI's set-up phase).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of faults to inject (the paper uses 9290 for Algorithm I and
    /// 2372 for Algorithm II).
    pub faults: usize,
    /// RNG seed for the fault list; campaigns are reproducible.
    pub seed: u64,
    /// The closed-loop workload configuration.
    pub loop_cfg: LoopConfig,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Record full output sequences for every experiment (large!).
    pub detail: bool,
    /// The fault model (single bit-flip by default, as in the paper).
    pub fault_model: FaultModel,
    /// Supervised execution (panic isolation, watchdog, retry-then-
    /// quarantine). `None` runs experiments bare: a panic aborts the
    /// campaign, as a debugging aid.
    pub supervisor: Option<SupervisorConfig>,
    /// Def/use fault-space pruning (see [`crate::planner`]): classify
    /// faults whose outcome follows from the golden access trace without
    /// simulating them, and simulate one representative per equivalence
    /// class of provably identical runs. On by default; outcomes are
    /// bit-identical either way (`tests/prune_equivalence.rs`), so this
    /// only trades a planning pass for campaign wall-clock. Automatically
    /// bypassed for non-single-bit fault models and parity-cache runs.
    pub prune: bool,
    /// Paranoid cross-check: re-simulate up to this many members of every
    /// def/use equivalence class and panic if any simulated outcome
    /// disagrees with its replicated record. `0` (the default) disables
    /// the check; it exists to audit the pruning soundness argument on
    /// live campaigns.
    pub paranoid: usize,
    /// Lockstep batch width: up to this many plan-`Simulate` replicas ride
    /// the shared golden stream per [`bera_tcpu::BatchMachine`], resolving
    /// latent/converged faults without executing an instruction and
    /// materializing diverging replicas at their split instant. `0`
    /// disables batching (every simulated fault replays its lockstep
    /// prefix scalar). Outcomes are bit-identical either way
    /// (`tests/lockstep_equivalence.rs`); automatically bypassed for
    /// non-flip fault models, parity-cache runs, stride-0 campaigns and
    /// chaos-harness tests. Not part of the result-store identity: stores
    /// may be resumed under a different width.
    pub batch_width: usize,
    /// EDM-visibility analytic coverage (see [`bera_tcpu::vis`] and
    /// DESIGN.md §8h): classify faults in *untraceable* state —
    /// PC/PSR/signature/tags/buffers — from the golden run's
    /// visibility-window trace, and admit their replicas to the lockstep
    /// batch engine. On by default; outcomes are bit-identical either way
    /// (the equivalence suites cover the untraceable population), so this
    /// only widens the analytic/batched share of the campaign. Only
    /// consulted where pruning/batching are themselves eligible.
    pub vis: bool,
}

impl CampaignConfig {
    /// The paper's campaign shape with a configurable fault count.
    #[must_use]
    pub fn paper(faults: usize, seed: u64) -> Self {
        CampaignConfig {
            faults,
            seed,
            loop_cfg: LoopConfig::paper(),
            threads: 0,
            detail: false,
            fault_model: FaultModel::SingleBit,
            supervisor: Some(SupervisorConfig::default()),
            prune: true,
            paranoid: 0,
            batch_width: 32,
            vis: true,
        }
    }

    /// A small single-threaded campaign over a shortened run, for tests.
    #[must_use]
    pub fn quick(faults: usize, seed: u64) -> Self {
        CampaignConfig {
            faults,
            seed,
            loop_cfg: LoopConfig::short(60),
            threads: 1,
            detail: false,
            fault_model: FaultModel::SingleBit,
            supervisor: Some(SupervisorConfig::default()),
            prune: true,
            paranoid: 0,
            batch_width: 32,
            vis: true,
        }
    }
}

/// The sampled fault list (location, time) pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultList {
    /// The sampled faults.
    pub faults: Vec<FaultSpec>,
}

impl FaultList {
    /// Samples `n` faults uniformly over the scan catalog and the dynamic
    /// instructions of the golden run.
    #[must_use]
    pub fn sample(n: usize, seed: u64, total_instructions: u64) -> Self {
        let mut sampler = UniformSampler::with_seed(seed);
        let catalog_len = scan::catalog().len();
        let faults = sampler
            .draw_fault_list(n, catalog_len, total_instructions)
            .into_iter()
            .map(|(location_index, inject_at)| FaultSpec {
                location_index,
                inject_at,
            })
            .collect();
        FaultList { faults }
    }
}

/// Everything a campaign produced: per-experiment records plus the golden
/// context needed to interpret them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Workload name ("Algorithm I" / "Algorithm II").
    pub workload: String,
    /// Seed the fault list was drawn with.
    pub seed: u64,
    /// Number of scannable state elements (fault location population).
    pub total_locations: usize,
    /// Dynamic instructions of the golden run (fault time population).
    pub total_instructions: u64,
    /// Golden output bit patterns, one per iteration.
    pub golden_outputs: Vec<u32>,
    /// Golden plant speed trajectory (rpm).
    pub golden_speeds: Vec<f64>,
    /// One record per injected fault.
    pub records: Vec<ExperimentRecord>,
}

impl CampaignResult {
    /// Serialises the full result database as pretty JSON (the analogue of
    /// GOOFI's SQL database dump).
    ///
    /// # Errors
    ///
    /// Returns an error if serialisation fails (it cannot for this type,
    /// but the signature is honest).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// A campaign whose golden run and fault list exist but whose experiments
/// have not run yet — the point at which a result store header can be
/// built and an interrupted store validated, before committing to the
/// (expensive) injection phase.
pub struct PreparedCampaign<'w> {
    workload: &'w Workload,
    cfg: CampaignConfig,
    golden: GoldenRun,
    list: FaultList,
}

/// Executes the campaign's set-up phase: golden reference run plus
/// fault-list sampling.
#[must_use]
pub fn prepare_campaign<'w>(workload: &'w Workload, cfg: &CampaignConfig) -> PreparedCampaign<'w> {
    let golden = golden_run(workload, &cfg.loop_cfg);
    let list = FaultList::sample(cfg.faults, cfg.seed, golden.total_instructions);
    PreparedCampaign {
        workload,
        cfg: cfg.clone(),
        golden,
        list,
    }
}

impl PreparedCampaign<'_> {
    /// The logged golden reference run.
    #[must_use]
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// The sampled fault list.
    #[must_use]
    pub fn faults(&self) -> &[FaultSpec] {
        &self.list.faults
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Runs every experiment and assembles the result database.
    #[must_use]
    pub fn run(self, observer: &dyn CampaignObserver) -> CampaignResult {
        self.run_resumed(Vec::new(), observer)
    }

    /// Runs only the fault indices in `shard` (a farm worker's slice of
    /// the campaign), producing records **byte-identical** to what a full
    /// single-process run would produce for those indices — including
    /// their provenance tags.
    ///
    /// The plan is computed over the *full* fault list (it is a pure
    /// function of the campaign, so every worker recomputes the identical
    /// plan), and the lockstep batch pass walks the full candidate set so
    /// split-off equivalence classes match a fresh single-process run
    /// exactly. Only in-shard indices are executed, emitted to `observer`
    /// and returned; an in-shard class member whose representative lives
    /// in another shard derives its record from a locally re-simulated
    /// *shadow* of that representative (deterministic, observer-silent,
    /// never stored).
    ///
    /// `completed` follows the [`PreparedCampaign::run_resumed`] contract
    /// (empty, or one slot per fault of the whole campaign); out-of-shard
    /// slots must be `None`. The returned vector has one slot per fault of
    /// the whole campaign with `Some` exactly at the shard's indices.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of bounds for the fault list or
    /// `completed` has the wrong length.
    #[must_use]
    pub fn run_shard(
        &self,
        shard: std::ops::Range<usize>,
        completed: Vec<Option<ExperimentRecord>>,
        observer: &dyn CampaignObserver,
    ) -> Vec<Option<ExperimentRecord>> {
        assert!(
            shard.start <= shard.end && shard.end <= self.list.faults.len(),
            "shard {}..{} out of bounds for a {}-fault campaign",
            shard.start,
            shard.end,
            self.list.faults.len()
        );
        assert!(
            completed.is_empty() || completed.len() == self.list.faults.len(),
            "resume state covers {} faults but the campaign has {}",
            completed.len(),
            self.list.faults.len()
        );
        observer.fault_list_sampled(&self.list.faults);
        run_fault_list_scoped(
            self.workload,
            &self.cfg,
            &self.golden,
            &self.list.faults,
            shard,
            completed,
            observer,
        )
    }

    /// Like [`PreparedCampaign::run`], but skipping fault indices whose
    /// records were already completed by an interrupted run. `completed`
    /// must be empty (fresh campaign) or hold exactly one slot per fault;
    /// `Some` slots are adopted verbatim and do **not** replay their
    /// observer events, `None` slots are executed.
    ///
    /// # Panics
    ///
    /// Panics when `completed` is non-empty but its length does not match
    /// the fault list — that is two different campaigns.
    #[must_use]
    pub fn run_resumed(
        self,
        completed: Vec<Option<ExperimentRecord>>,
        observer: &dyn CampaignObserver,
    ) -> CampaignResult {
        assert!(
            completed.is_empty() || completed.len() == self.list.faults.len(),
            "resume state covers {} faults but the campaign has {}",
            completed.len(),
            self.list.faults.len()
        );
        observer.fault_list_sampled(&self.list.faults);
        let records = run_fault_list_resumed(
            self.workload,
            &self.cfg,
            &self.golden,
            &self.list.faults,
            completed,
            observer,
        );
        // The golden run is no longer needed once the experiments are done:
        // move its logged vectors into the result instead of cloning them.
        let GoldenRun {
            outputs: golden_outputs,
            speeds: golden_speeds,
            total_instructions,
            ..
        } = self.golden;
        let result = CampaignResult {
            workload: self.workload.name().to_string(),
            seed: self.cfg.seed,
            total_locations: scan::catalog().len(),
            total_instructions,
            golden_outputs,
            golden_speeds,
            records,
        };
        observer.campaign_completed(&result);
        result
    }
}

/// Runs a full SCIFI campaign: golden run, fault-list sampling, then one
/// experiment per fault (in parallel across threads).
#[must_use]
pub fn run_scifi_campaign(workload: &Workload, cfg: &CampaignConfig) -> CampaignResult {
    run_scifi_campaign_observed(workload, cfg, &NullObserver)
}

/// Like [`run_scifi_campaign`], reporting every life-cycle event to
/// `observer` (streaming store, telemetry, progress displays).
#[must_use]
pub fn run_scifi_campaign_observed(
    workload: &Workload,
    cfg: &CampaignConfig,
    observer: &dyn CampaignObserver,
) -> CampaignResult {
    prepare_campaign(workload, cfg).run(observer)
}

/// Runs an explicit fault list (used by ablations and figure scripts).
#[must_use]
pub fn run_fault_list(
    workload: &Workload,
    cfg: &CampaignConfig,
    golden: &GoldenRun,
    faults: &[FaultSpec],
) -> Vec<ExperimentRecord> {
    run_fault_list_resumed(workload, cfg, golden, faults, Vec::new(), &NullObserver)
}

/// A split-off replica's resumption recipe: apply `flips` to the last
/// golden checkpoint at or before `at` and drive the scalar engine from
/// there (see [`run_split_experiment`]).
struct SplitSpec {
    at: u64,
    flips: Vec<BitLocation>,
}

/// Runs one experiment according to the campaign's execution policy:
/// supervised (panic isolation, watchdog, retry, quarantine) when the
/// config carries a [`SupervisorConfig`], bare otherwise.
fn run_one(
    workload: &Workload,
    cfg: &CampaignConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
    index: usize,
    observer: &dyn CampaignObserver,
) -> ExperimentRecord {
    match &cfg.supervisor {
        Some(sup) => run_supervised(
            workload,
            &cfg.loop_cfg,
            golden,
            fault,
            cfg.fault_model,
            cfg.detail,
            index,
            observer,
            sup,
        ),
        None => run_experiment_observed(
            workload,
            &cfg.loop_cfg,
            golden,
            fault,
            cfg.fault_model,
            cfg.detail,
            index,
            observer,
        ),
    }
}

/// Runs the fault indices of `faults` whose `completed` slot is `None`
/// (all of them when `completed` is empty), reporting events to
/// `observer`; pre-completed records are adopted without re-execution.
///
/// Execution is plan-driven ([`plan_campaign`]): analytically classified
/// faults are emitted up front without touching the simulator, only
/// plan-`Simulate` indices go through the (possibly parallel) experiment
/// scheduler, and equivalence-class members are replicated from their
/// simulated representatives afterwards. The plan is deterministic, so
/// resumes recompute identical representatives.
fn run_fault_list_resumed(
    workload: &Workload,
    cfg: &CampaignConfig,
    golden: &GoldenRun,
    faults: &[FaultSpec],
    completed: Vec<Option<ExperimentRecord>>,
    observer: &dyn CampaignObserver,
) -> Vec<ExperimentRecord> {
    let scope = 0..faults.len();
    run_fault_list_scoped(workload, cfg, golden, faults, scope, completed, observer)
        .into_iter()
        .map(|slot| slot.expect("every fault index was run or preloaded"))
        .collect()
}

/// Observer-silently derives the record the full campaign would have
/// produced for out-of-shard fault `i` — the *shadow* of a representative
/// another shard owns. Everything here is deterministic (split resumption,
/// scalar replay, replication), so the shadow is byte-identical to the
/// record the owning shard stores; it is memoized but never emitted.
#[allow(clippy::too_many_arguments)]
fn shadow_record(
    i: usize,
    workload: &Workload,
    cfg: &CampaignConfig,
    golden: &GoldenRun,
    faults: &[FaultSpec],
    split_specs: &HashMap<usize, SplitSpec>,
    split_rep_of: &HashMap<usize, usize>,
    slots: &[Option<ExperimentRecord>],
    shadow: &mut HashMap<usize, ExperimentRecord>,
) -> ExperimentRecord {
    if let Some(r) = shadow.get(&i) {
        return r.clone();
    }
    let record = if let Some(&rep) = split_rep_of.get(&i) {
        // `i` is a split-dedup member: replicate from its class
        // representative (which may itself need shadowing).
        let rep_record = match slots.get(rep).and_then(Option::as_ref) {
            Some(r) => r.clone(),
            None => shadow_record(
                rep,
                workload,
                cfg,
                golden,
                faults,
                split_specs,
                split_rep_of,
                slots,
                shadow,
            ),
        };
        if matches!(rep_record.outcome, Outcome::HarnessFailure(_)) {
            run_one(workload, cfg, golden, faults[i], i, &NullObserver)
        } else {
            replicated_record(faults[i], &rep_record)
        }
    } else if let Some(spec) = split_specs.get(&i) {
        let split = || {
            run_split_experiment(
                &cfg.loop_cfg,
                golden,
                faults[i],
                &spec.flips,
                spec.at,
                cfg.detail,
                i,
                &NullObserver,
            )
        };
        let record = if cfg.supervisor.is_some() {
            catch_unwind(AssertUnwindSafe(split)).ok().flatten()
        } else {
            split()
        };
        record.unwrap_or_else(|| run_one(workload, cfg, golden, faults[i], i, &NullObserver))
    } else {
        run_one(workload, cfg, golden, faults[i], i, &NullObserver)
    };
    shadow.insert(i, record.clone());
    record
}

/// The scoped engine behind [`run_fault_list_resumed`] (full scope) and
/// [`PreparedCampaign::run_shard`] (a farm worker's slice). The plan and
/// the lockstep batch pass always cover the *full* fault list so that
/// equivalence classes, split-off dedup and therefore record provenance
/// are identical whichever process runs which slice; only in-scope
/// indices execute experiments, emit observer events and fill slots.
fn run_fault_list_scoped(
    workload: &Workload,
    cfg: &CampaignConfig,
    golden: &GoldenRun,
    faults: &[FaultSpec],
    scope: std::ops::Range<usize>,
    completed: Vec<Option<ExperimentRecord>>,
    observer: &dyn CampaignObserver,
) -> Vec<Option<ExperimentRecord>> {
    let mut slots: Vec<Option<ExperimentRecord>> = if completed.is_empty() {
        let mut v = Vec::new();
        v.resize_with(faults.len(), || None);
        v
    } else {
        completed
    };
    let in_scope = |i: usize| scope.contains(&i);
    let plan = plan_campaign(faults, cfg, golden);
    observer.plan_computed(&plan.stats());

    // Out-of-scope representatives that in-scope members will replicate
    // from: the batch pass stashes their latent/converged records as
    // shadows instead of discarding them. Empty for a full-scope run.
    let needed_shadow: std::collections::HashSet<usize> = scope
        .clone()
        .filter_map(|i| match plan.action(i) {
            PlanAction::Replicate { representative } if !in_scope(representative) => {
                Some(representative)
            }
            _ => None,
        })
        .collect();
    let mut shadow: HashMap<usize, ExperimentRecord> = HashMap::new();

    // Analytic records first: they cost nothing and keep the simulation
    // scheduler's claim loop dense in real work.
    for (i, action) in plan.actions().iter().enumerate() {
        if !in_scope(i) || slots[i].is_some() {
            continue;
        }
        if let PlanAction::Analytic(outcome) = *action {
            let record = analytic_record(faults[i], outcome, golden, cfg.detail);
            observer.experiment_classified(i, &record);
            slots[i] = Some(record);
        }
    }

    // Lockstep batch pass: resolve plan-`Simulate` faults against the
    // golden access trace in shared-stream batches ([`BatchMachine`]).
    // Replicas that never leave lockstep (latent / converged) are
    // classified here without executing a single instruction; diverging
    // replicas split off to the simulation pass below, which materializes
    // them at their split instant instead of replaying the lockstep
    // prefix. Split-offs with identical materialized states (same scan
    // bit cluster, same split instant, same surviving units) deduplicate:
    // one representative runs, members replicate its record.
    let mut split_specs: HashMap<usize, SplitSpec> = HashMap::new();
    let mut split_members: Vec<(usize, usize)> = Vec::new(); // (member, rep)
    if batch_eligible(cfg) {
        let catalog = scan::catalog();
        // Candidates are *every* plan-`Simulate` fault — including
        // preloaded and out-of-scope indices. Split-off dedup picks class
        // representatives in candidate order, so the candidate set must
        // match a fresh full-scope run exactly or resumed/sharded runs
        // would assign different representatives (and therefore different
        // provenance bytes) than a single-process campaign.
        let candidates: Vec<usize> = (0..faults.len())
            .filter(|&i| {
                matches!(plan.action(i), PlanAction::Simulate)
                    // A fault scheduled at or past the end of the run is
                    // never injected; the trace proves nothing about it.
                    && faults[i].inject_at < golden.total_instructions
            })
            .collect();
        let mut split_classes: HashMap<(usize, u64, Vec<usize>), usize> = HashMap::new();
        // When the def/use planner ran (single-bit campaigns), every
        // vis-classifiable fault it left as `Simulate` is sample-first —
        // its replica is guaranteed to split off at that very sample, so
        // admission would only pay the lockstep walk for nothing. The
        // visibility trace therefore feeds admission only where no
        // planner ran: the multi-bit flip models, and `--no-prune`.
        let vis_trace = (cfg.vis && !prune_eligible(cfg)).then_some(&golden.vis);
        let mut rejected_untraceable = 0usize;
        let mut vis_admitted = 0usize;
        for group in batch_groups(&candidates, faults, golden, cfg.batch_width) {
            let window = golden
                .checkpoint_before(faults[group[0]].inject_at)
                .map_or(0, |c| c.iteration);
            let mut bm = BatchMachine::new(&golden.trace, vis_trace, cfg.batch_width);
            let mut members: Vec<(usize, usize)> = Vec::new();
            for &i in &group {
                let flips: Vec<BitLocation> = cfg
                    .fault_model
                    .locations(faults[i].location_index)
                    .into_iter()
                    .map(|j| catalog[j])
                    .collect();
                // Groups are chunked to the batch width, so a rejection
                // here always means an inadmissible bit: the replica
                // stays scalar. With the visibility trace the residue is
                // only the signature register, the fetch-valid bit and
                // the operand latch.
                let needs_vis = flips.iter().any(|b| b.trace_unit().is_none());
                // Telemetry counts only work this process owns; preloaded
                // and out-of-scope candidates ride along for dedup only.
                let live = in_scope(i) && slots[i].is_none();
                if let Some(r) = bm.try_add_replica(flips, faults[i].inject_at) {
                    members.push((i, r));
                    if needs_vis && live {
                        vis_admitted += 1;
                    }
                } else if live {
                    rejected_untraceable += 1;
                }
            }
            if members.is_empty() {
                continue;
            }
            let live_members = members
                .iter()
                .filter(|&&(i, _)| in_scope(i) && slots[i].is_none())
                .count();
            if live_members > 0 {
                observer.batch_group_started(window, live_members, cfg.batch_width);
            }
            bm.run();
            for (i, r) in members {
                let prefix = bm.lockstep_instructions(r, golden.total_instructions);
                let live = in_scope(i) && slots[i].is_none();
                match bm.fate(r) {
                    ReplicaFate::Latent => {
                        if live {
                            observer.replica_resolved(i, prefix);
                            let record =
                                analytic_record(faults[i], Outcome::Latent, golden, cfg.detail);
                            observer.experiment_classified(i, &record);
                            slots[i] = Some(record);
                        } else if needed_shadow.contains(&i) {
                            shadow.insert(
                                i,
                                analytic_record(faults[i], Outcome::Latent, golden, cfg.detail),
                            );
                        }
                    }
                    ReplicaFate::Converged { killed_at } => {
                        if live {
                            observer.replica_resolved(i, prefix);
                            let record =
                                lockstep_converged_record(faults[i], killed_at, golden, cfg.detail);
                            if let Some(iteration) = record.pruned_at {
                                observer.convergence_spliced(i, iteration);
                            }
                            observer.experiment_classified(i, &record);
                            slots[i] = Some(record);
                        } else if needed_shadow.contains(&i) {
                            shadow.insert(
                                i,
                                lockstep_converged_record(faults[i], killed_at, golden, cfg.detail),
                            );
                        }
                    }
                    ReplicaFate::SplitOff { at } => {
                        if live {
                            observer.replica_split_off(i, at, prefix);
                        }
                        let units: Vec<usize> =
                            bm.delta_units(r).iter().map(|u| u.index()).collect();
                        match split_classes.entry((faults[i].location_index, at, units)) {
                            std::collections::hash_map::Entry::Occupied(e) => {
                                split_members.push((i, *e.get()));
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(i);
                                split_specs.insert(
                                    i,
                                    SplitSpec {
                                        at,
                                        flips: bm.surviving_flips(r),
                                    },
                                );
                            }
                        }
                    }
                    ReplicaFate::Lockstep => unreachable!("run() resolves every replica"),
                }
            }
        }
        observer.batch_admission(rejected_untraceable, vis_admitted);
    }
    let split_rep_of: HashMap<usize, usize> = split_members.iter().copied().collect();

    // The simulation pass skips out-of-scope indices, preloaded indices
    // and everything the plan (or the batch pass) resolves without the
    // simulator: analytic records above, replicated members filled in
    // below.
    let done: Vec<bool> = slots
        .iter()
        .zip(plan.actions())
        .enumerate()
        .map(|(i, (slot, action))| {
            !in_scope(i)
                || slot.is_some()
                || !matches!(action, PlanAction::Simulate)
                || split_rep_of.contains_key(&i)
        })
        .collect();
    // Runs fault index `i` on its fastest sound path: a split-off replica
    // resumes from its materialized divergence state, anything else runs
    // the full scalar experiment. Under supervision the split path is
    // panic-contained, falling back to the fully supervised scalar run.
    let run_index = |i: usize| -> ExperimentRecord {
        if let Some(spec) = split_specs.get(&i) {
            let split = |()| {
                run_split_experiment(
                    &cfg.loop_cfg,
                    golden,
                    faults[i],
                    &spec.flips,
                    spec.at,
                    cfg.detail,
                    i,
                    observer,
                )
            };
            let record = if cfg.supervisor.is_some() {
                catch_unwind(AssertUnwindSafe(|| split(()))).ok().flatten()
            } else {
                split(())
            };
            if let Some(record) = record {
                return record;
            }
        }
        run_one(workload, cfg, golden, faults[i], i, observer)
    };
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        cfg.threads
    };
    let remaining = done.iter().filter(|&&d| !d).count();
    if threads <= 1 || remaining < 2 {
        for i in 0..faults.len() {
            if done[i] {
                continue;
            }
            crate::fp_nofail!("campaign.claim");
            slots[i] = Some(run_index(i));
        }
    } else {
        // Dynamic work distribution: experiment run times vary by orders of
        // magnitude (a detected fault traps within microseconds, a hang burns
        // the whole instruction cap), so static chunking leaves threads idle
        // behind the slowest chunk. Each worker instead claims the next
        // unclaimed fault index from a shared atomic counter and records the
        // index with its result, so the merged record order is exactly the
        // fault-list order regardless of which worker ran what. Pre-completed
        // indices (a resume) are skipped by the claim loop.
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let done = &done;
                    let run_index = &run_index;
                    scope.spawn(move || {
                        let mut ran = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= faults.len() {
                                break;
                            }
                            if done[i] {
                                continue;
                            }
                            // A `panic` here kills the worker with claims
                            // in flight (the self-heal path); a `crash`
                            // kills the process mid-campaign.
                            crate::fp_nofail!("campaign.claim");
                            ran.push((i, run_index(i)));
                        }
                        ran
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(ran) => {
                        for (i, record) in ran {
                            slots[i] = Some(record);
                        }
                    }
                    // The supervisor contains per-experiment failures, so a
                    // worker can only die of something outside an experiment
                    // (or of supervision being disabled). Unsupervised runs
                    // propagate the panic as before; supervised campaigns
                    // self-heal below by re-running the lost claims serially.
                    Err(payload) => {
                        if cfg.supervisor.is_none() {
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        });
        if cfg.supervisor.is_some() {
            // A crash here models dying after workers died but before
            // their lost claims were re-run: the store keeps every record
            // that classified, and the claims stay a resumable gap.
            crate::fp_nofail!("campaign.self-heal");
            for i in 0..faults.len() {
                if slots[i].is_none() && !done[i] {
                    slots[i] = Some(run_index(i));
                }
            }
        }
    }

    // Split-off replication pass: members of a split-off class share their
    // representative's materialized state bit-for-bit, so its record
    // transfers (latency rebased to the member's injection instant). Runs
    // before the plan replication pass because plan-level members may name
    // a split-dedup member as their representative. A representative owned
    // by another shard is shadow-simulated locally (observer-silent).
    for &(m, rep) in &split_members {
        if !in_scope(m) || slots[m].is_some() {
            continue;
        }
        let fetched;
        let rep_record = match slots[rep].as_ref() {
            Some(r) => r,
            None => {
                fetched = shadow_record(
                    rep,
                    workload,
                    cfg,
                    golden,
                    faults,
                    &split_specs,
                    &split_rep_of,
                    &slots,
                    &mut shadow,
                );
                &fetched
            }
        };
        let record = if matches!(rep_record.outcome, Outcome::HarnessFailure(_)) {
            // A quarantined representative proves nothing about its class:
            // fall back to simulating the member itself.
            run_one(workload, cfg, golden, faults[m], m, observer)
        } else {
            let r = replicated_record(faults[m], rep_record);
            observer.experiment_classified(m, &r);
            r
        };
        slots[m] = Some(record);
    }

    // Replication pass: every in-scope representative has a record by now
    // (reps are plan-`Simulate` and always precede their members in the
    // fault list); out-of-scope representatives resolve through the batch
    // shadows stashed above or a local shadow simulation.
    for i in scope.clone() {
        if slots[i].is_some() {
            continue;
        }
        if let PlanAction::Replicate { representative } = plan.action(i) {
            let fetched;
            let rep = match slots[representative].as_ref() {
                Some(r) => r,
                None => {
                    fetched = shadow_record(
                        representative,
                        workload,
                        cfg,
                        golden,
                        faults,
                        &split_specs,
                        &split_rep_of,
                        &slots,
                        &mut shadow,
                    );
                    &fetched
                }
            };
            let record = if matches!(rep.outcome, Outcome::HarnessFailure(_)) {
                // A quarantined representative proves nothing about its
                // class: fall back to simulating the member itself.
                run_one(workload, cfg, golden, faults[i], i, observer)
            } else {
                let r = replicated_record(faults[i], rep);
                observer.experiment_classified(i, &r);
                r
            };
            slots[i] = Some(record);
        }
    }

    // Paranoid cross-check: re-simulate sampled class members and demand
    // semantic equality with their replicated records. Observer-silent —
    // the checks are audits, not campaign work.
    if cfg.paranoid > 0 && prune_eligible(cfg) {
        let golden_digest = golden.digest();
        for (rep, members) in plan.classes() {
            for m in paranoid_members(&members, cfg.paranoid, cfg.seed, golden_digest, faults[rep])
            {
                let Some(replicated) = slots[m].as_ref() else {
                    continue; // another shard's member: not ours to audit
                };
                if replicated.provenance != Provenance::Replicated {
                    continue; // preloaded or fallback-simulated: nothing to audit
                }
                let fresh = run_experiment_with_model(
                    workload,
                    &cfg.loop_cfg,
                    golden,
                    faults[m],
                    cfg.fault_model,
                    cfg.detail,
                );
                assert!(
                    records_equivalent(&fresh, replicated),
                    "paranoid cross-check failed at fault index {m} \
                     (class representative {rep}): simulated {fresh:?} \
                     disagrees with replicated {replicated:?}"
                );
            }
        }
    }

    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Outcome;

    #[test]
    fn fault_list_is_reproducible() {
        let a = FaultList::sample(100, 7, 30_000);
        let b = FaultList::sample(100, 7, 30_000);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 100);
        let catalog_len = scan::catalog().len();
        assert!(a
            .faults
            .iter()
            .all(|f| f.location_index < catalog_len && f.inject_at < 30_000));
    }

    #[test]
    fn quick_campaign_classifies_every_fault() {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(40, 11);
        let r = run_scifi_campaign(&w, &cfg);
        assert_eq!(r.records.len(), 40);
        assert_eq!(r.golden_outputs.len(), 60);
        // Every record has a definite outcome; sanity: not everything can
        // be overwritten.
        let overwritten = r
            .records
            .iter()
            .filter(|rec| rec.outcome == Outcome::Overwritten)
            .count();
        assert!(overwritten < 40);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let w = Workload::algorithm_one();
        let mut cfg = CampaignConfig::quick(24, 3);
        cfg.threads = 1;
        let serial = run_scifi_campaign(&w, &cfg);
        cfg.threads = 4;
        let parallel = run_scifi_campaign(&w, &cfg);
        let so: Vec<_> = serial.records.iter().map(|r| r.outcome).collect();
        let po: Vec<_> = parallel.records.iter().map(|r| r.outcome).collect();
        assert_eq!(so, po, "sharding must not change results");
    }

    #[test]
    fn json_export_roundtrips() {
        let w = Workload::algorithm_one();
        let cfg = CampaignConfig::quick(5, 1);
        let r = run_scifi_campaign(&w, &cfg);
        let json = r.to_json().unwrap();
        let back: CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records.len(), 5);
        assert_eq!(back.workload, "Algorithm I");
    }
}
