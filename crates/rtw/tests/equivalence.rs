//! The generated code must be **bit-for-bit output-equivalent** to the
//! hand-written workloads: same model, same arithmetic order, same
//! closed-loop trajectory.

use bera_goofi::workload::Workload;
use bera_plant::{Engine, Profiles};
use bera_rtw::codegen::{compile_with, CodegenOptions};
use bera_rtw::{algorithm_one_model, algorithm_two_model};
use bera_tcpu::asm::Program;
use bera_tcpu::machine::{Machine, RunExit, PORT_R, PORT_U, PORT_Y};

fn run_closed_loop(program: &Program, iterations: usize) -> Vec<u32> {
    let mut m = Machine::new();
    m.load_program(program);
    let mut engine = Engine::paper();
    let profiles = Profiles::paper();
    let dt = 0.0154;
    let mut outputs = Vec::new();
    for k in 0..iterations {
        let t = k as f64 * dt;
        m.set_port_f32(PORT_R, profiles.reference(t) as f32);
        m.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
        assert_eq!(m.run(1_000_000), RunExit::Yield, "iteration {k}");
        let u = m.port_out_f32(PORT_U);
        outputs.push(u.to_bits());
        engine.advance(f64::from(u).clamp(0.0, 70.0), profiles.load(t), dt);
    }
    outputs
}

fn options() -> CodegenOptions {
    CodegenOptions {
        runtime_epilogue: true,
        log_vars: vec!["u_lim".to_string(), "e".to_string()],
    }
}

#[test]
fn generated_algorithm_one_is_bit_identical_to_handwritten() {
    let generated = compile_with(&algorithm_one_model(), &options()).unwrap();
    let gen_out = run_closed_loop(&generated.program, 650);
    let hand_out = run_closed_loop(Workload::algorithm_one().program(), 650);
    assert_eq!(gen_out, hand_out, "same arithmetic, same outputs");
}

#[test]
fn generated_algorithm_two_is_bit_identical_to_handwritten() {
    let generated = compile_with(&algorithm_two_model(), &options()).unwrap();
    let gen_out = run_closed_loop(&generated.program, 650);
    let hand_out = run_closed_loop(Workload::algorithm_two().program(), 650);
    assert_eq!(gen_out, hand_out);
}

#[test]
fn generated_algorithm_two_recovers_corrupted_state() {
    let generated = compile_with(&algorithm_two_model(), &options()).unwrap();
    let x_addr = generated.layout.address_of("x").unwrap();
    let mut m = Machine::new();
    m.load_program(&generated.program);
    let mut engine = Engine::paper();
    let profiles = Profiles::paper();
    let dt = 0.0154;
    for k in 0..300 {
        if k == 150 {
            assert!(m.scan_write_cached(x_addr, 5.0e8f32.to_bits()));
        }
        let t = k as f64 * dt;
        m.set_port_f32(PORT_R, profiles.reference(t) as f32);
        m.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
        assert_eq!(m.run(1_000_000), RunExit::Yield);
        let u = f64::from(m.port_out_f32(PORT_U));
        if k > 152 {
            assert!(u < 70.0, "no lock-up after recovery (iteration {k})");
        }
        engine.advance(u.clamp(0.0, 70.0), profiles.load(t), dt);
    }
}

#[test]
fn generated_algorithm_three_matches_handwritten() {
    let generated = compile_with(&bera_rtw::algorithm_three_model(), &options()).unwrap();
    let gen_out = run_closed_loop(&generated.program, 650);
    let hand_out = run_closed_loop(Workload::algorithm_three().program(), 650);
    assert_eq!(gen_out, hand_out);
}

#[test]
fn generated_algorithm_three_catches_in_range_jump() {
    // The figure-10 scenario: x forced to an in-range but physically
    // impossible value; the generated rate assertion recovers it.
    let generated = compile_with(&bera_rtw::algorithm_three_model(), &options()).unwrap();
    let x_addr = generated.layout.address_of("x").unwrap();
    let mut m = Machine::new();
    m.load_program(&generated.program);
    let mut engine = Engine::paper();
    let profiles = Profiles::paper();
    let mut max_dev_after = 0.0f64;
    let golden = run_closed_loop(&generated.program, 650);
    for (k, &golden_u) in golden.iter().enumerate() {
        if k == 390 {
            assert!(m.scan_write_cached(x_addr, 69.0f32.to_bits()));
        }
        let t = k as f64 * 0.0154;
        m.set_port_f32(PORT_R, profiles.reference(t) as f32);
        m.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
        assert_eq!(m.run(1_000_000), RunExit::Yield);
        let u = f64::from(m.port_out_f32(PORT_U));
        if k > 392 {
            max_dev_after = max_dev_after.max((u - f64::from(f32::from_bits(golden_u))).abs());
        }
        engine.advance(u.clamp(0.0, 70.0), profiles.load(t), 0.0154);
    }
    assert!(
        max_dev_after < 1.0,
        "rate assertion must confine the figure-10 jump, got {max_dev_after}"
    );
}
