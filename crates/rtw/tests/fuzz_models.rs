//! Property test: any well-formed model must compile to assembly that
//! assembles and runs without panicking — terminating each iteration with
//! a yield, or trapping in a hardware error detection mechanism (float
//! EDMs can legitimately fire on generated arithmetic, e.g. division by
//! zero or overflow).

use bera_rtw::codegen::{compile_with, CodegenOptions};
use bera_rtw::ir::{CmpOp, Cond, Expr, Stmt};
use bera_rtw::ControlModel;
use bera_tcpu::machine::{Machine, RunExit};
use proptest::prelude::*;

const VARS: [&str; 4] = ["a", "b", "c", "d"];

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0..VARS.len()).prop_map(|i| Expr::var(VARS[i])),
        (-100.0f32..100.0).prop_map(Expr::num),
        (0u16..3).prop_map(Expr::input),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), inner, 0..4u8).prop_map(|(a, b, op)| match op {
            0 => Expr::add(a, b),
            1 => Expr::sub(a, b),
            2 => Expr::mul(a, b),
            _ => Expr::div(a, b),
        })
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn assign() -> impl Strategy<Value = Stmt> {
    (0..VARS.len(), expr()).prop_map(|(i, e)| Stmt::assign(VARS[i], e))
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let output = (0..VARS.len()).prop_map(|i| Stmt::output(2, VARS[i]));
    let simple = prop_oneof![assign(), output];
    (
        simple,
        prop::collection::vec(assign(), 0..3),
        expr(),
        cmp_op(),
        expr(),
    )
        .prop_map(|(plain, then, lhs, op, rhs)| {
            if then.is_empty() {
                plain
            } else {
                Stmt::if_else(Cond::new(lhs, op, rhs), then, vec![plain])
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_models_compile_and_run_safely(body in prop::collection::vec(stmt(), 1..12)) {
        let mut model = ControlModel::new("fuzz");
        for v in VARS {
            model = model.var(v);
        }
        let model = model.body(body);
        let compiled = match compile_with(
            &model,
            &CodegenOptions { runtime_epilogue: false, log_vars: vec![] },
        ) {
            Ok(p) => p,
            Err(bera_rtw::CodegenError::ExpressionTooDeep { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        };
        let mut m = Machine::new();
        m.load_program(&compiled.program);
        for port in 0..3 {
            m.set_port_f32(port, 1.5);
        }
        for _ in 0..5 {
            match m.run(100_000) {
                RunExit::Yield => {}
                RunExit::Trap(_) => break, // float EDMs may legitimately fire
                RunExit::Budget => {
                    return Err(TestCaseError::fail("generated code hung"));
                }
            }
        }
    }
}
