//! Variable placement in data memory.
//!
//! Variables are packed four to a 16-byte cache line in declaration order,
//! starting at the base of data RAM — the same discipline the hand-written
//! workloads use (the persistent state in line 0, scratch in later lines,
//! padding slots to force line boundaries).

use std::collections::HashMap;

/// Base address of generated data (start of the cacheable RAM segment).
pub const DATA_BASE: u32 = 0x0001_0000;

/// Assigned addresses for a model's variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    addresses: HashMap<String, u32>,
    end: u32,
}

impl Layout {
    /// Places `variables` in declaration order, four per cache line.
    ///
    /// # Panics
    ///
    /// Panics on duplicate variable names.
    #[must_use]
    pub fn place(variables: &[String]) -> Self {
        let mut addresses = HashMap::new();
        let mut addr = DATA_BASE;
        for v in variables {
            assert!(
                addresses.insert(v.clone(), addr).is_none(),
                "duplicate variable `{v}`"
            );
            addr += 4;
        }
        Layout {
            addresses,
            end: addr,
        }
    }

    /// Address of a variable.
    #[must_use]
    pub fn address_of(&self, var: &str) -> Option<u32> {
        self.addresses.get(var).copied()
    }

    /// One past the last placed address.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Cache line index a variable maps to.
    #[must_use]
    pub fn line_of(&self, var: &str) -> Option<usize> {
        self.address_of(var).map(bera_tcpu::cache::index_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sequential_packing() {
        let l = Layout::place(&vars(&["a", "b", "c", "d", "e"]));
        assert_eq!(l.address_of("a"), Some(DATA_BASE));
        assert_eq!(l.address_of("e"), Some(DATA_BASE + 16));
        assert_eq!(l.line_of("a"), Some(0));
        assert_eq!(l.line_of("e"), Some(1), "fifth variable starts line 1");
        assert_eq!(l.end(), DATA_BASE + 20);
    }

    #[test]
    fn unknown_variable_is_none() {
        let l = Layout::place(&vars(&["a"]));
        assert_eq!(l.address_of("zz"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        let _ = Layout::place(&vars(&["a", "a"]));
    }
}
