//! The code generator: statement IR → tcpu assembly, in the unoptimised
//! statement-by-statement style of the Real-Time Workshop Ada Coder.

use crate::ir::{Cond, Expr, Stmt};
use crate::layout::{Layout, DATA_BASE};
use crate::ControlModel;
use bera_tcpu::asm::{assemble, AsmError, Program};
use std::fmt;

/// First register of the expression operand stack.
const FIRST_REG: u8 = 2;
/// Last register usable by the operand stack (r2..=r7).
const LAST_REG: u8 = 7;

/// Base address of the logging ring buffer (matches the hand-written
/// workloads).
const RING_BASE: u32 = 0x0001_0110;

/// Code generation options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Append the standard run-time epilogue: ring-buffer logging of the
    /// named variables, the housekeeping checksum scrub, and the iteration
    /// counter — making generated workloads campaign-compatible with the
    /// hand-written ones.
    pub runtime_epilogue: bool,
    /// Variables logged to the ring buffer each iteration (at most two,
    /// as in the hand-written workloads).
    pub log_vars: Vec<String>,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            runtime_epilogue: true,
            log_vars: Vec::new(),
        }
    }
}

/// A compiled model.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// The generated assembly text.
    pub asm: String,
    /// The assembled program, ready for `Machine::load_program`.
    pub program: Program,
    /// Where each variable lives.
    pub layout: Layout,
}

/// Code-generation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// A statement references an undeclared variable.
    UnknownVariable(String),
    /// An expression is too deep for the six-register operand stack.
    ExpressionTooDeep {
        /// Registers the expression would need.
        needed: usize,
    },
    /// More than two log variables were requested.
    TooManyLogVars,
    /// The model's variables collide with the logging ring buffer.
    RingOverlap,
    /// The generated assembly failed to assemble (a code-generator bug).
    Assemble(AsmError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            CodegenError::ExpressionTooDeep { needed } => {
                write!(f, "expression needs {needed} registers, 6 available")
            }
            CodegenError::TooManyLogVars => write!(f, "at most two log variables"),
            CodegenError::RingOverlap => {
                write!(f, "model variables overlap the logging ring buffer")
            }
            CodegenError::Assemble(e) => write!(f, "generated assembly invalid: {e}"),
        }
    }
}

impl std::error::Error for CodegenError {}

struct Emitter<'a> {
    layout: &'a Layout,
    out: String,
    next_label: usize,
}

impl<'a> Emitter<'a> {
    fn line(&mut self, s: &str) {
        self.out.push_str("    ");
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn label(&mut self, name: &str) {
        self.out.push_str(name);
        self.out.push_str(":\n");
    }

    fn fresh(&mut self, hint: &str) -> String {
        let n = self.next_label;
        self.next_label += 1;
        format!("L{n}_{hint}")
    }

    fn address_of(&self, var: &str) -> Result<u32, CodegenError> {
        self.layout
            .address_of(var)
            .ok_or_else(|| CodegenError::UnknownVariable(var.to_string()))
    }

    /// Evaluates `expr` into register `reg`, using `reg..=LAST_REG` as the
    /// operand stack.
    fn eval(&mut self, expr: &Expr, reg: u8) -> Result<(), CodegenError> {
        let needed = expr.stack_depth();
        if usize::from(reg) + needed - 1 > usize::from(LAST_REG) {
            return Err(CodegenError::ExpressionTooDeep {
                needed: usize::from(reg - FIRST_REG) + needed,
            });
        }
        match expr {
            Expr::Var(v) => {
                let addr = self.address_of(v)?;
                self.line(&format!("li   r1, {addr:#x}"));
                self.line(&format!("ld   r{reg}, [r1+0]"));
            }
            Expr::Num(n) => {
                self.line(&format!("lif  r{reg}, {n:?}"));
            }
            Expr::Input(port) => {
                self.line(&format!("in   r{reg}, {port}"));
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                self.eval(a, reg)?;
                self.eval(b, reg + 1)?;
                let op = match expr {
                    Expr::Add(..) => "fadd",
                    Expr::Sub(..) => "fsub",
                    Expr::Mul(..) => "fmul",
                    _ => "fdiv",
                };
                self.line(&format!("{op} r{reg}, r{reg}, r{}", reg + 1));
            }
        }
        Ok(())
    }

    fn store(&mut self, var: &str, reg: u8) -> Result<(), CodegenError> {
        let addr = self.address_of(var)?;
        self.line(&format!("li   r1, {addr:#x}"));
        self.line(&format!("st   r{reg}, [r1+0]"));
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CodegenError> {
        match stmt {
            Stmt::Assign { dst, expr } => {
                self.eval(expr, FIRST_REG)?;
                self.store(dst, FIRST_REG)?;
            }
            Stmt::Output { port, var } => {
                let addr = self.address_of(var)?;
                self.line(&format!("li   r1, {addr:#x}"));
                self.line("ld   r2, [r1+0]");
                self.line(&format!("out  r2, {port}"));
            }
            Stmt::If { cond, then, els } => {
                self.condition(cond)?;
                let else_label = self.fresh("else");
                let end_label = self.fresh("end");
                self.line(&format!("{} {else_label}", cond.op.inverse_branch()));
                for s in then {
                    self.stmt(s)?;
                }
                self.line(&format!("jmp  {end_label}"));
                self.label(&else_label);
                for s in els {
                    self.stmt(s)?;
                }
                self.label(&end_label);
            }
        }
        Ok(())
    }

    fn condition(&mut self, cond: &Cond) -> Result<(), CodegenError> {
        self.eval(&cond.lhs, FIRST_REG)?;
        self.eval(&cond.rhs, FIRST_REG + 1)?;
        self.line(&format!("fcmp r{FIRST_REG}, r{}", FIRST_REG + 1));
        Ok(())
    }
}

/// Compiles a model with default options (run-time epilogue on).
///
/// # Errors
///
/// See [`CodegenError`].
pub fn compile(model: &ControlModel) -> Result<GeneratedProgram, CodegenError> {
    compile_with(model, &CodegenOptions::default())
}

/// Compiles a model with explicit options.
///
/// # Errors
///
/// See [`CodegenError`].
pub fn compile_with(
    model: &ControlModel,
    options: &CodegenOptions,
) -> Result<GeneratedProgram, CodegenError> {
    if options.log_vars.len() > 2 {
        return Err(CodegenError::TooManyLogVars);
    }
    // Housekeeping variables live after the model's, on their own line.
    let mut variables = model.variables.clone();
    while !variables.len().is_multiple_of(4) {
        variables.push(format!("_align{}", variables.len()));
    }
    variables.push("__iter".to_string());
    variables.push("__ringp".to_string());
    variables.push("__cksum".to_string());
    variables.push("_align_hk".to_string());
    let layout = Layout::place(&variables);
    if options.runtime_epilogue && layout.end() > RING_BASE {
        return Err(CodegenError::RingOverlap);
    }

    let mut e = Emitter {
        layout: &layout,
        out: String::new(),
        next_label: 0,
    };
    e.out.push_str(&format!(
        "; generated by bera-rtw from model `{}` — do not edit\n.text\nstart:\n    nop\nloop:\n",
        model.name
    ));
    for stmt in &model.body {
        e.stmt(stmt)?;
    }

    if options.runtime_epilogue {
        let iter = e.address_of("__iter")?;
        let ringp = e.address_of("__ringp")?;
        let cksum = e.address_of("__cksum")?;
        // Ring logging of up to two variables.
        e.line(&format!("li   r1, {iter:#x}"));
        e.line("ld   r2, [r1+0]");
        e.line("li   r3, 55");
        e.line("and  r4, r2, r3");
        e.line("li   r3, 8");
        e.line("mul  r4, r4, r3");
        e.line(&format!("li   r1, {ringp:#x}"));
        e.line("st   r4, [r1+0]");
        e.line(&format!("li   r3, {RING_BASE:#x}"));
        e.line("add  r5, r4, r3");
        for (i, var) in options.log_vars.iter().enumerate() {
            let addr = e.address_of(var)?;
            e.line(&format!("li   r1, {addr:#x}"));
            e.line("ld   r6, [r1+0]");
            e.line(&format!("st   r6, [r5+{}]", i * 4));
        }
        // Housekeeping scrub over the ring's first 28 words.
        e.line(&format!("li   r8, {RING_BASE:#x}"));
        e.line(&format!("li   r9, {:#x}", RING_BASE + 0x70));
        e.line("li   r10, 0");
        e.label("scrub");
        e.line("ld   r11, [r8+0]");
        e.line("xor  r10, r10, r11");
        e.line("addi r8, r8, 4");
        e.line("cmp  r8, r9");
        e.line("blt  scrub");
        e.line(&format!("li   r1, {cksum:#x}"));
        e.line("st   r10, [r1+0]");
        // Iteration counter.
        e.line(&format!("li   r1, {iter:#x}"));
        e.line("ld   r2, [r1+0]");
        e.line("addi r2, r2, 1");
        e.line("st   r2, [r1+0]");
    }

    e.line("yield");
    e.line("jmp  loop");

    let mut asm = e.out;
    // Data section: every placed variable, zero-initialised.
    asm.push_str(&format!("\n.data {DATA_BASE:#x}\n"));
    for v in &variables {
        asm.push_str(&format!("{}: .float 0.0\n", sanitise(v)));
    }

    let program = assemble(&asm).map_err(CodegenError::Assemble)?;
    Ok(GeneratedProgram {
        asm,
        program,
        layout,
    })
}

/// Label-safe variable names for the data section (addresses are used for
/// access, so the names are only documentation).
fn sanitise(v: &str) -> String {
    let mut s: String = v
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if !s.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_') {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::CmpOp;
    use bera_tcpu::machine::{Machine, RunExit};

    fn run_once(p: &GeneratedProgram, inputs: &[(u16, f32)]) -> Machine {
        let mut m = Machine::new();
        m.load_program(&p.program);
        for &(port, v) in inputs {
            m.set_port_f32(port, v);
        }
        assert_eq!(m.run(1_000_000), RunExit::Yield);
        m
    }

    #[test]
    fn constant_gain_model() {
        let model = ControlModel::new("gain").var("u").body(vec![
            Stmt::assign("u", Expr::mul(Expr::num(0.5), Expr::input(0))),
            Stmt::output(2, "u"),
        ]);
        let p = compile_with(
            &model,
            &CodegenOptions {
                runtime_epilogue: false,
                log_vars: vec![],
            },
        )
        .unwrap();
        let m = run_once(&p, &[(0, 8.0)]);
        assert_eq!(m.port_out_f32(2), 4.0);
    }

    #[test]
    fn if_else_selects_branch() {
        let model = ControlModel::new("sel").var("y").body(vec![
            Stmt::if_else(
                Cond::new(Expr::input(0), CmpOp::Gt, Expr::num(1.0)),
                vec![Stmt::assign("y", Expr::num(10.0))],
                vec![Stmt::assign("y", Expr::num(20.0))],
            ),
            Stmt::output(2, "y"),
        ]);
        let p = compile(&model).unwrap();
        assert_eq!(run_once(&p, &[(0, 2.0)]).port_out_f32(2), 10.0);
        assert_eq!(run_once(&p, &[(0, 0.5)]).port_out_f32(2), 20.0);
    }

    #[test]
    fn state_persists_across_iterations() {
        // x := x + in0 — an accumulator.
        let model = ControlModel::new("acc").var("x").body(vec![
            Stmt::assign("x", Expr::add(Expr::var("x"), Expr::input(0))),
            Stmt::output(2, "x"),
        ]);
        let p = compile(&model).unwrap();
        let mut m = Machine::new();
        m.load_program(&p.program);
        for k in 1..=5 {
            m.set_port_f32(0, 1.5);
            assert_eq!(m.run(1_000_000), RunExit::Yield);
            assert_eq!(m.port_out_f32(2), 1.5 * k as f32);
        }
    }

    #[test]
    fn unknown_variable_rejected() {
        let model = ControlModel::new("bad")
            .var("a")
            .body(vec![Stmt::assign("a", Expr::var("ghost"))]);
        assert_eq!(
            compile(&model).unwrap_err(),
            CodegenError::UnknownVariable("ghost".to_string())
        );
    }

    #[test]
    fn deep_expression_rejected() {
        // Right-leaning chain deeper than the register stack.
        let mut e = Expr::num(1.0);
        for _ in 0..8 {
            e = Expr::add(Expr::num(1.0), e);
        }
        let model = ControlModel::new("deep")
            .var("a")
            .body(vec![Stmt::assign("a", e)]);
        assert!(matches!(
            compile(&model).unwrap_err(),
            CodegenError::ExpressionTooDeep { .. }
        ));
    }

    #[test]
    fn epilogue_is_emitted_and_runs() {
        let model = ControlModel::new("hk").var("u").body(vec![
            Stmt::assign("u", Expr::input(0)),
            Stmt::output(2, "u"),
        ]);
        let p = compile_with(
            &model,
            &CodegenOptions {
                runtime_epilogue: true,
                log_vars: vec!["u".to_string()],
            },
        )
        .unwrap();
        assert!(p.asm.contains("scrub"));
        let mut m = Machine::new();
        m.load_program(&p.program);
        for _ in 0..70 {
            m.set_port_f32(0, 3.0);
            assert_eq!(m.run(1_000_000), RunExit::Yield, "ring wrap must work");
        }
    }

    #[test]
    fn first_state_variable_lands_in_line_zero() {
        let model = ControlModel::new("m").var("x").var("y");
        let p = compile(&model).unwrap();
        assert_eq!(p.layout.line_of("x"), Some(0));
    }

    #[test]
    fn too_many_log_vars_rejected() {
        let model = ControlModel::new("m").var("a").var("b").var("c");
        let opts = CodegenOptions {
            runtime_epilogue: true,
            log_vars: vec!["a".into(), "b".into(), "c".into()],
        };
        assert_eq!(
            compile_with(&model, &opts).unwrap_err(),
            CodegenError::TooManyLogVars
        );
    }
}
