//! # bera-rtw — the Real-Time Workshop analogue
//!
//! The paper's controller code was *generated*: a Simulink block diagram
//! compiled to Ada by the Real-Time Workshop Ada Coder, then cross-compiled
//! for Thor. This crate closes the same loop for the reproduction: a
//! controller is described as a **model** (a statement IR over named
//! variables, [`ir`]), variables are placed in data memory line-by-line
//! ([`layout`]), and the model is compiled to tcpu assembly in exactly the
//! unoptimised statement-by-statement style the paper's toolchain produced
//! ([`codegen`]):
//!
//! * every statement loads its operands from memory and stores its result;
//! * numeric constants become instruction-stream immediates;
//! * base addresses are materialised per statement;
//! * optionally, the standard run-time epilogue (ring-buffer logging and
//!   the housekeeping scrub) is appended, so generated workloads are
//!   campaign-compatible with the hand-written ones.
//!
//! [`models`] contains the paper's two controllers expressed as IR; the
//! tests prove the generated code is **bit-for-bit output-equivalent** to
//! the hand-written `algorithm1.s`/`algorithm2.s` in closed loop.
//!
//! # Example
//!
//! ```
//! use bera_rtw::ir::{Cond, Expr, Stmt};
//! use bera_rtw::{compile, ControlModel};
//!
//! // u = 0.5 * in0;  out0 = u
//! let model = ControlModel::new("gain")
//!     .var("u")
//!     .body(vec![
//!         Stmt::assign("u", Expr::mul(Expr::num(0.5), Expr::input(0))),
//!         Stmt::output(2, "u"),
//!     ]);
//! let program = compile(&model).unwrap();
//! assert!(program.asm.contains("fmul"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod ir;
pub mod layout;
pub mod models;

pub use codegen::{compile, CodegenError, CodegenOptions, GeneratedProgram};
pub use ir::{Cond, Expr, Stmt};
pub use layout::Layout;
pub use models::{algorithm_one_model, algorithm_three_model, algorithm_two_model};

use serde::{Deserialize, Serialize};

/// A controller model: named `f32` variables plus the statement list
/// executed once per control iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlModel {
    /// Model name (becomes a comment header in the generated assembly).
    pub name: String,
    /// Variables in declaration order; the declaration order determines
    /// the memory layout (four variables per 16-byte cache line, so
    /// padding entries can force line boundaries).
    pub variables: Vec<String>,
    /// The per-iteration statement list.
    pub body: Vec<Stmt>,
}

impl ControlModel {
    /// Creates an empty model.
    #[must_use]
    pub fn new(name: &str) -> Self {
        ControlModel {
            name: name.to_string(),
            variables: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Declares a variable (builder style).
    #[must_use]
    pub fn var(mut self, name: &str) -> Self {
        self.variables.push(name.to_string());
        self
    }

    /// Declares a padding slot, forcing subsequent variables towards the
    /// next cache line.
    #[must_use]
    pub fn pad(mut self) -> Self {
        let n = self.variables.len();
        self.variables.push(format!("_pad{n}"));
        self
    }

    /// Sets the statement body (builder style).
    #[must_use]
    pub fn body(mut self, body: Vec<Stmt>) -> Self {
        self.body = body;
        self
    }
}
