//! The paper's controllers expressed as models — what the Simulink block
//! diagram flattens to before code generation.

use crate::ir::{CmpOp, Cond, Expr, Stmt};
use crate::ControlModel;

const KP: f32 = 0.045;
const KI: f32 = 0.05;
const T: f32 = 0.0154;
const UMIN: f32 = 0.0;
const UMAX: f32 = 70.0;

fn v(name: &str) -> Expr {
    Expr::var(name)
}

fn n(value: f32) -> Expr {
    Expr::num(value)
}

/// Shared prologue: sample the ports and compute the control error.
fn prologue() -> Vec<Stmt> {
    vec![
        Stmt::assign("rvar", Expr::input(0)),
        Stmt::assign("yvar", Expr::input(1)),
        Stmt::assign("e", Expr::sub(v("rvar"), v("yvar"))),
    ]
}

/// Shared PI core: `u = Kp·e + x`, output limiting, anti-windup gain
/// select, and the integration `x += T·e·Ki` — the same arithmetic in the
/// same order as the hand-written workloads, so outputs are bit-identical.
fn pi_core() -> Vec<Stmt> {
    vec![
        Stmt::assign("u", Expr::add(Expr::mul(v("e"), n(KP)), v("x"))),
        Stmt::assign("u_lim", v("u")),
        Stmt::if_then(
            Cond::new(v("u_lim"), CmpOp::Gt, n(UMAX)),
            vec![Stmt::assign("u_lim", n(UMAX))],
        ),
        Stmt::if_then(
            Cond::new(v("u_lim"), CmpOp::Lt, n(UMIN)),
            vec![Stmt::assign("u_lim", n(UMIN))],
        ),
        Stmt::assign("kiv", n(KI)),
        Stmt::if_else(
            Cond::new(v("u"), CmpOp::Gt, n(UMAX)),
            vec![Stmt::if_then(
                Cond::new(v("e"), CmpOp::Gt, n(0.0)),
                vec![Stmt::assign("kiv", n(0.0))],
            )],
            vec![Stmt::if_then(
                Cond::new(v("u"), CmpOp::Lt, n(UMIN)),
                vec![Stmt::if_then(
                    Cond::new(v("e"), CmpOp::Lt, n(0.0)),
                    vec![Stmt::assign("kiv", n(0.0))],
                )],
            )],
        ),
        Stmt::assign("te", Expr::mul(v("e"), n(T))),
        Stmt::assign("teki", Expr::mul(v("te"), v("kiv"))),
        Stmt::assign("x", Expr::add(v("x"), v("teki"))),
    ]
}

/// Algorithm I as a model: the plain PI controller.
#[must_use]
pub fn algorithm_one_model() -> ControlModel {
    let mut body = prologue();
    body.extend(pi_core());
    body.push(Stmt::output(2, "u_lim"));
    ControlModel::new("algorithm1")
        .var("x")
        .pad()
        .pad()
        .pad()
        .var("e")
        .var("u")
        .var("u_lim")
        .var("kiv")
        .var("yvar")
        .var("rvar")
        .var("te")
        .var("teki")
        .body(body)
}

/// Algorithm II as a model: executable assertions on the state and output
/// plus best effort recovery, exactly as in Section 4.3.
#[must_use]
pub fn algorithm_two_model() -> ControlModel {
    let mut body = prologue();
    // Executable assertion on x, then backup (assert *before* the backup).
    body.push(Stmt::if_else(
        Cond::new(v("x"), CmpOp::Lt, n(UMIN)),
        vec![Stmt::assign("x", v("x_old"))],
        vec![Stmt::if_else(
            Cond::new(v("x"), CmpOp::Gt, n(UMAX)),
            vec![Stmt::assign("x", v("x_old"))],
            vec![Stmt::assign("x_old", v("x"))],
        )],
    ));
    body.extend(pi_core());
    // Executable assertion on the output.
    body.push(Stmt::if_else(
        Cond::new(v("u_lim"), CmpOp::Lt, n(UMIN)),
        vec![
            Stmt::assign("u_lim", v("u_old")),
            Stmt::assign("x", v("x_old")),
        ],
        vec![Stmt::if_then(
            Cond::new(v("u_lim"), CmpOp::Gt, n(UMAX)),
            vec![
                Stmt::assign("u_lim", v("u_old")),
                Stmt::assign("x", v("x_old")),
            ],
        )],
    ));
    body.push(Stmt::assign("u_old", v("u_lim")));
    body.push(Stmt::output(2, "u_lim"));
    ControlModel::new("algorithm2")
        .var("x")
        .pad()
        .pad()
        .pad()
        .var("e")
        .var("u")
        .var("u_lim")
        .var("kiv")
        .var("yvar")
        .var("rvar")
        .var("te")
        .var("teki")
        .var("x_old")
        .var("u_old")
        .body(body)
}

/// Algorithm III as a model: Algorithm II plus the rate assertion on the
/// state ("more sophisticated assertions", the paper's future work). The
/// state may not move more than 5° between samples, checked against the
/// last accepted backup.
#[must_use]
pub fn algorithm_three_model() -> ControlModel {
    let mut body = prologue();
    // Range assertion, then rate assertion, then backup.
    let accept_or_rate = vec![Stmt::if_else(
        Cond::new(v("x"), CmpOp::Gt, n(UMAX)),
        vec![Stmt::assign("x", v("x_old"))],
        vec![
            Stmt::assign("dx", Expr::sub(v("x"), v("x_old"))),
            Stmt::if_else(
                Cond::new(v("dx"), CmpOp::Gt, n(5.0)),
                vec![Stmt::assign("x", v("x_old"))],
                vec![Stmt::if_else(
                    Cond::new(v("dx"), CmpOp::Lt, n(-5.0)),
                    vec![Stmt::assign("x", v("x_old"))],
                    vec![Stmt::assign("x_old", v("x"))],
                )],
            ),
        ],
    )];
    body.push(Stmt::if_else(
        Cond::new(v("x"), CmpOp::Lt, n(UMIN)),
        vec![Stmt::assign("x", v("x_old"))],
        accept_or_rate,
    ));
    body.extend(pi_core());
    body.push(Stmt::if_else(
        Cond::new(v("u_lim"), CmpOp::Lt, n(UMIN)),
        vec![
            Stmt::assign("u_lim", v("u_old")),
            Stmt::assign("x", v("x_old")),
        ],
        vec![Stmt::if_then(
            Cond::new(v("u_lim"), CmpOp::Gt, n(UMAX)),
            vec![
                Stmt::assign("u_lim", v("u_old")),
                Stmt::assign("x", v("x_old")),
            ],
        )],
    ));
    body.push(Stmt::assign("u_old", v("u_lim")));
    body.push(Stmt::output(2, "u_lim"));
    ControlModel::new("algorithm3")
        .var("x")
        .pad()
        .pad()
        .pad()
        .var("e")
        .var("u")
        .var("u_lim")
        .var("kiv")
        .var("yvar")
        .var("rvar")
        .var("te")
        .var("teki")
        .var("x_old")
        .var("u_old")
        .var("dx")
        .body(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{compile_with, CodegenOptions};

    fn options() -> CodegenOptions {
        CodegenOptions {
            runtime_epilogue: true,
            log_vars: vec!["u_lim".to_string(), "e".to_string()],
        }
    }

    #[test]
    fn both_models_compile() {
        for model in [
            algorithm_one_model(),
            algorithm_two_model(),
            algorithm_three_model(),
        ] {
            let p = compile_with(&model, &options()).expect("model compiles");
            assert!(p.program.code_len() > 60, "{}", model.name);
        }
    }

    #[test]
    fn state_lives_in_cache_line_zero() {
        let p = compile_with(&algorithm_one_model(), &options()).unwrap();
        assert_eq!(p.layout.line_of("x"), Some(0));
        assert_eq!(p.layout.line_of("e"), Some(1), "padding forced a new line");
    }

    #[test]
    fn algorithm_two_backups_in_separate_line() {
        let p = compile_with(&algorithm_two_model(), &options()).unwrap();
        assert_ne!(p.layout.line_of("x"), p.layout.line_of("x_old"));
    }
}
