//! The statement IR: what a block-diagram flattener would hand to the
//! code generator.

use serde::{Deserialize, Serialize};

/// An `f32` expression over model variables, literals and input ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A model variable (loaded from memory at evaluation).
    Var(String),
    /// A literal constant (an instruction-stream immediate).
    Num(f32),
    /// An input port read.
    Input(u16),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
}

// add/sub/mul/div are plain-function constructors on purpose: model code
// builds trees as `Expr::add(a, b)`, mirroring the generated-code style,
// and the operands are owned `Expr`s rather than `self`.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// A variable reference.
    #[must_use]
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// A literal.
    #[must_use]
    pub fn num(v: f32) -> Expr {
        Expr::Num(v)
    }

    /// An input-port read.
    #[must_use]
    pub fn input(port: u16) -> Expr {
        Expr::Input(port)
    }

    /// `a + b`.
    #[must_use]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    #[must_use]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    #[must_use]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a / b`.
    #[must_use]
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// Depth of the operand stack needed to evaluate this expression with
    /// the naive right-after-left register discipline.
    #[must_use]
    pub fn stack_depth(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Num(_) | Expr::Input(_) => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.stack_depth().max(1 + b.stack_depth())
            }
        }
    }

    /// All variables this expression reads.
    pub fn variables<'a>(&'a self, into: &mut Vec<&'a str>) {
        match self {
            Expr::Var(v) => into.push(v),
            Expr::Num(_) | Expr::Input(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.variables(into);
                b.variables(into);
            }
        }
    }
}

/// Comparison operators for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The branch mnemonic that jumps when the comparison is *false*
    /// (the code generator branches around the then-block).
    #[must_use]
    pub fn inverse_branch(&self) -> &'static str {
        match self {
            CmpOp::Lt => "bge",
            CmpOp::Le => "bgt",
            CmpOp::Gt => "ble",
            CmpOp::Ge => "blt",
            CmpOp::Eq => "bne",
            CmpOp::Ne => "beq",
        }
    }
}

/// A float comparison between two expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: Expr,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Cond {
    /// Builds a condition.
    #[must_use]
    pub fn new(lhs: Expr, op: CmpOp, rhs: Expr) -> Self {
        Cond { lhs, op, rhs }
    }
}

/// A statement of the per-iteration body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `dst := expr` — evaluate naively, store to memory.
    Assign {
        /// Destination variable.
        dst: String,
        /// Value.
        expr: Expr,
    },
    /// `if cond { then } else { els }`.
    If {
        /// The condition.
        cond: Cond,
        /// Statements when true.
        then: Vec<Stmt>,
        /// Statements when false.
        els: Vec<Stmt>,
    },
    /// Write a variable to an output port.
    Output {
        /// Port index.
        port: u16,
        /// Source variable.
        var: String,
    },
}

impl Stmt {
    /// `dst := expr`.
    #[must_use]
    pub fn assign(dst: &str, expr: Expr) -> Stmt {
        Stmt::Assign {
            dst: dst.to_string(),
            expr,
        }
    }

    /// `if cond { then }`.
    #[must_use]
    pub fn if_then(cond: Cond, then: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then,
            els: Vec::new(),
        }
    }

    /// `if cond { then } else { els }`.
    #[must_use]
    pub fn if_else(cond: Cond, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
        Stmt::If { cond, then, els }
    }

    /// `out port, var`.
    #[must_use]
    pub fn output(port: u16, var: &str) -> Stmt {
        Stmt::Output {
            port,
            var: var.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_depth_of_leaves_is_one() {
        assert_eq!(Expr::num(1.0).stack_depth(), 1);
        assert_eq!(Expr::var("x").stack_depth(), 1);
        assert_eq!(Expr::input(0).stack_depth(), 1);
    }

    #[test]
    fn stack_depth_grows_rightward() {
        // (a + b) needs 2; (a + (b + c)) needs 3; ((a + b) + c) needs 2.
        let two = Expr::add(Expr::var("a"), Expr::var("b"));
        assert_eq!(two.stack_depth(), 2);
        let right = Expr::add(Expr::var("a"), Expr::add(Expr::var("b"), Expr::var("c")));
        assert_eq!(right.stack_depth(), 3);
        let left = Expr::add(Expr::add(Expr::var("a"), Expr::var("b")), Expr::var("c"));
        assert_eq!(left.stack_depth(), 2);
    }

    #[test]
    fn variables_collected_in_order() {
        let e = Expr::mul(Expr::var("e"), Expr::add(Expr::num(1.0), Expr::var("x")));
        let mut vars = Vec::new();
        e.variables(&mut vars);
        assert_eq!(vars, vec!["e", "x"]);
    }

    #[test]
    fn inverse_branches() {
        assert_eq!(CmpOp::Lt.inverse_branch(), "bge");
        assert_eq!(CmpOp::Gt.inverse_branch(), "ble");
        assert_eq!(CmpOp::Eq.inverse_branch(), "bne");
    }
}
