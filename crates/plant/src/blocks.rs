//! A small Simulink-like block library.
//!
//! The paper's controller and plant were modelled as Simulink block
//! diagrams. This module provides the handful of block types those diagrams
//! use, so models can be composed the same way: every block is a
//! deterministic sampled-data element with a `step` method consuming one
//! input sample and producing one output sample.

use serde::{Deserialize, Serialize};

/// A pure gain: `y = k·u`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gain {
    /// Multiplicative factor.
    pub k: f64,
}

impl Gain {
    /// Creates a gain block.
    #[must_use]
    pub fn new(k: f64) -> Self {
        Gain { k }
    }

    /// One sample: `k * u`.
    #[must_use]
    pub fn step(&self, u: f64) -> f64 {
        self.k * u
    }
}

/// A two-input sum with configurable signs: `y = s1·a + s2·b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sum {
    s1: f64,
    s2: f64,
}

impl Sum {
    /// `y = a + b`.
    #[must_use]
    pub fn add() -> Self {
        Sum { s1: 1.0, s2: 1.0 }
    }

    /// `y = a - b` (the error junction `e = r - y`).
    #[must_use]
    pub fn subtract() -> Self {
        Sum { s1: 1.0, s2: -1.0 }
    }

    /// One sample.
    #[must_use]
    pub fn step(&self, a: f64, b: f64) -> f64 {
        self.s1 * a + self.s2 * b
    }
}

/// A forward-Euler discrete-time integrator with optional saturation:
/// `x(k) = clamp(x(k-1) + T·u(k))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Integrator {
    t: f64,
    x: f64,
    limits: Option<(f64, f64)>,
}

impl Integrator {
    /// Creates an unlimited integrator with sample interval `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not positive and finite.
    #[must_use]
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite() && t > 0.0, "sample interval must be positive");
        Integrator {
            t,
            x: 0.0,
            limits: None,
        }
    }

    /// Adds saturation limits to the integrator state.
    #[must_use]
    pub fn with_limits(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "lower limit must not exceed upper limit");
        self.limits = Some((lo, hi));
        self
    }

    /// Integrates one sample and returns the new state.
    pub fn step(&mut self, u: f64) -> f64 {
        self.x += self.t * u;
        if let Some((lo, hi)) = self.limits {
            self.x = self.x.clamp(lo, hi);
        }
        self.x
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> f64 {
        self.x
    }

    /// Resets the state to zero.
    pub fn reset(&mut self) {
        self.x = 0.0;
    }
}

/// Saturation: `y = clamp(u, lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Saturation {
    lo: f64,
    hi: f64,
}

impl Saturation {
    /// Creates a saturation block.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "lower limit must not exceed upper limit");
        Saturation { lo, hi }
    }

    /// One sample.
    #[must_use]
    pub fn step(&self, u: f64) -> f64 {
        u.clamp(self.lo, self.hi)
    }

    /// Returns `true` when `u` would be limited.
    #[must_use]
    pub fn saturates(&self, u: f64) -> bool {
        u < self.lo || u > self.hi
    }
}

/// A one-sample delay: `y(k) = u(k-1)` — Simulink's *Unit Delay*, the block
/// that materialises the `x_old`/`u_old` backups of Algorithm II.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UnitDelay {
    x: f64,
}

impl UnitDelay {
    /// Creates a delay initialised to zero.
    #[must_use]
    pub fn new() -> Self {
        UnitDelay::default()
    }

    /// One sample: returns the previous input.
    pub fn step(&mut self, u: f64) -> f64 {
        std::mem::replace(&mut self.x, u)
    }

    /// Current stored value.
    #[must_use]
    pub fn state(&self) -> f64 {
        self.x
    }
}

/// A first-order low-pass lag `τ·dy/dt + y = u`, discretised with forward
/// Euler at sample interval `t` — Simulink's *Transfer Fcn* `1/(τs+1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FirstOrderLag {
    alpha: f64,
    y: f64,
}

impl FirstOrderLag {
    /// Creates a lag with time constant `tau` sampled every `t` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < t < tau` (stability of the discretisation).
    #[must_use]
    pub fn new(tau: f64, t: f64) -> Self {
        assert!(t > 0.0 && tau > t, "need 0 < t < tau for stability");
        FirstOrderLag {
            alpha: t / tau,
            y: 0.0,
        }
    }

    /// One sample.
    pub fn step(&mut self, u: f64) -> f64 {
        self.y += self.alpha * (u - self.y);
        self.y
    }

    /// Current output.
    #[must_use]
    pub fn output(&self) -> f64 {
        self.y
    }
}

/// A 1-D lookup table with linear interpolation and clamped ends —
/// Simulink's *Lookup Table* (used for torque maps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lookup1D {
    breakpoints: Vec<f64>,
    values: Vec<f64>,
}

impl Lookup1D {
    /// Creates a lookup table.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, have fewer than two points,
    /// or the breakpoints are not strictly increasing.
    #[must_use]
    pub fn new(breakpoints: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(breakpoints.len(), values.len(), "length mismatch");
        assert!(breakpoints.len() >= 2, "need at least two points");
        assert!(
            breakpoints.windows(2).all(|w| w[0] < w[1]),
            "breakpoints must be strictly increasing"
        );
        Lookup1D {
            breakpoints,
            values,
        }
    }

    /// Interpolated value at `u`.
    #[must_use]
    pub fn step(&self, u: f64) -> f64 {
        let bp = &self.breakpoints;
        let v = &self.values;
        if u <= bp[0] {
            return v[0];
        }
        if u >= bp[bp.len() - 1] {
            return v[v.len() - 1];
        }
        let i = bp.partition_point(|&b| b <= u);
        let f = (u - bp[i - 1]) / (bp[i] - bp[i - 1]);
        v[i - 1] + f * (v[i] - v[i - 1])
    }
}

/// Limits the slew rate of a signal: per sample, the output moves toward the
/// input by at most `rate·t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimiter {
    max_step: f64,
    y: f64,
}

impl RateLimiter {
    /// Creates a rate limiter allowing `rate` units/s at sample interval `t`.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive and finite.
    #[must_use]
    pub fn new(rate: f64, t: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(t > 0.0 && t.is_finite(), "sample interval must be positive");
        RateLimiter {
            max_step: rate * t,
            y: 0.0,
        }
    }

    /// One sample.
    pub fn step(&mut self, u: f64) -> f64 {
        let delta = (u - self.y).clamp(-self.max_step, self.max_step);
        self.y += delta;
        self.y
    }
}

/// A block-diagram PI controller composed from the primitives above —
/// demonstrating that the [`bera_core::PiController`] is exactly the
/// Figure 2 diagram (sum → gains → limited integrator → saturation with
/// anti-windup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockDiagramPi {
    kp: Gain,
    ki: Gain,
    err: Sum,
    integrator: Integrator,
    limiter: Saturation,
}

impl BlockDiagramPi {
    /// Builds the Figure 2 diagram with the given gains and limits.
    #[must_use]
    pub fn new(kp: f64, ki: f64, t: f64, lo: f64, hi: f64) -> Self {
        BlockDiagramPi {
            kp: Gain::new(kp),
            ki: Gain::new(ki),
            err: Sum::subtract(),
            integrator: Integrator::new(t),
            limiter: Saturation::new(lo, hi),
        }
    }

    /// One control iteration — the same dataflow as Algorithm I.
    pub fn step(&mut self, r: f64, y: f64) -> f64 {
        let e = self.err.step(r, y);
        let u = self.kp.step(e) + self.integrator.state();
        let u_lim = self.limiter.step(u);
        let anti_windup =
            self.limiter.saturates(u) && ((u > u_lim && e > 0.0) || (u < u_lim && e < 0.0));
        if !anti_windup {
            self.integrator.step(self.ki.step(e));
        }
        u_lim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bera_core::{Controller, PiController, PiGains};

    #[test]
    fn gain_scales() {
        assert_eq!(Gain::new(2.5).step(4.0), 10.0);
    }

    #[test]
    fn sum_signs() {
        assert_eq!(Sum::add().step(2.0, 3.0), 5.0);
        assert_eq!(Sum::subtract().step(2.0, 3.0), -1.0);
    }

    #[test]
    fn integrator_accumulates_scaled_by_t() {
        let mut i = Integrator::new(0.5);
        assert_eq!(i.step(2.0), 1.0);
        assert_eq!(i.step(2.0), 2.0);
        i.reset();
        assert_eq!(i.state(), 0.0);
    }

    #[test]
    fn integrator_saturates() {
        let mut i = Integrator::new(1.0).with_limits(-1.0, 1.0);
        i.step(100.0);
        assert_eq!(i.state(), 1.0);
        i.step(-300.0);
        assert_eq!(i.state(), -1.0);
    }

    #[test]
    fn saturation_block() {
        let s = Saturation::new(0.0, 70.0);
        assert_eq!(s.step(100.0), 70.0);
        assert_eq!(s.step(-1.0), 0.0);
        assert_eq!(s.step(35.0), 35.0);
        assert!(s.saturates(71.0));
        assert!(!s.saturates(70.0));
    }

    #[test]
    fn unit_delay_shifts_by_one() {
        let mut d = UnitDelay::new();
        assert_eq!(d.step(1.0), 0.0);
        assert_eq!(d.step(2.0), 1.0);
        assert_eq!(d.state(), 2.0);
    }

    #[test]
    fn first_order_lag_converges() {
        let mut l = FirstOrderLag::new(0.1, 0.01);
        let mut y = 0.0;
        for _ in 0..200 {
            y = l.step(1.0);
        }
        assert!((y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn first_order_lag_monotone_step_response() {
        let mut l = FirstOrderLag::new(0.1, 0.01);
        let mut prev = 0.0;
        for _ in 0..50 {
            let y = l.step(1.0);
            assert!(y >= prev);
            prev = y;
        }
    }

    #[test]
    fn lookup_interpolates_and_clamps() {
        let lut = Lookup1D::new(vec![0.0, 10.0, 20.0], vec![0.0, 100.0, 150.0]);
        assert_eq!(lut.step(-5.0), 0.0);
        assert_eq!(lut.step(5.0), 50.0);
        assert_eq!(lut.step(15.0), 125.0);
        assert_eq!(lut.step(25.0), 150.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn lookup_rejects_bad_breakpoints() {
        let _ = Lookup1D::new(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn rate_limiter_limits_slew() {
        let mut rl = RateLimiter::new(10.0, 0.1); // 1.0 per sample
        assert_eq!(rl.step(5.0), 1.0);
        assert_eq!(rl.step(5.0), 2.0);
        assert_eq!(rl.step(-5.0), 1.0);
    }

    #[test]
    fn block_diagram_pi_matches_algorithm_one() {
        let g = PiGains::paper();
        let mut blocks = BlockDiagramPi::new(g.kp, g.ki, g.t, 0.0, 70.0);
        let mut reference = PiController::paper();
        let mut y = 0.0;
        for k in 0..650 {
            let r = if k < 325 { 2000.0 } else { 3000.0 };
            let u1 = blocks.step(r, y);
            let u2 = reference.step(r, y);
            assert!(
                (u1 - u2).abs() < 1e-9,
                "iteration {k}: diagram {u1} vs algorithm {u2}"
            );
            y += (u1 * 40.0 - y) * 0.05;
        }
    }
}
