//! # bera-plant — the controlled object
//!
//! The paper's experimental setup splits the Simulink engine model in two:
//! the PI controller block executes on the Thor target, while **the rest of
//! the engine model** runs on the host workstation as an *environment
//! simulator*, exchanging `r`/`y`/`u_lim` with the target at every control
//! iteration. This crate is that environment simulator:
//!
//! * [`Engine`] — a nonlinear engine model (torque production with intake
//!   lag, rotational dynamics, speed-dependent losses);
//! * [`Profiles`] — the workload profiles of Figures 3 and 4: a reference
//!   speed step from 2000 to 3000 rpm at t = 5 s and load-torque
//!   disturbances in 3 s < t < 4 s and 7 s < t < 8 s;
//! * [`ClosedLoop`] — drives any [`bera_core::Controller`] against the
//!   engine for the paper's 650 iterations of 15.4 ms;
//! * [`blocks`] — a small Simulink-like block library (gain, sum,
//!   integrator, saturation, unit delay, first-order lag, lookup table,
//!   rate limiter) from which the same plant can be composed;
//! * [`Trace`] — recorded trajectories with CSV export and deviation
//!   metrics, used to regenerate the paper's figures.
//!
//! # Example
//!
//! ```
//! use bera_core::PiController;
//! use bera_plant::{ClosedLoop, Engine, Profiles};
//!
//! let mut cl = ClosedLoop::new(Engine::paper(), PiController::paper());
//! let trace = cl.run(&Profiles::paper(), 650);
//! // After the 2000->3000 rpm step the loop settles near the reference.
//! let last = trace.samples().last().unwrap();
//! assert!((last.y - 3000.0).abs() < 50.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod blocks;
pub mod closed_loop;
pub mod engine;
pub mod profiles;
pub mod trace;
pub mod turbojet;

pub use closed_loop::{ClosedLoop, FnController};
pub use engine::Engine;
pub use profiles::Profiles;
pub use trace::{Sample, Trace};
pub use turbojet::{MimoPlant, Turbojet};
