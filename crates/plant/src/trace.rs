//! Recorded closed-loop trajectories.

use serde::{Deserialize, Serialize};

/// One sample of a closed-loop run: everything the paper's figures plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Time since the start of the observed interval (s).
    pub t: f64,
    /// Reference speed `r` (rpm).
    pub r: f64,
    /// Measured engine speed `y` (rpm).
    pub y: f64,
    /// Limited controller output `u_lim` (degrees of throttle).
    pub u: f64,
    /// External load torque (N·m).
    pub load: f64,
}

/// A sequence of [`Sample`]s with export and comparison helpers.
///
/// # Example
///
/// ```
/// use bera_plant::{Sample, Trace};
/// let mut tr = Trace::new();
/// tr.push(Sample { t: 0.0, r: 2000.0, y: 1990.0, u: 10.0, load: 5.0 });
/// assert_eq!(tr.len(), 1);
/// assert!(tr.to_csv().starts_with("t,r,y,u,load"));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    samples: Vec<Sample>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, s: Sample) {
        self.samples.push(s);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the trace has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The controller output sequence `u_lim(k)` — what the failure
    /// classifier compares against the fault-free reference.
    #[must_use]
    pub fn outputs(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.u).collect()
    }

    /// The measured speed sequence `y(k)`.
    #[must_use]
    pub fn speeds(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.y).collect()
    }

    /// Per-sample absolute output deviation against a reference trace.
    ///
    /// # Panics
    ///
    /// Panics if the traces have different lengths.
    #[must_use]
    pub fn output_deviation(&self, reference: &Trace) -> Vec<f64> {
        assert_eq!(
            self.len(),
            reference.len(),
            "traces must cover the same interval"
        );
        self.samples
            .iter()
            .zip(reference.samples.iter())
            .map(|(a, b)| (a.u - b.u).abs())
            .collect()
    }

    /// Largest absolute output deviation against a reference trace.
    #[must_use]
    pub fn max_output_deviation(&self, reference: &Trace) -> f64 {
        self.output_deviation(reference)
            .into_iter()
            .fold(0.0, f64::max)
    }

    /// Serialises the trace as CSV with a header row — the format consumed
    /// by the figure-regeneration scripts.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,r,y,u,load\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.4},{:.3},{:.3},{:.4},{:.3}\n",
                s.t, s.r, s.y, s.u, s.load
            ));
        }
        out
    }
}

impl FromIterator<Sample> for Trace {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        Trace {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sample> for Trace {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, u: f64) -> Sample {
        Sample {
            t,
            r: 2000.0,
            y: 1990.0,
            u,
            load: 5.0,
        }
    }

    #[test]
    fn csv_roundtrip_shape() {
        let tr: Trace = (0..3).map(|k| sample(k as f64, 10.0)).collect();
        let csv = tr.to_csv();
        assert_eq!(csv.lines().count(), 4, "header + 3 rows");
        assert!(csv.lines().nth(1).unwrap().starts_with("0.0000,"));
    }

    #[test]
    fn deviation_computation() {
        let a: Trace = (0..5).map(|k| sample(k as f64, 10.0)).collect();
        let b: Trace = (0..5)
            .map(|k| sample(k as f64, if k == 2 { 12.5 } else { 10.0 }))
            .collect();
        let dev = b.output_deviation(&a);
        assert_eq!(dev, vec![0.0, 0.0, 2.5, 0.0, 0.0]);
        assert_eq!(b.max_output_deviation(&a), 2.5);
    }

    #[test]
    #[should_panic(expected = "same interval")]
    fn deviation_length_mismatch_panics() {
        let a: Trace = (0..5).map(|k| sample(k as f64, 10.0)).collect();
        let b: Trace = (0..4).map(|k| sample(k as f64, 10.0)).collect();
        let _ = b.output_deviation(&a);
    }

    #[test]
    fn outputs_and_speeds_extracted() {
        let tr: Trace = (0..2).map(|k| sample(k as f64, k as f64)).collect();
        assert_eq!(tr.outputs(), vec![0.0, 1.0]);
        assert_eq!(tr.speeds(), vec![1990.0, 1990.0]);
    }

    #[test]
    fn empty_trace() {
        let tr = Trace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.to_csv(), "t,r,y,u,load\n");
    }
}
