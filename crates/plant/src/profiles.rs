//! Workload profiles: the reference speed of Figure 3 and the engine load
//! of Figure 4.

use serde::{Deserialize, Serialize};

/// A piecewise-linear function of time given by `(t, value)` breakpoints.
///
/// Values are held constant before the first and after the last breakpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Piecewise {
    points: Vec<(f64, f64)>,
}

impl Piecewise {
    /// Creates a piecewise-linear profile.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or the time stamps are not strictly
    /// increasing.
    #[must_use]
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "profile needs at least one breakpoint");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "breakpoint times must be strictly increasing"
        );
        Piecewise { points }
    }

    /// Evaluates the profile at time `t`.
    #[must_use]
    pub fn at(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let i = pts.partition_point(|&(pt, _)| pt <= t);
        let (t0, v0) = pts[i - 1];
        let (t1, v1) = pts[i];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// The breakpoints.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// The pair of input profiles driving one experiment: the reference speed
/// `r(t)` (rpm) and the external load torque (N·m).
///
/// # Example
///
/// ```
/// use bera_plant::Profiles;
/// let p = Profiles::paper();
/// assert_eq!(p.reference(1.0), 2000.0);
/// assert_eq!(p.reference(6.0), 3000.0);
/// assert!(p.load(3.5) > p.load(1.0), "hill between 3 and 4 s");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profiles {
    reference: Piecewise,
    load: Piecewise,
}

impl Profiles {
    /// Creates profiles from explicit piecewise functions.
    #[must_use]
    pub fn new(reference: Piecewise, load: Piecewise) -> Self {
        Profiles { reference, load }
    }

    /// The paper's profiles: the reference is 2000 rpm for the first five
    /// seconds and then changes momentarily to 3000 rpm; the load rises
    /// during 3 s < t < 4 s and 7 s < t < 8 s ("hilly terrain"), on top of
    /// a constant accessory load.
    #[must_use]
    pub fn paper() -> Self {
        let reference = Piecewise::new(vec![(0.0, 2000.0), (4.999, 2000.0), (5.0, 3000.0)]);
        let load = Piecewise::new(vec![
            (0.0, 5.0),
            (3.0, 5.0),
            (3.4, 20.0), // first hill crest
            (4.0, 5.0),
            (7.0, 5.0),
            (7.4, 24.0), // second, heavier hill
            (8.0, 5.0),
        ]);
        Profiles { reference, load }
    }

    /// A constant-reference, no-disturbance profile for unit tests.
    #[must_use]
    pub fn constant(rpm: f64) -> Self {
        Profiles {
            reference: Piecewise::new(vec![(0.0, rpm)]),
            load: Piecewise::new(vec![(0.0, 0.0)]),
        }
    }

    /// Reference speed (rpm) at time `t` (s).
    #[must_use]
    pub fn reference(&self, t: f64) -> f64 {
        self.reference.at(t)
    }

    /// External load torque (N·m) at time `t` (s).
    #[must_use]
    pub fn load(&self, t: f64) -> f64 {
        self.load.at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_holds_ends() {
        let p = Piecewise::new(vec![(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(p.at(0.0), 10.0);
        assert_eq!(p.at(5.0), 20.0);
    }

    #[test]
    fn piecewise_interpolates() {
        let p = Piecewise::new(vec![(0.0, 0.0), (10.0, 100.0)]);
        assert!((p.at(2.5) - 25.0).abs() < 1e-12);
        assert!((p.at(7.5) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn piecewise_exact_breakpoints() {
        let p = Piecewise::new(vec![(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)]);
        assert_eq!(p.at(0.0), 1.0);
        assert_eq!(p.at(1.0), 2.0);
        assert_eq!(p.at(2.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_rejects_unsorted() {
        let _ = Piecewise::new(vec![(1.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn piecewise_rejects_empty() {
        let _ = Piecewise::new(vec![]);
    }

    #[test]
    fn paper_reference_steps_at_five_seconds() {
        let p = Profiles::paper();
        assert_eq!(p.reference(0.0), 2000.0);
        assert_eq!(p.reference(4.9), 2000.0);
        assert_eq!(p.reference(5.0), 3000.0);
        assert_eq!(p.reference(10.0), 3000.0);
    }

    #[test]
    fn paper_load_has_two_hills() {
        let p = Profiles::paper();
        let base = p.load(1.0);
        assert!(p.load(3.4) > base + 10.0);
        assert!(p.load(7.4) > base + 10.0);
        assert_eq!(p.load(5.5), base, "flat between hills");
        // Second hill is the heavier one (Figure 4).
        assert!(p.load(7.4) > p.load(3.4));
    }

    #[test]
    fn constant_profile() {
        let p = Profiles::constant(2500.0);
        assert_eq!(p.reference(0.0), 2500.0);
        assert_eq!(p.reference(100.0), 2500.0);
        assert_eq!(p.load(3.0), 0.0);
    }
}
