//! The closed-loop driver: controller ↔ engine, one exchange per sample.
//!
//! This mirrors the paper's experimental setup, where the environment
//! simulator on the host exchanges data with the target system at the end
//! of every loop iteration.

use crate::engine::Engine;
use crate::profiles::Profiles;
use crate::trace::{Sample, Trace};
use bera_core::controller::{Controller, Limits};
use bera_core::PiGains;

/// Runs a [`Controller`] against an [`Engine`] under given [`Profiles`].
///
/// # Example
///
/// ```
/// use bera_core::ProtectedPiController;
/// use bera_plant::{ClosedLoop, Engine, Profiles};
/// let mut cl = ClosedLoop::new(Engine::paper(), ProtectedPiController::paper());
/// let trace = cl.run(&Profiles::paper(), 650);
/// assert_eq!(trace.len(), 650);
/// ```
#[derive(Debug, Clone)]
pub struct ClosedLoop<C> {
    engine: Engine,
    controller: C,
    sample_interval: f64,
    elapsed: f64,
    iteration: u64,
}

impl<C: Controller> ClosedLoop<C> {
    /// Creates a closed loop with the paper's 15.4 ms sample interval.
    #[must_use]
    pub fn new(engine: Engine, controller: C) -> Self {
        Self::with_interval(engine, controller, PiGains::PAPER_SAMPLE_INTERVAL)
    }

    /// Creates a closed loop with an explicit sample interval (s).
    ///
    /// # Panics
    ///
    /// Panics if `sample_interval` is not positive and finite.
    #[must_use]
    pub fn with_interval(engine: Engine, controller: C, sample_interval: f64) -> Self {
        assert!(
            sample_interval.is_finite() && sample_interval > 0.0,
            "sample interval must be positive"
        );
        ClosedLoop {
            engine,
            controller,
            sample_interval,
            elapsed: 0.0,
            iteration: 0,
        }
    }

    /// The engine (plant) state.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The controller.
    #[must_use]
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Mutable controller access — the hook SWIFI uses to corrupt state
    /// between iterations.
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// Elapsed simulated time (s).
    #[must_use]
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Executes one control iteration: sample the profiles, run the
    /// controller, actuate the engine, and return the recorded sample.
    pub fn step(&mut self, profiles: &Profiles) -> Sample {
        let t = self.elapsed;
        let r = profiles.reference(t);
        let load = profiles.load(t);
        let y = self.engine.speed_rpm();
        let u = self.controller.step(r, y);
        self.engine.advance(u, load, self.sample_interval);
        self.elapsed += self.sample_interval;
        self.iteration += 1;
        Sample { t, r, y, u, load }
    }

    /// Runs `iterations` control iterations and returns the trace.
    pub fn run(&mut self, profiles: &Profiles, iterations: usize) -> Trace {
        (0..iterations).map(|_| self.step(profiles)).collect()
    }
}

/// Adapts a closure `(r, y) -> u_lim` into a [`Controller`], so external
/// controllers — e.g. the Thor-like CPU simulator executing the compiled
/// workload — can be driven by [`ClosedLoop`].
///
/// # Example
///
/// ```
/// use bera_plant::{ClosedLoop, Engine, FnController, Profiles};
/// // A bang-bang controller as a closure.
/// let ctrl = FnController::new(|r, y| if y < r { 70.0 } else { 0.0 });
/// let mut cl = ClosedLoop::new(Engine::paper(), ctrl);
/// let trace = cl.run(&Profiles::constant(2500.0), 100);
/// assert_eq!(trace.len(), 100);
/// ```
pub struct FnController<F> {
    f: F,
    limits: Limits,
}

impl<F: FnMut(f64, f64) -> f64> FnController<F> {
    /// Wraps the closure with throttle limits.
    #[must_use]
    pub fn new(f: F) -> Self {
        FnController {
            f,
            limits: Limits::throttle(),
        }
    }

    /// Wraps the closure with explicit limits.
    #[must_use]
    pub fn with_limits(f: F, limits: Limits) -> Self {
        FnController { f, limits }
    }
}

impl<F: FnMut(f64, f64) -> f64> Controller for FnController<F> {
    fn step(&mut self, r: f64, y: f64) -> f64 {
        (self.f)(r, y)
    }

    fn reset(&mut self) {}

    fn state(&self) -> Vec<f64> {
        Vec::new()
    }

    fn set_state(&mut self, _index: usize, _value: f64) {
        panic!("FnController exposes no state");
    }

    fn limits(&self) -> Limits {
        self.limits
    }
}

impl<F> std::fmt::Debug for FnController<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnController")
            .field("limits", &self.limits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bera_core::{PiController, ProtectedPiController};

    #[test]
    fn paper_loop_tracks_first_reference() {
        let mut cl = ClosedLoop::new(Engine::paper(), PiController::paper());
        let trace = cl.run(&Profiles::paper(), 325); // first 5 s
                                                     // Check the settled window before the first load hill (2 s < t < 3 s);
                                                     // during the hill the paper's own Figure 3 shows the speed dipping.
        let settled: Vec<_> = trace
            .samples()
            .iter()
            .filter(|s| s.t > 2.0 && s.t < 3.0)
            .collect();
        assert!(!settled.is_empty());
        for s in settled {
            assert!(
                (s.y - 2000.0).abs() < 60.0,
                "settled near 2000 rpm at t={}: y={}",
                s.t,
                s.y
            );
        }
    }

    #[test]
    fn paper_loop_tracks_step_to_3000() {
        let mut cl = ClosedLoop::new(Engine::paper(), PiController::paper());
        let trace = cl.run(&Profiles::paper(), 650);
        let last = trace.samples().last().unwrap();
        assert!(
            (last.y - 3000.0).abs() < 50.0,
            "settled near 3000 rpm: {}",
            last.y
        );
    }

    #[test]
    fn load_hills_cause_speed_dips() {
        let mut cl = ClosedLoop::new(Engine::paper(), PiController::paper());
        let trace = cl.run(&Profiles::paper(), 650);
        // During the first hill (3 < t < 4) the speed drops measurably below
        // the reference.
        let dip = trace
            .samples()
            .iter()
            .filter(|s| s.t > 3.0 && s.t < 4.0)
            .map(|s| s.r - s.y)
            .fold(f64::MIN, f64::max);
        assert!(dip > 20.0, "visible dip under load, got {dip}");
        // And the controller opens the throttle to compensate.
        let u_flat = trace
            .samples()
            .iter()
            .filter(|s| s.t > 2.0 && s.t < 3.0)
            .map(|s| s.u)
            .fold(f64::MIN, f64::max);
        let u_hill = trace
            .samples()
            .iter()
            .filter(|s| s.t > 3.2 && s.t < 4.0)
            .map(|s| s.u)
            .fold(f64::MIN, f64::max);
        assert!(u_hill > u_flat + 2.0, "throttle opens on the hill");
    }

    #[test]
    fn protected_controller_identical_fault_free() {
        let mut a = ClosedLoop::new(Engine::paper(), PiController::paper());
        let mut b = ClosedLoop::new(Engine::paper(), ProtectedPiController::paper());
        let ta = a.run(&Profiles::paper(), 650);
        let tb = b.run(&Profiles::paper(), 650);
        assert_eq!(tb.max_output_deviation(&ta), 0.0);
    }

    #[test]
    fn outputs_stay_within_throttle_range() {
        let mut cl = ClosedLoop::new(Engine::paper(), PiController::paper());
        let trace = cl.run(&Profiles::paper(), 650);
        assert!(trace.outputs().iter().all(|&u| (0.0..=70.0).contains(&u)));
    }

    #[test]
    fn elapsed_time_advances() {
        let mut cl = ClosedLoop::new(Engine::paper(), PiController::paper());
        cl.run(&Profiles::paper(), 650);
        assert!((cl.elapsed() - 10.01).abs() < 0.01, "650 × 15.4 ms ≈ 10 s");
    }

    #[test]
    fn fn_controller_drives_loop() {
        let ctrl = FnController::new(|r: f64, y: f64| ((r - y) * 0.1).clamp(0.0, 70.0));
        let mut cl = ClosedLoop::new(Engine::paper(), ctrl);
        let trace = cl.run(&Profiles::constant(2200.0), 200);
        assert_eq!(trace.len(), 200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = ClosedLoop::with_interval(Engine::paper(), PiController::paper(), 0.0);
    }
}
