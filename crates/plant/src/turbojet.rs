//! A two-spool turbojet plant — the multiple-input multiple-output
//! controlled object for the paper's future-work direction ("jet-engine
//! controllers").
//!
//! Inputs: fuel flow `wf` and nozzle area `a8`, both normalised to
//! `[0, 1]`. Outputs: the two spool speeds `n1` (low-pressure) and `n2`
//! (high-pressure), normalised. The spools are first-order with mechanical
//! cross-coupling, the classic reduced-order turbojet model used for
//! multivariable control demonstrations.

use serde::{Deserialize, Serialize};

/// A multiple-input multiple-output plant driven one sample at a time.
pub trait MimoPlant {
    /// Number of actuator inputs.
    fn num_inputs(&self) -> usize;
    /// Number of measured outputs.
    fn num_outputs(&self) -> usize;
    /// Applies actuator vector `u` for one sample interval and returns the
    /// measurements at the end of the interval.
    ///
    /// # Panics
    ///
    /// Implementations panic if `u.len() != self.num_inputs()`.
    fn step(&mut self, u: &[f64]) -> Vec<f64>;
    /// Current measurements without advancing time.
    fn measure(&self) -> Vec<f64>;
    /// Returns the plant to its initial state.
    fn reset(&mut self);
}

/// Parameters of the [`Turbojet`] model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurbojetParams {
    /// Low-pressure spool time constant (s).
    pub tau1: f64,
    /// High-pressure spool time constant (s).
    pub tau2: f64,
    /// Steady-state gain from `[wf, a8]` to `n1`.
    pub b1: [f64; 2],
    /// Steady-state gain from `[wf, a8]` to `n2`.
    pub b2: [f64; 2],
    /// Mechanical cross-coupling coefficient between the spools.
    pub coupling: f64,
    /// Sample interval (s).
    pub dt: f64,
}

impl TurbojetParams {
    /// A stable, diagonally dominant demo engine sampled at 50 Hz.
    #[must_use]
    pub fn demo() -> Self {
        TurbojetParams {
            tau1: 0.8,
            tau2: 1.2,
            b1: [0.8, 0.2],
            b2: [0.5, 0.6],
            coupling: 0.15,
            dt: 0.02,
        }
    }
}

/// The two-spool turbojet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Turbojet {
    params: TurbojetParams,
    n1: f64,
    n2: f64,
    initial: (f64, f64),
}

impl Turbojet {
    /// Creates the engine idling at the given normalised spool speeds.
    #[must_use]
    pub fn new(params: TurbojetParams, n1: f64, n2: f64) -> Self {
        Turbojet {
            params,
            n1,
            n2,
            initial: (n1, n2),
        }
    }

    /// The demo engine at a low idle.
    #[must_use]
    pub fn demo() -> Self {
        Turbojet::new(TurbojetParams::demo(), 0.2, 0.2)
    }

    /// Spool speeds the engine settles at for constant actuators `u`.
    #[must_use]
    pub fn equilibrium(&self, u: &[f64; 2]) -> [f64; 2] {
        let p = self.params;
        // Solve the coupled steady state:
        //   n1 = b1·u + c (n2 - n1),  n2 = b2·u + c (n1 - n2)
        let g1 = p.b1[0] * u[0] + p.b1[1] * u[1];
        let g2 = p.b2[0] * u[0] + p.b2[1] * u[1];
        let c = p.coupling;
        let det = (1.0 + c) * (1.0 + c) - c * c;
        [
            ((1.0 + c) * g1 + c * g2) / det,
            ((1.0 + c) * g2 + c * g1) / det,
        ]
    }
}

impl MimoPlant for Turbojet {
    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        2
    }

    fn step(&mut self, u: &[f64]) -> Vec<f64> {
        assert_eq!(u.len(), 2, "turbojet takes [wf, a8]");
        let p = self.params;
        let wf = u[0].clamp(0.0, 1.0);
        let a8 = u[1].clamp(0.0, 1.0);
        // Sub-step for numerical robustness.
        let steps = 4;
        let dt = p.dt / steps as f64;
        for _ in 0..steps {
            let g1 = p.b1[0] * wf + p.b1[1] * a8;
            let g2 = p.b2[0] * wf + p.b2[1] * a8;
            let dn1 = (g1 - self.n1 + p.coupling * (self.n2 - self.n1)) / p.tau1;
            let dn2 = (g2 - self.n2 + p.coupling * (self.n1 - self.n2)) / p.tau2;
            self.n1 = (self.n1 + dn1 * dt).max(0.0);
            self.n2 = (self.n2 + dn2 * dt).max(0.0);
        }
        self.measure()
    }

    fn measure(&self) -> Vec<f64> {
        vec![self.n1, self.n2]
    }

    fn reset(&mut self) {
        self.n1 = self.initial.0;
        self.n2 = self.initial.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settles_to_equilibrium() {
        let mut j = Turbojet::demo();
        let u = [0.6, 0.4];
        for _ in 0..2000 {
            j.step(&u);
        }
        let eq = j.equilibrium(&u);
        let y = j.measure();
        assert!((y[0] - eq[0]).abs() < 1e-3, "n1 {} vs {}", y[0], eq[0]);
        assert!((y[1] - eq[1]).abs() < 1e-3, "n2 {} vs {}", y[1], eq[1]);
    }

    #[test]
    fn fuel_flow_drives_both_spools() {
        let mut j = Turbojet::demo();
        let before = j.measure();
        for _ in 0..500 {
            j.step(&[1.0, 0.0]);
        }
        let after = j.measure();
        assert!(after[0] > before[0] && after[1] > before[1]);
    }

    #[test]
    fn coupling_transfers_energy_between_spools() {
        let mut coupled = Turbojet::demo();
        let mut uncoupled = Turbojet::new(
            TurbojetParams {
                coupling: 0.0,
                ..TurbojetParams::demo()
            },
            0.2,
            0.2,
        );
        // Drive only the nozzle: n2 rises more than n1; coupling pulls n1 up.
        for _ in 0..500 {
            coupled.step(&[0.0, 1.0]);
            uncoupled.step(&[0.0, 1.0]);
        }
        assert!(coupled.measure()[0] > uncoupled.measure()[0]);
    }

    #[test]
    fn actuators_are_clamped() {
        let mut j = Turbojet::demo();
        for _ in 0..500 {
            j.step(&[9.0, -5.0]); // treated as [1, 0]
        }
        let eq = j.equilibrium(&[1.0, 0.0]);
        assert!((j.measure()[0] - eq[0]).abs() < 1e-2);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut j = Turbojet::demo();
        j.step(&[1.0, 1.0]);
        j.reset();
        assert_eq!(j.measure(), vec![0.2, 0.2]);
    }

    #[test]
    fn speeds_never_negative() {
        let mut j = Turbojet::new(TurbojetParams::demo(), 0.01, 0.01);
        for _ in 0..1000 {
            j.step(&[0.0, 0.0]);
        }
        assert!(j.measure().iter().all(|&n| n >= 0.0));
    }
}
