//! Trajectory analysis: the step-response and disturbance metrics used to
//! tune the closed loop against the shape of the paper's Figure 3.

use crate::trace::Trace;

/// Metrics of a closed-loop response to a reference step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMetrics {
    /// Time (s) from the step until the speed stays within `band` of the
    /// new reference; `None` if it never settles inside the trace.
    pub settling_time: Option<f64>,
    /// Peak overshoot beyond the new reference, in the reference's units.
    pub overshoot: f64,
    /// Time (s) from the step until the speed first crosses 90 % of the
    /// step amplitude; `None` if it never does.
    pub rise_time: Option<f64>,
}

/// Computes step metrics for the reference change at `step_time`.
///
/// # Panics
///
/// Panics if the trace is empty or contains no samples after `step_time`.
#[must_use]
pub fn step_response(trace: &Trace, step_time: f64, band: f64) -> StepMetrics {
    let samples = trace.samples();
    assert!(!samples.is_empty(), "empty trace");
    let after: Vec<_> = samples.iter().filter(|s| s.t >= step_time).collect();
    assert!(!after.is_empty(), "no samples after the step");
    let r_new = after.last().unwrap().r;
    let r_old = samples
        .iter()
        .rfind(|s| s.t < step_time)
        .map_or(after[0].y, |s| s.r);
    let amplitude = r_new - r_old;

    let mut settling_time = None;
    for (i, s) in after.iter().enumerate() {
        if (s.y - r_new).abs() <= band && after[i..].iter().all(|x| (x.y - r_new).abs() <= band) {
            settling_time = Some(s.t - step_time);
            break;
        }
    }

    let overshoot = after
        .iter()
        .map(|s| {
            if amplitude >= 0.0 {
                s.y - r_new
            } else {
                r_new - s.y
            }
        })
        .fold(0.0, f64::max);

    let rise_time = after
        .iter()
        .find(|s| {
            if amplitude >= 0.0 {
                s.y >= r_old + 0.9 * amplitude
            } else {
                s.y <= r_old + 0.9 * amplitude
            }
        })
        .map(|s| s.t - step_time);

    StepMetrics {
        settling_time,
        overshoot,
        rise_time,
    }
}

/// Largest reference-tracking error (rpm) within a time window —
/// the depth of the load-disturbance dips of Figure 3.
#[must_use]
pub fn max_tracking_error(trace: &Trace, t_from: f64, t_to: f64) -> f64 {
    trace
        .samples()
        .iter()
        .filter(|s| s.t >= t_from && s.t <= t_to)
        .map(|s| (s.r - s.y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_loop::ClosedLoop;
    use crate::engine::Engine;
    use crate::profiles::Profiles;
    use bera_core::PiController;

    fn paper_trace() -> Trace {
        let mut cl = ClosedLoop::new(Engine::paper(), PiController::paper());
        cl.run(&Profiles::paper(), 650)
    }

    #[test]
    fn step_to_3000_settles_within_the_window() {
        // Use a hill-free profile: the paper's second load hill (7–8 s)
        // would otherwise push the speed out of the settling band again.
        use crate::profiles::Piecewise;
        let profiles = Profiles::new(
            Piecewise::new(vec![(0.0, 2000.0), (4.999, 2000.0), (5.0, 3000.0)]),
            Piecewise::new(vec![(0.0, 5.0)]),
        );
        let mut cl = ClosedLoop::new(Engine::paper(), PiController::paper());
        let tr = cl.run(&profiles, 650);
        let m = step_response(&tr, 5.0, 60.0);
        let settle = m.settling_time.expect("must settle");
        assert!(settle < 4.0, "settling time {settle}");
        assert!(m.rise_time.unwrap() < 2.0);
    }

    #[test]
    fn overshoot_is_bounded() {
        let m = step_response(&paper_trace(), 5.0, 60.0);
        assert!(
            m.overshoot < 250.0,
            "overshoot {} rpm is excessive",
            m.overshoot
        );
    }

    #[test]
    fn load_hills_produce_visible_dips() {
        let tr = paper_trace();
        let dip1 = max_tracking_error(&tr, 3.0, 4.5);
        let dip2 = max_tracking_error(&tr, 7.0, 8.5);
        let flat = max_tracking_error(&tr, 2.0, 3.0);
        assert!(dip1 > flat, "first hill visible: {dip1} vs {flat}");
        assert!(dip2 > flat, "second hill visible");
    }

    #[test]
    fn synthetic_first_order_response() {
        // A synthetic exponential approach to the reference.
        use crate::trace::Sample;
        let mut tr = Trace::new();
        for k in 0..400 {
            let t = k as f64 * 0.0154;
            let (r, y) = if t < 1.0 {
                (2000.0, 2000.0)
            } else {
                (3000.0, 3000.0 - 1000.0 * (-(t - 1.0) / 0.3).exp())
            };
            tr.push(Sample {
                t,
                r,
                y,
                u: 20.0,
                load: 0.0,
            });
        }
        let m = step_response(&tr, 1.0, 50.0);
        // 90 % rise of a 0.3 s first-order lag ≈ 0.69 s.
        let rise = m.rise_time.unwrap();
        assert!((rise - 0.69).abs() < 0.05, "rise {rise}");
        assert!(m.overshoot < 1.0);
        // Settling within 50 rpm: 3 time constants ≈ 0.9 s.
        let settle = m.settling_time.unwrap();
        assert!((settle - 0.9).abs() < 0.1, "settle {settle}");
    }

    #[test]
    #[should_panic(expected = "no samples after")]
    fn step_after_trace_end_panics() {
        let _ = step_response(&paper_trace(), 100.0, 10.0);
    }
}
