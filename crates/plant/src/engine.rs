//! The engine model — the controlled object of Figure 1.
//!
//! The model captures the three phenomena that matter for the paper's
//! failure classification:
//!
//! 1. the engine responds to the throttle angle with a lag (so one-iteration
//!    output glitches are naturally absorbed — the inherent robustness the
//!    paper observes);
//! 2. speed-dependent losses give a well-defined equilibrium throttle for
//!    each speed (so a locked throttle drives the speed far from the
//!    reference — the severe failures);
//! 3. an external load torque disturbs the loop (Figure 4), producing the
//!    speed dips of Figure 3.
//!
//! Torque production is `k_t · θ · (1 − ω/ω_max)` filtered through a
//! first-order intake lag; rotation obeys `J·dω/dt = T_engine − T_load − b·ω`.

use serde::{Deserialize, Serialize};

/// Conversion factor: rad/s → rpm.
pub const RADS_TO_RPM: f64 = 60.0 / (2.0 * std::f64::consts::PI);

/// Physical parameters of the engine model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineParams {
    /// Torque gain: N·m of low-speed torque per degree of throttle.
    pub torque_per_degree: f64,
    /// Speed at which torque production collapses to zero (rad/s).
    pub omega_max: f64,
    /// Intake/combustion lag time constant (s).
    pub intake_tau: f64,
    /// Crankshaft + driveline inertia (kg·m²).
    pub inertia: f64,
    /// Viscous friction coefficient (N·m per rad/s).
    pub friction: f64,
    /// Integration sub-step used inside one controller sample (s).
    pub dt: f64,
}

impl EngineParams {
    /// Parameters tuned to give the paper's operating range: ~10–30° of
    /// throttle holds 2000–3000 rpm, full throttle reaches > 4000 rpm.
    #[must_use]
    pub fn paper() -> Self {
        EngineParams {
            torque_per_degree: 1.7,
            omega_max: 600.0,
            intake_tau: 0.05,
            inertia: 0.2,
            friction: 0.05,
            dt: 0.00154, // 10 sub-steps per 15.4 ms control interval
        }
    }
}

/// The engine: consumes a throttle angle each control interval, produces a
/// measured speed in rpm.
///
/// # Example
///
/// ```
/// use bera_plant::Engine;
/// let mut e = Engine::paper();
/// // Full throttle, no external load, from 2000 rpm: the engine speeds up.
/// let before = e.speed_rpm();
/// e.advance(70.0, 0.0, 0.0154);
/// assert!(e.speed_rpm() > before);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Engine {
    params: EngineParams,
    /// Angular speed (rad/s).
    omega: f64,
    /// Delivered engine torque after the intake lag (N·m).
    torque: f64,
}

impl Engine {
    /// Creates an engine at rest (`start_rpm = 0`) with the given parameters.
    #[must_use]
    pub fn new(params: EngineParams, start_rpm: f64) -> Self {
        let omega = start_rpm / RADS_TO_RPM;
        // Start the torque state at the value that holds this speed with no
        // external load, so the trajectory has no artificial kick at t = 0.
        let torque = params.friction * omega;
        Engine {
            params,
            omega,
            torque,
        }
    }

    /// The paper's engine: tuned parameters, idling at 2000 rpm when the
    /// observed interval starts (Figure 3 begins on the reference).
    #[must_use]
    pub fn paper() -> Self {
        Engine::new(EngineParams::paper(), 2000.0)
    }

    /// Current engine speed in rpm — the measurement `y` fed back to the
    /// controller.
    #[must_use]
    pub fn speed_rpm(&self) -> f64 {
        self.omega * RADS_TO_RPM
    }

    /// Current angular speed in rad/s.
    #[must_use]
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Currently delivered engine torque (N·m).
    #[must_use]
    pub fn torque(&self) -> f64 {
        self.torque
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> EngineParams {
        self.params
    }

    /// FNV-1a 64 digest of the dynamic state (`omega`, `torque`) by exact
    /// bit pattern. The parameters are deliberately excluded: campaign
    /// checkpointing only ever compares engines built from the same
    /// configuration, and exact `PartialEq` (which does include them)
    /// confirms any digest match.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut state = FNV_OFFSET;
        for word in [self.omega.to_bits(), self.torque.to_bits()] {
            for b in word.to_le_bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(FNV_PRIME);
            }
        }
        state
    }

    /// Steady-state torque command for throttle `theta_deg` at speed
    /// `omega` — the engine's static torque map.
    #[must_use]
    pub fn torque_command(&self, theta_deg: f64, omega: f64) -> f64 {
        let theta = theta_deg.clamp(0.0, 70.0);
        let derate = (1.0 - omega / self.params.omega_max).max(0.0);
        self.params.torque_per_degree * theta * derate
    }

    /// Advances the engine by one control interval of length `interval`
    /// seconds, holding the throttle at `theta_deg` degrees against an
    /// external load torque `load` (N·m). Uses forward-Euler sub-steps of
    /// `params.dt`.
    pub fn advance(&mut self, theta_deg: f64, load: f64, interval: f64) {
        let p = self.params;
        let steps = (interval / p.dt).round().max(1.0) as usize;
        let dt = interval / steps as f64;
        for _ in 0..steps {
            let t_cmd = self.torque_command(theta_deg, self.omega);
            self.torque += (t_cmd - self.torque) / p.intake_tau * dt;
            let net = self.torque - load - p.friction * self.omega;
            self.omega += net / p.inertia * dt;
            if self.omega < 0.0 {
                self.omega = 0.0; // the engine cannot spin backwards
            }
        }
    }

    /// The throttle angle that holds speed `rpm` in steady state against
    /// `load` (N·m); useful for tests and for pre-warming controllers.
    #[must_use]
    pub fn equilibrium_throttle(&self, rpm: f64, load: f64) -> f64 {
        let omega = rpm / RADS_TO_RPM;
        let needed = self.params.friction * omega + load;
        let derate = (1.0 - omega / self.params.omega_max).max(1e-9);
        (needed / (self.params.torque_per_degree * derate)).clamp(0.0, 70.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_requested_speed() {
        let e = Engine::paper();
        assert!((e.speed_rpm() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn accelerates_under_full_throttle() {
        let mut e = Engine::paper();
        for _ in 0..650 {
            e.advance(70.0, 0.0, 0.0154);
        }
        assert!(
            e.speed_rpm() > 4000.0,
            "full throttle must exceed 4000 rpm, got {}",
            e.speed_rpm()
        );
    }

    #[test]
    fn decelerates_with_closed_throttle() {
        let mut e = Engine::paper();
        for _ in 0..650 {
            e.advance(0.0, 0.0, 0.0154);
        }
        assert!(
            e.speed_rpm() < 500.0,
            "closed throttle must coast down, got {}",
            e.speed_rpm()
        );
    }

    #[test]
    fn speed_never_negative() {
        let mut e = Engine::new(EngineParams::paper(), 100.0);
        for _ in 0..2000 {
            e.advance(0.0, 50.0, 0.0154); // heavy load, no throttle
        }
        assert!(e.speed_rpm() >= 0.0);
    }

    #[test]
    fn equilibrium_throttle_holds_speed() {
        let mut e = Engine::paper();
        let theta = e.equilibrium_throttle(2000.0, 0.0);
        assert!(theta > 5.0 && theta < 25.0, "plausible angle: {theta}");
        for _ in 0..2000 {
            e.advance(theta, 0.0, 0.0154);
        }
        assert!(
            (e.speed_rpm() - 2000.0).abs() < 30.0,
            "speed held near 2000: {}",
            e.speed_rpm()
        );
    }

    #[test]
    fn load_slows_the_engine_at_fixed_throttle() {
        let mut a = Engine::paper();
        let mut b = Engine::paper();
        let theta = a.equilibrium_throttle(2000.0, 0.0);
        for _ in 0..650 {
            a.advance(theta, 0.0, 0.0154);
            b.advance(theta, 15.0, 0.0154);
        }
        assert!(b.speed_rpm() < a.speed_rpm() - 100.0);
    }

    #[test]
    fn torque_derates_with_speed() {
        let e = Engine::paper();
        let low = e.torque_command(40.0, 100.0);
        let high = e.torque_command(40.0, 500.0);
        assert!(low > high);
        assert_eq!(e.torque_command(40.0, 700.0), 0.0, "beyond omega_max");
    }

    #[test]
    fn throttle_is_clamped_by_model() {
        let e = Engine::paper();
        assert_eq!(
            e.torque_command(1000.0, 0.0),
            e.torque_command(70.0, 0.0),
            "model saturates unphysical commands"
        );
        assert_eq!(e.torque_command(-5.0, 0.0), 0.0);
    }

    #[test]
    fn advance_is_deterministic() {
        let mut a = Engine::paper();
        let mut b = Engine::paper();
        for k in 0..100 {
            let th = 10.0 + (k % 7) as f64;
            a.advance(th, 3.0, 0.0154);
            b.advance(th, 3.0, 0.0154);
        }
        assert_eq!(a, b);
    }
}
