//! Binomial proportion estimates and confidence intervals.
//!
//! The paper's tables report `p ± z·sqrt(p(1-p)/n)` with `z = 1.96`
//! (the 95 % normal approximation). [`Proportion::wilson_ci`] is provided as
//! a cross-check that behaves better for the very small counts that appear in
//! the severe-failure rows.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Confidence level for an interval, expressed through its two-sided normal
/// quantile `z`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Confidence {
    /// The two-sided standard-normal quantile (e.g. 1.96 for 95 %).
    pub z: f64,
}

impl Confidence {
    /// The 95 % confidence level used throughout the paper (z = 1.96).
    pub const P95: Confidence = Confidence { z: 1.96 };
    /// The 99 % confidence level (z = 2.576).
    pub const P99: Confidence = Confidence { z: 2.576 };
}

impl Default for Confidence {
    fn default() -> Self {
        Confidence::P95
    }
}

/// A symmetric or asymmetric confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Point estimate of the proportion (in `[0, 1]`).
    pub estimate: f64,
    /// Lower bound, clamped to `[0, 1]`.
    pub lo: f64,
    /// Upper bound, clamped to `[0, 1]`.
    pub hi: f64,
    /// Half the width of the interval (`(hi - lo) / 2`).
    pub half_width: f64,
}

impl Interval {
    fn from_bounds(estimate: f64, lo: f64, hi: f64) -> Self {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        Interval {
            estimate,
            lo,
            hi,
            half_width: (hi - lo) / 2.0,
        }
    }

    /// Returns `true` if `other`'s estimate falls outside this interval —
    /// the informal significance argument used in Section 4.5 of the paper.
    #[must_use]
    pub fn excludes(&self, other: f64) -> bool {
        other < self.lo || other > self.hi
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}% (± {:.2}%)",
            self.estimate * 100.0,
            self.half_width * 100.0
        )
    }
}

/// A binomial proportion: `successes` observed out of `trials`.
///
/// # Example
///
/// ```
/// use bera_stats::proportion::Proportion;
/// let p = Proportion::new(466, 9290); // undetected wrong results, Table 2
/// assert!((p.estimate() - 0.0502).abs() < 5e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// Creates a proportion of `successes` out of `trials`.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    #[must_use]
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(
            successes <= trials,
            "successes ({successes}) must not exceed trials ({trials})"
        );
        Proportion { successes, trials }
    }

    /// Number of observed successes.
    #[must_use]
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate `successes / trials` (0 when there are no trials).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Normal-approximation (Wald) confidence interval, the method used by
    /// the paper's tables.
    #[must_use]
    pub fn normal_ci(&self, conf: Confidence) -> Interval {
        let p = self.estimate();
        if self.trials == 0 {
            return Interval::from_bounds(0.0, 0.0, 0.0);
        }
        let n = self.trials as f64;
        let hw = conf.z * (p * (1.0 - p) / n).sqrt();
        Interval::from_bounds(p, p - hw, p + hw)
    }

    /// The 95 % normal-approximation interval (`z = 1.96`).
    #[must_use]
    pub fn normal_ci95(&self) -> Interval {
        self.normal_ci(Confidence::P95)
    }

    /// Wilson score interval; well-behaved for small counts and never
    /// producing bounds outside `[0, 1]`.
    #[must_use]
    pub fn wilson_ci(&self, conf: Confidence) -> Interval {
        if self.trials == 0 {
            return Interval::from_bounds(0.0, 0.0, 0.0);
        }
        let n = self.trials as f64;
        let p = self.estimate();
        let z = conf.z;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let spread = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
        Interval::from_bounds(p, center - spread, center + spread)
    }

    /// Combines two disjoint categories observed over the same trials.
    ///
    /// # Panics
    ///
    /// Panics if the trial counts differ or the combined successes would
    /// exceed the trials.
    #[must_use]
    pub fn union(&self, other: &Proportion) -> Proportion {
        assert_eq!(
            self.trials, other.trials,
            "union requires identical trial counts"
        );
        Proportion::new(self.successes + other.successes, self.trials)
    }
}

impl fmt::Display for Proportion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.successes, self.trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_matches_table2_totals() {
        // Table 2, total column: 466 undetected wrong results of 9290.
        let p = Proportion::new(466, 9290);
        assert!((p.estimate() - 0.050_16).abs() < 1e-4);
        let ci = p.normal_ci95();
        // Paper reports ± 0.44 %.
        assert!((ci.half_width - 0.0044).abs() < 2e-4);
    }

    #[test]
    fn zero_trials_is_safe() {
        let p = Proportion::new(0, 0);
        assert_eq!(p.estimate(), 0.0);
        assert_eq!(p.normal_ci95().half_width, 0.0);
        assert_eq!(p.wilson_ci(Confidence::P95).half_width, 0.0);
    }

    #[test]
    fn zero_successes_normal_ci_is_degenerate_but_wilson_is_not() {
        let p = Proportion::new(0, 2372); // permanent failures, Table 3
        assert_eq!(p.normal_ci95().half_width, 0.0);
        let w = p.wilson_ci(Confidence::P95);
        assert!(w.hi > 0.0, "wilson upper bound must be positive");
    }

    #[test]
    fn wilson_stays_in_unit_interval() {
        let p = Proportion::new(1, 3);
        let w = p.wilson_ci(Confidence::P99);
        assert!(w.lo >= 0.0 && w.hi <= 1.0);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn more_successes_than_trials_panics() {
        let _ = Proportion::new(3, 2);
    }

    #[test]
    fn union_adds_disjoint_categories() {
        let severe = Proportion::new(50, 9290);
        let minor = Proportion::new(416, 9290);
        let total = severe.union(&minor);
        assert_eq!(total.successes(), 466);
    }

    #[test]
    fn interval_excludes() {
        let a = Proportion::new(50, 9290).normal_ci95(); // 0.54 % ± 0.15 %
                                                         // Algorithm II severe rate 0.17 % lies outside Algorithm I's interval.
        assert!(a.excludes(0.0017));
        assert!(!a.excludes(0.0054));
    }

    #[test]
    fn display_formats_percentages() {
        let s = Proportion::new(50, 9290).normal_ci95().to_string();
        assert!(s.contains('%'), "got {s}");
    }
}
