//! Smoothed rate estimation for live campaign telemetry.
//!
//! Campaign experiments complete at wildly varying speeds (a detected
//! fault traps within microseconds, a hang burns the full instruction
//! cap), so a raw completions-per-second ratio whipsaws. [`Ewma`] keeps an
//! exponentially weighted moving average of instantaneous samples, giving
//! throughput and ETA displays that settle quickly without going stale.

/// An exponentially weighted moving average.
///
/// With smoothing factor `alpha`, each update moves the estimate a
/// fraction `alpha` of the way towards the new sample; the effective
/// memory is roughly the last `1/alpha` samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an empty average with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must lie in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Folds one sample in and returns the updated estimate. The first
    /// sample seeds the average directly.
    pub fn update(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            Some(v) => v + self.alpha * (sample - v),
            None => sample,
        };
        self.value = Some(next);
        next
    }

    /// The current estimate (`None` until the first sample).
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The smoothing factor.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_the_average() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(42.0), 42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    fn converges_to_a_constant_signal() {
        let mut e = Ewma::new(0.2);
        e.update(0.0);
        for _ in 0..200 {
            e.update(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_the_last_sample() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        e.update(7.0);
        assert_eq!(e.value(), Some(7.0));
    }

    #[test]
    fn smooths_between_old_and_new() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        assert_eq!(e.update(8.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn rejects_alpha_above_one() {
        let _ = Ewma::new(1.5);
    }
}
