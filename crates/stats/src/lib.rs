//! Statistical utilities for fault-injection campaigns.
//!
//! The DSN 2001 paper reports every outcome category as a percentage of the
//! injected faults together with a 95 % confidence interval computed with the
//! normal approximation to the binomial distribution. This crate provides:
//!
//! * [`proportion`] — binomial proportion estimates with normal-approximation
//!   and Wilson score confidence intervals;
//! * [`sampling`] — seeded uniform samplers used to draw fault locations and
//!   injection times exactly the way GOOFI's set-up phase does;
//! * [`summary`] — running univariate summaries (mean / variance / extrema)
//!   used by the benchmark harness;
//! * [`rate`] — exponentially weighted moving averages used by the live
//!   campaign telemetry for throughput and ETA estimation.
//!
//! # Example
//!
//! ```
//! use bera_stats::proportion::Proportion;
//!
//! // 50 severe failures out of 9290 injected faults (Table 2 of the paper).
//! let p = Proportion::new(50, 9290);
//! let ci = p.normal_ci95();
//! assert!((p.estimate() - 0.00538).abs() < 1e-4);
//! assert!(ci.half_width > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proportion;
pub mod rate;
pub mod sampling;
pub mod summary;

pub use proportion::{Confidence, Interval, Proportion};
pub use rate::Ewma;
pub use sampling::UniformSampler;
pub use summary::Summary;
