//! Seeded uniform samplers for fault lists.
//!
//! GOOFI's set-up phase draws the fault list before the campaign starts:
//! each experiment gets a *fault location* (a state-element bit) and a
//! *point in time* (a dynamic instruction boundary), both sampled uniformly.
//! [`UniformSampler`] reproduces that procedure deterministically from a seed
//! so campaigns are repeatable.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic uniform sampler over `(location, time)` pairs.
///
/// # Example
///
/// ```
/// use bera_stats::sampling::UniformSampler;
/// let mut s = UniformSampler::with_seed(42);
/// let (loc, t) = s.draw_pair(2250, 20_000);
/// assert!(loc < 2250 && t < 20_000);
/// ```
#[derive(Debug)]
pub struct UniformSampler {
    rng: StdRng,
}

impl UniformSampler {
    /// Creates a sampler seeded with `seed`; identical seeds yield identical
    /// fault lists.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        UniformSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a uniform index in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn draw_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample from an empty range");
        self.rng.random_range(0..bound)
    }

    /// Draws a `(location, time)` pair uniformly and independently.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero.
    pub fn draw_pair(&mut self, locations: usize, times: u64) -> (usize, u64) {
        assert!(times > 0, "cannot sample from an empty time range");
        let loc = self.draw_index(locations);
        let t = self.rng.random_range(0..times);
        (loc, t)
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn draw_unit(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Draws `n` pairs, the bulk operation used when building a fault list.
    pub fn draw_fault_list(&mut self, n: usize, locations: usize, times: u64) -> Vec<(usize, u64)> {
        (0..n).map(|_| self.draw_pair(locations, times)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_list() {
        let a = UniformSampler::with_seed(7).draw_fault_list(100, 2250, 20_000);
        let b = UniformSampler::with_seed(7).draw_fault_list(100, 2250, 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = UniformSampler::with_seed(1).draw_fault_list(50, 2250, 20_000);
        let b = UniformSampler::with_seed(2).draw_fault_list(50, 2250, 20_000);
        assert_ne!(a, b);
    }

    #[test]
    fn bounds_respected() {
        let mut s = UniformSampler::with_seed(3);
        for _ in 0..10_000 {
            let (loc, t) = s.draw_pair(13, 97);
            assert!(loc < 13);
            assert!(t < 97);
        }
    }

    #[test]
    fn coverage_of_small_domain() {
        // Every location of a small domain should be hit eventually.
        let mut s = UniformSampler::with_seed(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[s.draw_index(8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_bound_panics() {
        UniformSampler::with_seed(0).draw_index(0);
    }

    #[test]
    fn unit_draws_in_range() {
        let mut s = UniformSampler::with_seed(5);
        for _ in 0..1000 {
            let u = s.draw_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
