//! Running univariate summaries (Welford's algorithm).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Accumulates count, mean, variance and extrema of a stream of samples
/// without storing them.
///
/// # Example
///
/// ```
/// use bera_stats::summary::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel campaign shards).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Summary = xs.iter().copied().collect();
        let mut a: Summary = xs[..37].iter().copied().collect();
        let b: Summary = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extrema_tracked() {
        let s: Summary = [-3.0, 7.5, 0.0].into_iter().collect();
        assert_eq!(s.min(), Some(-3.0));
        assert_eq!(s.max(), Some(7.5));
    }
}
