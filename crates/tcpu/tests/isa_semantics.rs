//! Instruction-semantics matrix: every arithmetic/logic instruction checked
//! against the equivalent Rust computation on a grid of operand values,
//! through assembled programs (so the encoder, assembler, decoder and
//! executor are all on the path).

use bera_tcpu::asm::assemble;
use bera_tcpu::machine::{Machine, RunExit};

/// Runs `op rd, ra, rb` with the given raw register values and returns the
/// result word (or None if the machine trapped).
fn run_binop(mnemonic: &str, a: u32, b: u32) -> Option<u32> {
    let src = format!(
        ".text\nstart:\n li r1, {a:#x}\n li r2, {b:#x}\n {mnemonic} r3, r1, r2\n out r3, 2\n yield\nloop:\n jmp loop\n"
    );
    let program = assemble(&src).expect("program assembles");
    let mut m = Machine::new();
    m.load_program(&program);
    match m.run(100) {
        RunExit::Yield => Some(m.port_out(2)),
        RunExit::Trap(_) => None,
        RunExit::Budget => panic!("did not terminate"),
    }
}

const INT_SAMPLES: [i32; 7] = [0, 1, -1, 12345, -54321, i32::MAX, i32::MIN];

#[test]
fn integer_add_sub_mul_match_checked_semantics() {
    for &a in &INT_SAMPLES {
        for &b in &INT_SAMPLES {
            for (mn, f) in [
                ("add", i32::checked_add as fn(i32, i32) -> Option<i32>),
                ("sub", i32::checked_sub),
                ("mul", i32::checked_mul),
            ] {
                let got = run_binop(mn, a as u32, b as u32);
                let expected = f(a, b).map(|v| v as u32);
                assert_eq!(got, expected, "{mn} {a} {b}");
            }
        }
    }
}

#[test]
fn integer_div_matches_checked_semantics() {
    for &a in &INT_SAMPLES {
        for &b in &INT_SAMPLES {
            let got = run_binop("div", a as u32, b as u32);
            let expected = if b == 0 {
                None
            } else {
                a.checked_div(b).map(|v| v as u32)
            };
            assert_eq!(got, expected, "div {a} {b}");
        }
    }
}

#[test]
fn logic_ops_match() {
    let samples = [0u32, 1, 0xFFFF_FFFF, 0xA5A5_5A5A, 0x8000_0000];
    for &a in &samples {
        for &b in &samples {
            assert_eq!(run_binop("and", a, b), Some(a & b));
            assert_eq!(run_binop("or", a, b), Some(a | b));
            assert_eq!(run_binop("xor", a, b), Some(a ^ b));
        }
    }
}

#[test]
fn shifts_mask_the_count() {
    for &a in &[1u32, 0x8000_0000, 0xDEAD_BEEF] {
        for &n in &[0u32, 1, 31, 32, 63, 100] {
            assert_eq!(run_binop("shl", a, n), Some(a.wrapping_shl(n & 31)));
            assert_eq!(run_binop("shr", a, n), Some(a.wrapping_shr(n & 31)));
        }
    }
}

const FLOAT_SAMPLES: [f32; 8] = [0.0, -0.0, 1.0, -1.0, 0.0154, 70.0, 2000.0, 1.0e30];

#[test]
fn float_ops_match_ieee_when_no_trap() {
    for &a in &FLOAT_SAMPLES {
        for &b in &FLOAT_SAMPLES {
            for (mn, f) in [
                ("fadd", (|x, y| x + y) as fn(f32, f32) -> f32),
                ("fsub", |x, y| x - y),
                ("fmul", |x, y| x * y),
                ("fdiv", |x, y| x / y),
            ] {
                let expected = f(a, b);
                let got = run_binop(mn, a.to_bits(), b.to_bits());
                let trap_expected = (mn == "fdiv" && b == 0.0)
                    || expected.is_infinite()
                    || expected.is_nan()
                    || (expected != 0.0 && expected.is_subnormal());
                if trap_expected {
                    assert_eq!(got, None, "{mn} {a} {b} must trap");
                } else {
                    assert_eq!(got, Some(expected.to_bits()), "{mn} {a} {b}");
                }
            }
        }
    }
}

#[test]
fn fcmp_flags_drive_all_branches() {
    // For each ordered pair relation, check every branch condition.
    let cases = [(1.0f32, 2.0f32), (2.0, 1.0), (1.5, 1.5)];
    for (a, b) in cases {
        for (branch, taken) in [
            ("beq", a == b),
            ("bne", a != b),
            ("blt", a < b),
            ("bge", a >= b),
            ("bgt", a > b),
            ("ble", a <= b),
        ] {
            let src = format!(
                ".text\nstart:\n li r1, {:#x}\n li r2, {:#x}\n fcmp r1, r2\n {branch} yes\n li r3, 0\n jmp done\nyes:\n li r3, 1\ndone:\n out r3, 2\n yield\nloop:\n jmp loop\n",
                a.to_bits(),
                b.to_bits()
            );
            let program = assemble(&src).unwrap();
            let mut m = Machine::new();
            m.load_program(&program);
            assert_eq!(m.run(100), RunExit::Yield);
            assert_eq!(m.port_out(2) == 1, taken, "{branch} with {a} vs {b}");
        }
    }
}

#[test]
fn mov_itof_ftoi_roundtrips() {
    for &v in &[0i32, 1, -1, 1234567, -7654321] {
        let src = format!(
            ".text\nstart:\n li r1, {:#x}\n itof r2, r1\n ftoi r3, r2\n out r3, 2\n yield\nloop:\n jmp loop\n",
            v as u32
        );
        let program = assemble(&src).unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        assert_eq!(m.run(100), RunExit::Yield);
        // f32 has 24 bits of precision; these samples fit exactly or round.
        assert_eq!(m.port_out(2) as i32, (v as f32) as i32, "roundtrip {v}");
    }
}
