//! Property test: the data cache must be transparent. A program performing
//! any sequence of word stores and loads through the cache must observe
//! exactly the values a flat memory model would produce — across hits,
//! misses, evictions and write-backs.

use bera_tcpu::asm::assemble;
use bera_tcpu::machine::{Machine, RunExit};
use proptest::prelude::*;
use std::collections::HashMap;

/// Addresses spanning 3 tags per cache index so the generated traffic
/// exercises evictions heavily (the cache has 8 lines of 16 bytes; these
/// offsets cover 3 × 128-byte ways).
fn address_pool() -> Vec<u32> {
    let mut v = Vec::new();
    for way in 0..3u32 {
        for word in 0..32u32 {
            v.push(0x0001_0000 + way * 0x80 + word * 4);
        }
    }
    v
}

#[derive(Debug, Clone)]
enum Op {
    Store { addr: u32, value: u32 },
    Load { addr: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let pool = address_pool();
    let len = pool.len();
    prop_oneof![
        (0..len, any::<u32>()).prop_map(move |(i, value)| Op::Store {
            addr: address_pool()[i],
            value
        }),
        (0..len).prop_map(move |i| Op::Load {
            addr: address_pool()[i]
        }),
    ]
}

/// Compiles the op sequence into a program that executes each op and
/// reports every load result through the output port, yielding after each.
fn compile(ops: &[Op]) -> String {
    let mut src = String::from(".text\nstart:\n");
    for op in ops {
        match op {
            Op::Store { addr, value } => {
                src.push_str(&format!(
                    "    li r1, {addr:#x}\n    li r2, {value:#x}\n    st r2, [r1+0]\n"
                ));
            }
            Op::Load { addr } => {
                src.push_str(&format!(
                    "    li r1, {addr:#x}\n    ld r3, [r1+0]\n    out r3, 2\n    yield\n"
                ));
            }
        }
    }
    src.push_str("end:\n    yield\nforever:\n    jmp forever\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_is_transparent(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let program = assemble(&compile(&ops)).expect("generated program assembles");
        let mut m = Machine::new();
        m.load_program(&program);

        let mut model: HashMap<u32, u32> = HashMap::new();
        for op in &ops {
            match op {
                Op::Store { addr, value } => {
                    model.insert(*addr, *value);
                }
                Op::Load { addr } => {
                    match m.run(1_000_000) {
                        RunExit::Yield => {}
                        other => prop_assert!(false, "machine failed: {other:?}"),
                    }
                    let expected = model.get(addr).copied().unwrap_or(0);
                    prop_assert_eq!(
                        m.port_out(2),
                        expected,
                        "load {:#x} observed {:#x}, model says {:#x}",
                        addr,
                        m.port_out(2),
                        expected
                    );
                }
            }
        }
        // Final yield: ensure the program completes without traps.
        prop_assert_eq!(m.run(1_000_000), RunExit::Yield);
    }
}
