//! # bera-tcpu — a Thor-like CPU with scan-chain fault injection access
//!
//! The paper runs its workload on the Saab Ericsson Space **Thor** CPU: a
//! 32-bit processor with a four-stage pipeline, a 128-byte on-chip data
//! cache, an extensive set of hardware error detection mechanisms (EDMs,
//! Table 1 of the paper) and scan chains exposing thousands of internal
//! state elements for fault injection. This crate is a behavioural simulator
//! of such a processor:
//!
//! * [`isa`] — a 32-bit RISC instruction set with integer and IEEE-754
//!   single-precision float operations, I/O ports, and a control-flow
//!   signature instruction;
//! * [`asm`] — a two-pass assembler (labels, data directives, pseudo-ops,
//!   automatic control-flow signature generation);
//! * [`mem`] — the memory map: protected code ROM, EDAC-protected data RAM,
//!   a guarded stack segment, a null page and an external-bus hole;
//! * [`cache`] — the 128-byte direct-mapped write-back data cache whose
//!   unprotected state elements are the source of the paper's severe value
//!   failures;
//! * [`machine`] — the CPU core with its pipeline fetch latch, PSR, signature
//!   register and all Table-1 EDMs;
//! * [`scan`] — the scan chain: a bit-addressable catalog of every state
//!   element, used by SCIFI to flip exactly one bit at an instruction
//!   boundary and to diff machine state against a golden run.
//!
//! # Example
//!
//! ```
//! use bera_tcpu::asm::assemble;
//! use bera_tcpu::machine::{Machine, RunExit};
//!
//! let program = assemble(r#"
//!     .text
//! start:
//!     li   r1, 5
//!     li   r2, 37
//!     add  r3, r1, r2
//!     out  r3, 2
//!     yield
//! halt_loop:
//!     jmp  halt_loop
//! "#).unwrap();
//! let mut m = Machine::new();
//! m.load_program(&program);
//! assert_eq!(m.run(10_000), RunExit::Yield);
//! assert_eq!(m.port_out(2), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod asm;
pub mod batch;
pub mod cache;
pub mod digest;
pub mod edm;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod scan;
pub mod trace;
pub mod vis;

pub use access::{Access, AccessKind, AccessTrace, TraceUnit};
pub use asm::{assemble, AsmError, Program};
pub use batch::{BatchMachine, DeltaUnit, ReplicaFate};
pub use digest::Fnv64;
pub use edm::ErrorMechanism;
pub use machine::{Machine, RunExit};
pub use scan::{BitLocation, CpuPart, ScanSnapshot};
pub use vis::{VisTrace, VisUnit};
