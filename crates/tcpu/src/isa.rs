//! The instruction set architecture: opcodes, instruction encoding and
//! decoding, and a disassembler.
//!
//! Instructions are fixed 32-bit words:
//!
//! ```text
//! R-type:  [31:26 op][25:22 rd][21:18 ra][17:14 rb][13:0  zero]
//! I-type:  [31:26 op][25:22 rd][21:18 ra][17:16 zero][15:0 imm16]
//! J-type:  [31:26 op][25:22 zero]               [21:0  imm22]
//! ```
//!
//! Branch offsets (`imm16`) are signed word offsets relative to the
//! instruction *after* the branch. Jump/call targets (`imm22`) are absolute
//! word addresses (`byte address / 4`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;

/// Conventional stack-pointer register.
pub const REG_SP: u8 = 14;
/// Conventional link register (written by `call`, read by `ret`).
pub const REG_LR: u8 = 15;

/// Operation codes. Values are the 6-bit field in bits 31:26.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)] // variant meanings are given in the table below
pub enum Opcode {
    /// No operation.
    Nop = 0x00,
    /// Stop the processor — privileged.
    Halt = 0x01,
    /// End of one workload iteration: pause and exchange I/O with the host.
    Yield = 0x02,
    /// Control-flow signature check: compare the signature register with
    /// `imm16`, trap on mismatch, reset on match.
    Sig = 0x03,
    /// `rd = imm16 << 16`.
    Lui = 0x04,
    /// `rd = ra | zext(imm16)`.
    Ori = 0x05,
    /// `rd = ra + sext(imm16)` with signed-overflow check.
    Addi = 0x06,
    /// `rd = mem[ra + sext(imm16)]` (32-bit, through the data cache).
    Ld = 0x07,
    /// `mem[ra + sext(imm16)] = rd` (32-bit, through the data cache).
    St = 0x08,
    /// Integer add with signed-overflow check.
    Add = 0x09,
    /// Integer subtract with signed-overflow check.
    Sub = 0x0A,
    /// Integer multiply with signed-overflow check.
    Mul = 0x0B,
    /// Integer divide; traps on divide-by-zero.
    Div = 0x0C,
    /// Bitwise and.
    And = 0x0D,
    /// Bitwise or.
    Or = 0x0E,
    /// Bitwise xor.
    Xor = 0x0F,
    /// Logical shift left by `rb & 31`.
    Shl = 0x10,
    /// Logical shift right by `rb & 31`.
    Shr = 0x11,
    /// IEEE-754 single add (`rd = ra + rb`), with float EDM checks.
    Fadd = 0x12,
    /// IEEE-754 single subtract.
    Fsub = 0x13,
    /// IEEE-754 single multiply.
    Fmul = 0x14,
    /// IEEE-754 single divide; traps on division by ±0.
    Fdiv = 0x15,
    /// Float compare `ra ? rb`: sets the EQ/LT flags; traps on NaN input.
    Fcmp = 0x16,
    /// Signed integer compare `ra ? rb`: sets the EQ/LT flags.
    Cmp = 0x17,
    /// Branch if EQ.
    Beq = 0x18,
    /// Branch if not EQ.
    Bne = 0x19,
    /// Branch if LT.
    Blt = 0x1A,
    /// Branch if not LT.
    Bge = 0x1B,
    /// Branch if neither LT nor EQ.
    Bgt = 0x1C,
    /// Branch if LT or EQ.
    Ble = 0x1D,
    /// Unconditional jump to an absolute word address.
    Jmp = 0x1E,
    /// Call: `r15 = return address`, jump to absolute word address.
    Call = 0x1F,
    /// Return: jump to `r15`.
    Ret = 0x20,
    /// Read input port `imm16` into `rd`.
    In = 0x21,
    /// Write `rd` to output port `imm16`.
    Out = 0x22,
    /// Constraint check: trap unless `ra ≤ rd ≤ rb` (float compare) — the
    /// run-time assertion instruction behind Thor's CONSTRAINT ERROR.
    Chk = 0x23,
    /// Convert signed integer `ra` to float.
    Itof = 0x24,
    /// Convert float `ra` to signed integer (truncating); overflow traps.
    Ftoi = 0x25,
    /// Register move `rd = ra`.
    Mov = 0x26,
    /// Set stack bounds from `ra`/`rb` — privileged.
    Setsb = 0x27,
}

impl Opcode {
    /// Decodes the 6-bit opcode field; `None` for illegal encodings.
    #[must_use]
    pub fn from_bits(bits: u32) -> Option<Opcode> {
        use Opcode::*;
        Some(match bits {
            0x00 => Nop,
            0x01 => Halt,
            0x02 => Yield,
            0x03 => Sig,
            0x04 => Lui,
            0x05 => Ori,
            0x06 => Addi,
            0x07 => Ld,
            0x08 => St,
            0x09 => Add,
            0x0A => Sub,
            0x0B => Mul,
            0x0C => Div,
            0x0D => And,
            0x0E => Or,
            0x0F => Xor,
            0x10 => Shl,
            0x11 => Shr,
            0x12 => Fadd,
            0x13 => Fsub,
            0x14 => Fmul,
            0x15 => Fdiv,
            0x16 => Fcmp,
            0x17 => Cmp,
            0x18 => Beq,
            0x19 => Bne,
            0x1A => Blt,
            0x1B => Bge,
            0x1C => Bgt,
            0x1D => Ble,
            0x1E => Jmp,
            0x1F => Call,
            0x20 => Ret,
            0x21 => In,
            0x22 => Out,
            0x23 => Chk,
            0x24 => Itof,
            0x25 => Ftoi,
            0x26 => Mov,
            0x27 => Setsb,
            _ => return None,
        })
    }

    /// `true` for instructions that may only execute in supervisor mode.
    /// Executing them in user mode raises INSTRUCTION ERROR.
    #[must_use]
    pub fn is_privileged(&self) -> bool {
        matches!(self, Opcode::Halt | Opcode::Setsb)
    }

    /// `true` for conditional branches.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bgt | Opcode::Ble
        )
    }

    /// `true` for instructions the predecoded block engine may execute
    /// back-to-back: they never transfer control, never end an iteration
    /// (`yield`), never consult or reset the signature register (`sig`),
    /// and are legal in user mode. Everything else terminates a
    /// straight-line run and is executed by the scalar step path.
    #[must_use]
    pub fn is_straight_line(&self) -> bool {
        !self.is_branch()
            && !self.is_privileged()
            && !matches!(
                self,
                Opcode::Yield | Opcode::Sig | Opcode::Jmp | Opcode::Call | Opcode::Ret
            )
    }

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        use Opcode::*;
        match self {
            Nop => "nop",
            Halt => "halt",
            Yield => "yield",
            Sig => "sig",
            Lui => "lui",
            Ori => "ori",
            Addi => "addi",
            Ld => "ld",
            St => "st",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fcmp => "fcmp",
            Cmp => "cmp",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bgt => "bgt",
            Ble => "ble",
            Jmp => "jmp",
            Call => "call",
            Ret => "ret",
            In => "in",
            Out => "out",
            Chk => "chk",
            Itof => "itof",
            Ftoi => "ftoi",
            Mov => "mov",
            Setsb => "setsb",
        }
    }
}

/// A decoded instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The operation.
    pub op: Opcode,
    /// Destination register (or source, for `st`/`out`).
    pub rd: u8,
    /// First source register.
    pub ra: u8,
    /// Second source register.
    pub rb: u8,
    /// Sign-extended 16-bit immediate.
    pub imm16: i32,
    /// Zero-extended 16-bit immediate (ports, `lui`, `ori`, `sig`).
    pub uimm16: u32,
    /// 22-bit jump target (word address).
    pub imm22: u32,
}

/// Extracts the opcode field without validating it.
#[must_use]
pub fn opcode_bits(word: u32) -> u32 {
    word >> 26
}

/// Decodes an instruction word. Returns `None` when the opcode field is
/// illegal — the caller raises INSTRUCTION ERROR.
#[must_use]
pub fn decode(word: u32) -> Option<Decoded> {
    let op = Opcode::from_bits(opcode_bits(word))?;
    let rd = ((word >> 22) & 0xF) as u8;
    let ra = ((word >> 18) & 0xF) as u8;
    let rb = ((word >> 14) & 0xF) as u8;
    let uimm16 = word & 0xFFFF;
    let imm16 = (uimm16 as u16) as i16 as i32;
    let imm22 = word & 0x3F_FFFF;
    Some(Decoded {
        op,
        rd,
        ra,
        rb,
        imm16,
        uimm16,
        imm22,
    })
}

/// Encodes an R-type instruction.
#[must_use]
pub fn encode_r(op: Opcode, rd: u8, ra: u8, rb: u8) -> u32 {
    debug_assert!(rd < 16 && ra < 16 && rb < 16);
    ((op as u32) << 26) | ((rd as u32) << 22) | ((ra as u32) << 18) | ((rb as u32) << 14)
}

/// Encodes an I-type instruction (16-bit immediate taken modulo 2¹⁶).
#[must_use]
pub fn encode_i(op: Opcode, rd: u8, ra: u8, imm: i32) -> u32 {
    debug_assert!(rd < 16 && ra < 16);
    ((op as u32) << 26) | ((rd as u32) << 22) | ((ra as u32) << 18) | ((imm as u32) & 0xFFFF)
}

/// Encodes a J-type instruction (`target` is a word address).
#[must_use]
pub fn encode_j(op: Opcode, target_word: u32) -> u32 {
    debug_assert!(target_word <= 0x3F_FFFF);
    ((op as u32) << 26) | (target_word & 0x3F_FFFF)
}

/// One step of the control-flow signature accumulator.
///
/// The signature monitor hashes every executed instruction word into a
/// 16-bit running signature; `sig` instructions compare it against the
/// value the assembler computed for the same straight-line block and reset
/// it. The same function is used by the hardware model
/// ([`crate::machine::Machine`]) and by the assembler's signature pass, so
/// the two stay consistent by construction.
#[must_use]
pub fn signature_step(sig: u16, word: u32) -> u16 {
    sig.rotate_left(3) ^ (word as u16) ^ ((word >> 16) as u16)
}

/// Disassembles one instruction word for diagnostics.
#[must_use]
pub fn disassemble(word: u32) -> String {
    let Some(d) = decode(word) else {
        return format!(".illegal 0x{word:08X}");
    };
    use Opcode::*;
    match d.op {
        Nop | Halt | Yield | Ret => d.op.mnemonic().to_string(),
        Sig => format!("sig 0x{:04X}", d.uimm16),
        Lui => format!("lui r{}, 0x{:04X}", d.rd, d.uimm16),
        Ori => format!("ori r{}, r{}, 0x{:04X}", d.rd, d.ra, d.uimm16),
        Addi => format!("addi r{}, r{}, {}", d.rd, d.ra, d.imm16),
        Ld => format!("ld r{}, [r{}{:+}]", d.rd, d.ra, d.imm16),
        St => format!("st r{}, [r{}{:+}]", d.rd, d.ra, d.imm16),
        Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Fadd | Fsub | Fmul | Fdiv | Chk => {
            format!("{} r{}, r{}, r{}", d.op.mnemonic(), d.rd, d.ra, d.rb)
        }
        Fcmp | Cmp | Setsb => format!("{} r{}, r{}", d.op.mnemonic(), d.ra, d.rb),
        Beq | Bne | Blt | Bge | Bgt | Ble => format!("{} {:+}", d.op.mnemonic(), d.imm16),
        Jmp | Call => format!("{} 0x{:08X}", d.op.mnemonic(), d.imm22 * 4),
        In => format!("in r{}, {}", d.rd, d.uimm16),
        Out => format!("out r{}, {}", d.rd, d.uimm16),
        Itof | Ftoi | Mov => format!("{} r{}, r{}", d.op.mnemonic(), d.rd, d.ra),
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_r_type() {
        let w = encode_r(Opcode::Fadd, 3, 4, 5);
        let d = decode(w).unwrap();
        assert_eq!(d.op, Opcode::Fadd);
        assert_eq!((d.rd, d.ra, d.rb), (3, 4, 5));
    }

    #[test]
    fn roundtrip_i_type_negative_imm() {
        let w = encode_i(Opcode::Addi, 1, 2, -12);
        let d = decode(w).unwrap();
        assert_eq!(d.op, Opcode::Addi);
        assert_eq!(d.imm16, -12);
        assert_eq!((d.rd, d.ra), (1, 2));
    }

    #[test]
    fn roundtrip_j_type() {
        let w = encode_j(Opcode::Jmp, 0x1234);
        let d = decode(w).unwrap();
        assert_eq!(d.op, Opcode::Jmp);
        assert_eq!(d.imm22, 0x1234);
    }

    #[test]
    fn illegal_opcodes_rejected() {
        for op in 0x28u32..0x40 {
            assert!(decode(op << 26).is_none(), "opcode {op:#x} must be illegal");
        }
    }

    #[test]
    fn all_legal_opcodes_decode() {
        for op in 0x00u32..=0x27 {
            assert!(decode(op << 26).is_some(), "opcode {op:#x} must decode");
        }
    }

    #[test]
    fn privileged_set() {
        assert!(Opcode::Halt.is_privileged());
        assert!(Opcode::Setsb.is_privileged());
        assert!(!Opcode::Yield.is_privileged());
        assert!(!Opcode::Ld.is_privileged());
    }

    #[test]
    fn branch_set() {
        assert!(Opcode::Beq.is_branch());
        assert!(Opcode::Ble.is_branch());
        assert!(!Opcode::Jmp.is_branch());
    }

    #[test]
    fn straight_line_set() {
        use Opcode::*;
        // Exactly the run terminators are excluded: control transfers,
        // yield, the signature check, and privileged ops.
        let terminators = [
            Beq, Bne, Blt, Bge, Bgt, Ble, Jmp, Call, Ret, Yield, Sig, Halt, Setsb,
        ];
        for op in [
            Nop, Halt, Yield, Sig, Lui, Ori, Addi, Ld, St, Add, Sub, Mul, Div, And, Or, Xor, Shl,
            Shr, Fadd, Fsub, Fmul, Fdiv, Fcmp, Cmp, Beq, Bne, Blt, Bge, Bgt, Ble, Jmp, Call, Ret,
            In, Out, Chk, Itof, Ftoi, Mov, Setsb,
        ] {
            assert_eq!(op.is_straight_line(), !terminators.contains(&op), "{op:?}");
        }
    }

    #[test]
    fn every_opcode_value_roundtrips_through_bits() {
        use Opcode::*;
        for op in [
            Nop, Halt, Yield, Sig, Lui, Ori, Addi, Ld, St, Add, Sub, Mul, Div, And, Or, Xor, Shl,
            Shr, Fadd, Fsub, Fmul, Fdiv, Fcmp, Cmp, Beq, Bne, Blt, Bge, Bgt, Ble, Jmp, Call, Ret,
            In, Out, Chk, Itof, Ftoi, Mov, Setsb,
        ] {
            assert_eq!(Opcode::from_bits(op as u32), Some(op));
        }
    }

    #[test]
    fn disassembly_smoke() {
        assert_eq!(
            disassemble(encode_r(Opcode::Add, 1, 2, 3)),
            "add r1, r2, r3"
        );
        assert_eq!(
            disassemble(encode_i(Opcode::Ld, 5, 1, 16)),
            "ld r5, [r1+16]"
        );
        assert_eq!(disassemble(encode_i(Opcode::Beq, 0, 0, -3)), "beq -3");
        assert!(disassemble(0xFFFF_FFFF).starts_with(".illegal"));
    }

    #[test]
    fn mnemonics_unique() {
        let mut names: Vec<&str> = (0x00u32..=0x27)
            .map(|b| Opcode::from_bits(b).unwrap().mnemonic())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 40);
    }
}
