//! The 128-byte on-chip data cache.
//!
//! Thor's data cache sits inside the pipeline and is **not** parity
//! protected, so a bit-flip in a cache line holding the controller state
//! survives until the line is evicted or rewritten — the mechanism behind
//! the paper's severe value failures (Section 4.2). The cache here is
//! direct-mapped, write-back, write-allocate: 8 lines × 16 bytes.
//!
//! Address split (byte address): `offset = addr[3:0]`, `index = addr[6:4]`,
//! `tag = addr[31:7]` (25 bits stored per line).

use serde::{Deserialize, Serialize};

/// Number of cache lines.
pub const NUM_LINES: usize = 8;
/// Bytes per cache line.
pub const LINE_BYTES: usize = 16;
/// Number of tag bits stored per line.
pub const TAG_BITS: u32 = 25;
/// 32-bit words per cache line — the granularity of the access trace: a
/// data read or write touches one word, a fill or write-back all four.
pub const WORDS_PER_LINE: usize = LINE_BYTES / 4;

/// Extracts the line index of an address.
#[must_use]
pub fn index_of(addr: u32) -> usize {
    ((addr >> 4) & 0x7) as usize
}

/// Extracts the tag of an address.
#[must_use]
pub fn tag_of(addr: u32) -> u32 {
    (addr >> 7) & ((1 << TAG_BITS) - 1)
}

/// Word-within-line index of an address (`0..WORDS_PER_LINE`) — the trace
/// unit a cached word access belongs to.
#[must_use]
pub fn word_of(addr: u32) -> usize {
    ((addr >> 2) & 0x3) as usize
}

/// The word-within-line index containing a scan-chain data bit
/// (`bit` in `0..LINE_BYTES*8`). The scan catalog orders data bits
/// byte-by-byte little-endian, so word `w` covers bits `32*w..32*w+32`.
#[must_use]
pub fn word_of_data_bit(bit: usize) -> usize {
    bit / 32
}

/// Reconstructs the base byte address of a line from its tag and index —
/// the address a write-back targets. A corrupted tag therefore redirects
/// the write-back, which is how tag faults turn into address errors or
/// silent corruption of other memory.
#[must_use]
pub fn line_base(tag: u32, index: usize) -> u32 {
    (tag << 7) | ((index as u32) << 4)
}

/// One cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLine {
    /// Stored tag (25 bits significant).
    pub tag: u32,
    /// Line holds valid data.
    pub valid: bool,
    /// Line has been written since it was filled.
    pub dirty: bool,
    /// The data bytes.
    pub data: [u8; LINE_BYTES],
}

impl Default for CacheLine {
    fn default() -> Self {
        CacheLine {
            tag: 0,
            valid: false,
            dirty: false,
            data: [0; LINE_BYTES],
        }
    }
}

/// The direct-mapped write-back data cache.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DataCache {
    lines: [CacheLine; NUM_LINES],
}

impl DataCache {
    /// An empty (all-invalid) cache.
    #[must_use]
    pub fn new() -> Self {
        DataCache::default()
    }

    /// `true` when `addr` hits in the cache.
    #[must_use]
    pub fn hits(&self, addr: u32) -> bool {
        let line = &self.lines[index_of(addr)];
        line.valid && line.tag == tag_of(addr)
    }

    /// If filling `addr` requires evicting a dirty line, returns the
    /// write-back address and data of the victim.
    #[must_use]
    pub fn pending_writeback(&self, addr: u32) -> Option<(u32, [u8; LINE_BYTES])> {
        let idx = index_of(addr);
        let line = &self.lines[idx];
        if line.valid && line.dirty && line.tag != tag_of(addr) {
            Some((line_base(line.tag, idx), line.data))
        } else {
            None
        }
    }

    /// Installs a freshly fetched line for `addr` (clean).
    pub fn fill(&mut self, addr: u32, data: [u8; LINE_BYTES]) {
        let idx = index_of(addr);
        self.lines[idx] = CacheLine {
            tag: tag_of(addr),
            valid: true,
            dirty: false,
            data,
        };
    }

    /// Reads the aligned 32-bit word containing `addr`. The address must
    /// hit — the machine fills first; debug builds panic on a miss.
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u32 {
        debug_assert!(self.hits(addr), "read_word on a cache miss");
        let line = &self.lines[index_of(addr)];
        let off = (addr & 0xC) as usize;
        u32::from_le_bytes([
            line.data[off],
            line.data[off + 1],
            line.data[off + 2],
            line.data[off + 3],
        ])
    }

    /// Writes the aligned 32-bit word containing `addr` and marks the line
    /// dirty. The address must hit — write-allocate fills first; debug
    /// builds panic on a miss.
    pub fn write_word(&mut self, addr: u32, word: u32) {
        debug_assert!(self.hits(addr), "write_word on a cache miss");
        let line = &mut self.lines[index_of(addr)];
        let off = (addr & 0xC) as usize;
        line.data[off..off + 4].copy_from_slice(&word.to_le_bytes());
        line.dirty = true;
    }

    /// Combined hit-check and word access for the untraced hot path: if
    /// `addr` hits, performs the read (`write == None`) or write (marking
    /// the line dirty) with a single index/tag resolution and returns the
    /// word; `None` on a miss (the caller fills and retries). Equivalent
    /// to `hits` + `read_word`/`write_word`.
    pub fn access_hit(&mut self, addr: u32, write: Option<u32>) -> Option<u32> {
        let line = &mut self.lines[index_of(addr)];
        if !line.valid || line.tag != tag_of(addr) {
            return None;
        }
        let off = (addr & 0xC) as usize;
        match write {
            Some(w) => {
                line.data[off..off + 4].copy_from_slice(&w.to_le_bytes());
                line.dirty = true;
                Some(w)
            }
            None => Some(u32::from_le_bytes([
                line.data[off],
                line.data[off + 1],
                line.data[off + 2],
                line.data[off + 3],
            ])),
        }
    }

    /// Direct access to a line (scan chain, diagnostics).
    #[must_use]
    pub fn line(&self, index: usize) -> &CacheLine {
        &self.lines[index]
    }

    /// Mutable access to a line (scan-chain bit flips).
    pub fn line_mut(&mut self, index: usize) -> &mut CacheLine {
        &mut self.lines[index]
    }

    /// Iterates over all dirty valid lines as `(write-back address, data)`;
    /// used when flushing the cache at the end of a run to compare memory
    /// state.
    pub fn dirty_lines(&self) -> impl Iterator<Item = (u32, [u8; LINE_BYTES])> + '_ {
        self.lines.iter().enumerate().filter_map(|(idx, line)| {
            (line.valid && line.dirty).then_some((line_base(line.tag, idx), line.data))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::RAM_BASE;

    #[test]
    fn address_split_roundtrips() {
        for addr in [RAM_BASE, RAM_BASE + 0x14, RAM_BASE + 0x70, 0x2_0F00] {
            let base = line_base(tag_of(addr), index_of(addr));
            assert_eq!(base, addr & !0xF, "line base of {addr:#x}");
        }
    }

    #[test]
    fn distinct_lines_for_consecutive_blocks() {
        // Consecutive 16-byte blocks map to consecutive indices.
        assert_eq!(index_of(RAM_BASE), 0);
        assert_eq!(index_of(RAM_BASE + 0x10), 1);
        assert_eq!(index_of(RAM_BASE + 0x70), 7);
        assert_eq!(index_of(RAM_BASE + 0x80), 0, "wraps after 128 bytes");
    }

    #[test]
    fn fill_then_hit() {
        let mut c = DataCache::new();
        assert!(!c.hits(RAM_BASE));
        c.fill(RAM_BASE, [0xAB; 16]);
        assert!(c.hits(RAM_BASE));
        assert!(c.hits(RAM_BASE + 12), "whole line hits");
        assert!(!c.hits(RAM_BASE + 16), "next line misses");
        assert_eq!(c.read_word(RAM_BASE), 0xABAB_ABAB);
    }

    #[test]
    fn write_marks_dirty_and_readback() {
        let mut c = DataCache::new();
        c.fill(RAM_BASE, [0; 16]);
        assert!(!c.line(0).dirty);
        c.write_word(RAM_BASE + 4, 0x1122_3344);
        assert!(c.line(0).dirty);
        assert_eq!(c.read_word(RAM_BASE + 4), 0x1122_3344);
        assert_eq!(c.read_word(RAM_BASE), 0, "neighbouring word untouched");
    }

    #[test]
    fn conflicting_fill_requires_writeback_only_when_dirty() {
        let mut c = DataCache::new();
        let a = RAM_BASE; // index 0
        let b = RAM_BASE + 0x80; // also index 0, different tag
        c.fill(a, [1; 16]);
        assert!(c.pending_writeback(b).is_none(), "clean victim: no WB");
        c.write_word(a, 99);
        let (wb_addr, data) = c.pending_writeback(b).expect("dirty victim");
        assert_eq!(wb_addr, a);
        assert_eq!(u32::from_le_bytes(data[0..4].try_into().unwrap()), 99);
    }

    #[test]
    fn same_tag_never_writes_back() {
        let mut c = DataCache::new();
        c.fill(RAM_BASE, [0; 16]);
        c.write_word(RAM_BASE, 1);
        assert!(c.pending_writeback(RAM_BASE + 4).is_none());
    }

    #[test]
    fn corrupted_tag_redirects_writeback() {
        let mut c = DataCache::new();
        c.fill(RAM_BASE, [0; 16]);
        c.write_word(RAM_BASE, 7);
        // A scan-chain flip of a high tag bit...
        c.line_mut(0).tag ^= 1 << 20;
        let (wb_addr, _) = c.pending_writeback(RAM_BASE).expect("tag now mismatches");
        assert_ne!(wb_addr, RAM_BASE, "write-back goes to the wrong address");
    }

    #[test]
    fn dirty_lines_enumerated() {
        let mut c = DataCache::new();
        c.fill(RAM_BASE, [0; 16]);
        c.fill(RAM_BASE + 0x10, [0; 16]);
        c.write_word(RAM_BASE + 0x10, 5);
        let dirty: Vec<_> = c.dirty_lines().collect();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, RAM_BASE + 0x10);
    }

    #[test]
    #[should_panic(expected = "cache miss")]
    fn read_miss_panics() {
        let _ = DataCache::new().read_word(RAM_BASE);
    }
}
