//! Instruction-level execution tracing — the substrate for GOOFI's
//! *detail mode*, which logs the system state "before the execution of
//! each machine instruction" so error propagation can be analysed.

use crate::isa;
use crate::machine::{Machine, RunExit, StepEvent};
use serde::{Deserialize, Serialize};

/// A compact per-instruction record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Dynamic instruction index.
    pub index: u64,
    /// Address of the executed instruction.
    pub pc: u32,
    /// The instruction word.
    pub word: u32,
    /// Disassembly of the instruction.
    pub disasm: String,
    /// Registers written by this instruction, as `(register, new value)`.
    pub writes: Vec<(u8, u32)>,
}

/// Runs a machine for up to `budget` instructions, recording one
/// [`TraceEntry`] per executed instruction. Returns the trace and the exit
/// condition.
///
/// This is GOOFI's detail mode: slow (state is inspected before and after
/// every instruction) but complete.
#[must_use]
pub fn trace_run(machine: &mut Machine, budget: u64) -> (Vec<TraceEntry>, RunExit) {
    let mut entries = Vec::new();
    for _ in 0..budget {
        let index = machine.instr_count();
        let before_regs: Vec<u32> = (0..isa::NUM_REGS as u8).map(|r| machine.reg(r)).collect();
        // The next instruction sits in the fetch latch (or will be fetched
        // from the PC); peek at it for the record.
        let (pc, word) = machine.peek_next_instruction();
        match machine.step() {
            Ok(event) => {
                let writes: Vec<(u8, u32)> = (0..isa::NUM_REGS as u8)
                    .filter(|&r| machine.reg(r) != before_regs[r as usize])
                    .map(|r| (r, machine.reg(r)))
                    .collect();
                entries.push(TraceEntry {
                    index,
                    pc,
                    word,
                    disasm: isa::disassemble(word),
                    writes,
                });
                if event == StepEvent::Yield {
                    return (entries, RunExit::Yield);
                }
            }
            Err(trap) => {
                entries.push(TraceEntry {
                    index,
                    pc,
                    word,
                    disasm: isa::disassemble(word),
                    writes: Vec::new(),
                });
                return (entries, RunExit::Trap(trap));
            }
        }
    }
    (entries, RunExit::Budget)
}

/// Formats a trace as human-readable text, one line per instruction.
#[must_use]
pub fn render(entries: &[TraceEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        let writes: Vec<String> = e
            .writes
            .iter()
            .map(|(r, v)| format!("r{r}={v:#010x}"))
            .collect();
        out.push_str(&format!(
            "{:>8}  {:#07x}  {:<28} {}\n",
            e.index,
            e.pc,
            e.disasm,
            writes.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn machine() -> Machine {
        let program = assemble(
            r#"
            .text
            start:
                li  r1, 7
                li  r2, 6
                mul r3, r1, r2
                out r3, 2
                yield
            loop:
                jmp loop
            "#,
        )
        .unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        m
    }

    #[test]
    fn traces_every_instruction_until_yield() {
        let mut m = machine();
        let (entries, exit) = trace_run(&mut m, 100);
        assert_eq!(exit, RunExit::Yield);
        // lui, ori, lui, ori, mul, out, yield
        assert_eq!(entries.len(), 7);
        assert_eq!(entries.last().unwrap().disasm, "yield");
        assert_eq!(m.port_out(2), 42);
    }

    #[test]
    fn register_writes_recorded() {
        let mut m = machine();
        let (entries, _) = trace_run(&mut m, 100);
        let mul = entries
            .iter()
            .find(|e| e.disasm.starts_with("mul"))
            .unwrap();
        assert_eq!(mul.writes, vec![(3, 42)]);
    }

    #[test]
    fn indices_are_sequential() {
        let mut m = machine();
        let (entries, _) = trace_run(&mut m, 100);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.index, i as u64);
        }
    }

    #[test]
    fn trace_records_the_trapping_instruction() {
        let program = assemble(
            r#"
            .text
            start:
                li r1, 0
                ld r2, [r1+0]
            "#,
        )
        .unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        let (entries, exit) = trace_run(&mut m, 100);
        assert!(matches!(exit, RunExit::Trap(_)));
        assert!(entries.last().unwrap().disasm.starts_with("ld"));
    }

    #[test]
    fn render_is_one_line_per_instruction() {
        let mut m = machine();
        let (entries, _) = trace_run(&mut m, 100);
        let text = render(&entries);
        assert_eq!(text.lines().count(), entries.len());
        assert!(text.contains("mul r3, r1, r2"));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut m = machine();
        let (entries, exit) = trace_run(&mut m, 3);
        assert_eq!(exit, RunExit::Budget);
        assert_eq!(entries.len(), 3);
    }
}
