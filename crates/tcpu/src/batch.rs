//! Lockstep-batched replica execution against a shared golden stream.
//!
//! A [`BatchMachine`] holds up to `width` fault replicas in
//! structure-of-arrays form. Each replica is represented as a
//! **copy-on-write delta** against the golden image: the set of scan-chain
//! flips it carries and the traceable units those flips live in. While a
//! replica's delta units are untouched by the (single, shared) golden
//! instruction stream, the replica's full architectural state is — by
//! construction — exactly `golden ⊕ flips`, so executing its instructions
//! individually would be a no-op: the common case costs nothing regardless
//! of batch width. The engine therefore never steps replicas at all; it
//! walks the golden access trace and resolves each replica's fate:
//!
//! * a delta unit's next access is a **read** (or partial write): the flip
//!   is about to be observed and the trajectories may diverge — the
//!   replica must [`BatchMachine::materialize`] (split off) onto a private
//!   scalar [`Machine`] *at* that instant, where the ordinary
//!   inject–run–classify pipeline takes over;
//! * the next access is a **full write**: the golden stream deposits the
//!   fault-free value over the flip (the writing instruction's inputs are
//!   all clean, so it writes exactly what golden wrote) — the unit leaves
//!   the delta. An empty delta means the replica has *converged* onto the
//!   golden trajectory;
//! * **no further access**: the flip sits untouched until the end-of-run
//!   state diff — the replica is *latent* and never needs to execute.
//!
//! Correctness rests on the same invariant as def/use pruning: every
//! semantic access to a traceable unit flows through a trace hook, and —
//! since the EDM-visibility trace ([`crate::vis`]) — every *asynchronous*
//! consult of the remaining architectural state flows through a
//! visibility hook. A replica's delta may therefore mix ordinary
//! [`TraceUnit`]s with batch-inert [`VisUnit`]s ([`DeltaUnit`]); only
//! bits that are neither traceable nor batch-inert-visible (the
//! signature register, the fetch-valid bit, the operand latch) are
//! rejected here and simulated scalar. Intra-instruction order is
//! preserved per unit, so "first access at instant `e` is a full write"
//! is exactly the kill condition.

use crate::access::{Access, AccessTrace, TraceUnit};
use crate::machine::Machine;
use crate::scan::BitLocation;
use crate::vis::{VisTrace, VisUnit};

/// A copy-on-write delta unit: either a def/use-traced unit or a
/// batch-inert EDM-visibility unit. The two index spaces are disjoint;
/// [`DeltaUnit::index`] packs them densely for split-class dedup keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaUnit {
    /// A unit of the golden def/use access trace.
    Trace(TraceUnit),
    /// A batch-inert unit of the golden EDM-visibility trace.
    Vis(VisUnit),
}

impl DeltaUnit {
    /// Total number of delta units across both spaces.
    pub const COUNT: usize = TraceUnit::COUNT + VisUnit::COUNT;

    /// Dense index in `0..DeltaUnit::COUNT` (vis units follow the trace
    /// units).
    #[must_use]
    pub fn index(&self) -> usize {
        match *self {
            DeltaUnit::Trace(u) => u.index(),
            DeltaUnit::Vis(u) => TraceUnit::COUNT + u.index(),
        }
    }
}

/// The resolved fate of one replica in a lockstep batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFate {
    /// Not yet resolved ([`BatchMachine::run`] has not been called).
    Lockstep,
    /// Every delta unit was fully overwritten with its golden value; the
    /// replica's state is bit-identical to golden once the instruction at
    /// `killed_at` retires.
    Converged {
        /// Dynamic instruction index of the write that emptied the delta.
        killed_at: u64,
    },
    /// No delta unit is ever accessed again: the flips survive, untouched
    /// and unobserved, to the end-of-run state diff.
    Latent,
    /// A delta unit is read (or partially written) at instant `at`: the
    /// replica leaves lockstep there and must run scalar from a state
    /// materialized at or before `at`.
    SplitOff {
        /// Dynamic instruction index of the first live observation.
        at: u64,
    },
}

/// A batch of fault replicas riding the golden instruction stream in
/// lockstep, stored structure-of-arrays.
#[derive(Debug)]
pub struct BatchMachine<'a> {
    trace: &'a AccessTrace,
    vis: Option<&'a VisTrace>,
    width: usize,
    // Structure-of-arrays replica state: index i across these vectors is
    // replica i.
    inject_at: Vec<u64>,
    flips: Vec<Vec<BitLocation>>,
    deltas: Vec<Vec<DeltaUnit>>,
    fates: Vec<ReplicaFate>,
}

impl<'a> BatchMachine<'a> {
    /// An empty batch over the golden access trace, admitting at most
    /// `width` replicas. When `vis` carries the golden run's
    /// EDM-visibility trace, flips in batch-inert [`VisUnit`]s are
    /// admissible too; with `None` only def/use-traceable bits are (the
    /// PR-5 behaviour).
    #[must_use]
    pub fn new(trace: &'a AccessTrace, vis: Option<&'a VisTrace>, width: usize) -> Self {
        BatchMachine {
            trace,
            vis,
            width,
            inject_at: Vec::new(),
            flips: Vec::new(),
            deltas: Vec::new(),
            fates: Vec::new(),
        }
    }

    /// The delta unit carrying a flip of `bit`, under this batch's
    /// admission rules: a def/use trace unit when one exists, else a
    /// batch-inert visibility unit when a visibility trace was supplied,
    /// else `None` (the bit stays scalar).
    fn delta_unit_of(&self, bit: BitLocation) -> Option<DeltaUnit> {
        if let Some(u) = bit.trace_unit() {
            return Some(DeltaUnit::Trace(u));
        }
        if self.vis.is_some() {
            if let Some(v) = bit.vis_unit() {
                if v.batch_inert() {
                    return Some(DeltaUnit::Vis(v));
                }
            }
        }
        None
    }

    /// The first event of `u` at or after `cursor`, from whichever golden
    /// trace governs the unit.
    fn first_at_or_after(&self, u: DeltaUnit, cursor: u64) -> Option<Access> {
        match u {
            DeltaUnit::Trace(t) => self.trace.first_at_or_after(t, cursor),
            DeltaUnit::Vis(v) => self
                .vis
                .expect("vis delta admitted without a vis trace")
                .first_at_or_after(v, cursor),
        }
    }

    /// Number of replicas admitted so far.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.inject_at.len()
    }

    /// Admission capacity.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Admits a replica carrying `flips` injected at instruction boundary
    /// `inject_at`. Returns its index, or `None` when the batch is full or
    /// any flipped bit has no admissible delta unit — neither traceable
    /// nor (when a visibility trace is present) batch-inert-visible. Such
    /// faults must be simulated on the scalar path: no trace can prove
    /// anything about them.
    pub fn try_add_replica(&mut self, flips: Vec<BitLocation>, inject_at: u64) -> Option<usize> {
        if self.occupancy() >= self.width {
            return None;
        }
        let mut delta: Vec<DeltaUnit> = Vec::with_capacity(flips.len());
        for bit in &flips {
            let unit = self.delta_unit_of(*bit)?;
            if !delta.contains(&unit) {
                delta.push(unit);
            }
        }
        self.inject_at.push(inject_at);
        self.flips.push(flips);
        self.deltas.push(delta);
        self.fates.push(ReplicaFate::Lockstep);
        Some(self.occupancy() - 1)
    }

    /// Resolves every replica's fate by walking the golden access trace.
    /// The shared stream is consulted once per replica-delta event; no
    /// instructions are executed.
    pub fn run(&mut self) {
        for i in 0..self.occupancy() {
            if self.fates[i] == ReplicaFate::Lockstep {
                self.fates[i] = self.resolve(i);
            }
        }
    }

    fn resolve(&mut self, i: usize) -> ReplicaFate {
        let mut cursor = self.inject_at[i];
        loop {
            // Earliest pending access to any surviving delta unit.
            let next = self.deltas[i]
                .iter()
                .filter_map(|&u| self.first_at_or_after(u, cursor).map(|a| (u, a)))
                .min_by_key(|(_, a)| a.at);
            let Some((_, first)) = next else {
                return ReplicaFate::Latent;
            };
            let e = first.at;
            // Every delta unit touched during instruction `e` must be
            // killed — overwritten full-width before being observed — or
            // the replica leaves lockstep here. Intra-instruction order is
            // preserved per unit, so the unit's first access at `e`
            // decides.
            let touched: Vec<DeltaUnit> = self.deltas[i]
                .iter()
                .copied()
                .filter(|&u| self.first_at_or_after(u, cursor).is_some_and(|a| a.at == e))
                .collect();
            let all_killed = touched.iter().all(|&u| {
                self.first_at_or_after(u, cursor)
                    .is_some_and(|a| a.kind.is_full_write())
            });
            if !all_killed {
                return ReplicaFate::SplitOff { at: e };
            }
            self.deltas[i].retain(|u| !touched.contains(u));
            if self.deltas[i].is_empty() {
                return ReplicaFate::Converged { killed_at: e };
            }
            cursor = e + 1;
        }
    }

    /// The resolved fate of replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn fate(&self, i: usize) -> ReplicaFate {
        self.fates[i]
    }

    /// Instruction boundary replica `i` was injected at.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn inject_at(&self, i: usize) -> u64 {
        self.inject_at[i]
    }

    /// The delta units replica `i` still differs from golden in (after
    /// [`BatchMachine::run`]: the units surviving at its fate instant).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn delta_units(&self, i: usize) -> &[DeltaUnit] {
        &self.deltas[i]
    }

    /// The flips of replica `i` that are still live — those in surviving
    /// delta units. Flips in killed units were overwritten with golden
    /// values and must *not* be re-applied at materialization.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn surviving_flips(&self, i: usize) -> Vec<BitLocation> {
        self.flips[i]
            .iter()
            .copied()
            .filter(|&b| {
                self.delta_unit_of(b)
                    .is_some_and(|u| self.deltas[i].contains(&u))
            })
            .collect()
    }

    /// Number of instructions replica `i` rode the shared stream for free:
    /// from injection to its fate instant (`end_of_run` for latent
    /// replicas, which never leave lockstep).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn lockstep_instructions(&self, i: usize, end_of_run: u64) -> u64 {
        let until = match self.fates[i] {
            ReplicaFate::Lockstep => self.inject_at[i],
            ReplicaFate::Converged { killed_at } => killed_at,
            ReplicaFate::Latent => end_of_run,
            ReplicaFate::SplitOff { at } => at,
        };
        until.saturating_sub(self.inject_at[i])
    }

    /// Materializes replica `i` onto a private scalar machine: clones
    /// `base` — which must hold the golden state at an instruction boundary
    /// in `[inject_at, fate instant]` — and deposits the surviving flips.
    /// Because no delta unit was accessed between injection and the fate
    /// instant, `golden ⊕ surviving flips` *is* the replica's exact
    /// architectural state at any such boundary.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn materialize(&self, i: usize, base: &Machine) -> Machine {
        let mut m = base.clone();
        for bit in self.surviving_flips(i) {
            m.scan_flip(bit);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessKind};

    fn trace_with(entries: &[(TraceUnit, u64, AccessKind)]) -> AccessTrace {
        let mut t = AccessTrace::new();
        for &(u, at, kind) in entries {
            t.insert_for_test(u, Access { at, kind });
        }
        t
    }

    const REG3_BIT: BitLocation = BitLocation::Reg { index: 3, bit: 5 };
    const REG4_BIT: BitLocation = BitLocation::Reg { index: 4, bit: 0 };
    const REG3: TraceUnit = TraceUnit::Reg(3);
    const REG4: TraceUnit = TraceUnit::Reg(4);

    #[test]
    fn untraceable_bits_are_rejected_without_a_vis_trace() {
        let t = AccessTrace::new();
        let mut bm = BatchMachine::new(&t, None, 4);
        assert_eq!(
            bm.try_add_replica(vec![BitLocation::Psr { bit: 0 }], 0),
            None
        );
        assert_eq!(
            bm.try_add_replica(vec![REG3_BIT, BitLocation::FetchValid], 0),
            None
        );
    }

    #[test]
    fn a_vis_trace_admits_inert_vis_bits_but_never_opaque_ones() {
        let t = AccessTrace::new();
        let v = VisTrace::new();
        let mut bm = BatchMachine::new(&t, Some(&v), 8);
        // PSR / cache-tag / store-buffer flips now batch.
        assert!(bm
            .try_add_replica(vec![BitLocation::Psr { bit: 0 }], 0)
            .is_some());
        assert!(bm
            .try_add_replica(vec![BitLocation::CacheTag { line: 1, bit: 3 }], 0)
            .is_some());
        assert!(bm
            .try_add_replica(vec![REG3_BIT, BitLocation::StoreBufValid], 0)
            .is_some());
        // The signature register is vis-covered but not batch-inert, and
        // the fetch-valid bit and operand latch have no unit at all.
        assert_eq!(
            bm.try_add_replica(vec![BitLocation::SigReg { bit: 2 }], 0),
            None
        );
        assert_eq!(bm.try_add_replica(vec![BitLocation::FetchValid], 0), None);
        assert_eq!(
            bm.try_add_replica(vec![BitLocation::OperandA { bit: 0 }], 0),
            None
        );
    }

    #[test]
    fn vis_deltas_resolve_from_the_vis_trace() {
        const PSR0_BIT: BitLocation = BitLocation::Psr { bit: 0 };
        let t = AccessTrace::new();
        // Golden: cmp deposits the flag at 10, a beq consults it at 20.
        let mut v = VisTrace::new();
        v.record(VisUnit::Psr(0), 10, AccessKind::Write);
        v.record(VisUnit::Psr(0), 20, AccessKind::Read);
        let mut bm = BatchMachine::new(&t, Some(&v), 4);
        let killed = bm.try_add_replica(vec![PSR0_BIT], 5).unwrap();
        let split = bm.try_add_replica(vec![PSR0_BIT], 15).unwrap();
        let latent = bm.try_add_replica(vec![PSR0_BIT], 21).unwrap();
        bm.run();
        assert_eq!(bm.fate(killed), ReplicaFate::Converged { killed_at: 10 });
        assert_eq!(bm.fate(split), ReplicaFate::SplitOff { at: 20 });
        assert_eq!(bm.fate(latent), ReplicaFate::Latent);
        assert!(bm.surviving_flips(killed).is_empty());
        assert_eq!(bm.surviving_flips(split), vec![PSR0_BIT]);
    }

    #[test]
    fn mixed_trace_and_vis_delta_requires_both_killed() {
        const PSR1_BIT: BitLocation = BitLocation::Psr { bit: 1 };
        // The register flip dies at 10; the PSR flip is consulted at 30.
        let t = trace_with(&[(REG3, 10, AccessKind::Write)]);
        let mut v = VisTrace::new();
        v.record(VisUnit::Psr(1), 30, AccessKind::Read);
        let mut bm = BatchMachine::new(&t, Some(&v), 4);
        let id = bm.try_add_replica(vec![REG3_BIT, PSR1_BIT], 5).unwrap();
        bm.run();
        assert_eq!(bm.fate(id), ReplicaFate::SplitOff { at: 30 });
        assert_eq!(bm.delta_units(id), &[DeltaUnit::Vis(VisUnit::Psr(1))]);
        assert_eq!(bm.surviving_flips(id), vec![PSR1_BIT]);
    }

    #[test]
    fn delta_unit_indices_are_dense_and_disjoint() {
        let trace_max = DeltaUnit::Trace(TraceUnit::Reg(0)).index();
        assert!(trace_max < TraceUnit::COUNT);
        let vis_min = DeltaUnit::Vis(VisUnit::Pc).index();
        assert_eq!(vis_min, TraceUnit::COUNT);
        let vis_max = DeltaUnit::Vis(VisUnit::CacheDirty(crate::cache::NUM_LINES - 1)).index();
        assert_eq!(vis_max, DeltaUnit::COUNT - 1);
    }

    #[test]
    fn width_is_enforced() {
        let t = AccessTrace::new();
        let mut bm = BatchMachine::new(&t, None, 1);
        assert_eq!(bm.try_add_replica(vec![REG3_BIT], 0), Some(0));
        assert_eq!(bm.try_add_replica(vec![REG3_BIT], 1), None);
        assert_eq!(bm.occupancy(), 1);
    }

    #[test]
    fn untouched_delta_is_latent() {
        let t = trace_with(&[(REG3, 10, AccessKind::Read)]);
        let mut bm = BatchMachine::new(&t, None, 4);
        // Injected after the last access: nothing ever observes the flip.
        let id = bm.try_add_replica(vec![REG3_BIT], 11).unwrap();
        bm.run();
        assert_eq!(bm.fate(id), ReplicaFate::Latent);
        assert_eq!(bm.lockstep_instructions(id, 100), 89);
    }

    #[test]
    fn read_splits_off_at_the_access() {
        let t = trace_with(&[(REG3, 10, AccessKind::Write), (REG3, 20, AccessKind::Read)]);
        let mut bm = BatchMachine::new(&t, None, 4);
        // Injected between the write and the read: the read observes it.
        let id = bm.try_add_replica(vec![REG3_BIT], 15).unwrap();
        bm.run();
        assert_eq!(bm.fate(id), ReplicaFate::SplitOff { at: 20 });
        assert_eq!(bm.surviving_flips(id), vec![REG3_BIT]);
    }

    #[test]
    fn full_write_kills_and_converges() {
        let t = trace_with(&[(REG3, 10, AccessKind::Write), (REG3, 20, AccessKind::Read)]);
        let mut bm = BatchMachine::new(&t, None, 4);
        // Injected before the write: overwritten before observation.
        let id = bm.try_add_replica(vec![REG3_BIT], 5).unwrap();
        bm.run();
        assert_eq!(bm.fate(id), ReplicaFate::Converged { killed_at: 10 });
        assert!(bm.surviving_flips(id).is_empty());
    }

    #[test]
    fn partial_write_is_conservative() {
        let t = trace_with(&[(REG3, 10, AccessKind::PartialWrite)]);
        let mut bm = BatchMachine::new(&t, None, 4);
        let id = bm.try_add_replica(vec![REG3_BIT], 5).unwrap();
        bm.run();
        assert_eq!(bm.fate(id), ReplicaFate::SplitOff { at: 10 });
    }

    #[test]
    fn multi_unit_delta_shrinks_then_splits() {
        let t = trace_with(&[(REG3, 10, AccessKind::Write), (REG4, 30, AccessKind::Read)]);
        let mut bm = BatchMachine::new(&t, None, 4);
        let id = bm.try_add_replica(vec![REG3_BIT, REG4_BIT], 5).unwrap();
        bm.run();
        assert_eq!(bm.fate(id), ReplicaFate::SplitOff { at: 30 });
        // r3's flip was killed at 10; only r4's survives to the split.
        assert_eq!(bm.delta_units(id), &[DeltaUnit::Trace(REG4)]);
        assert_eq!(bm.surviving_flips(id), vec![REG4_BIT]);
    }

    #[test]
    fn read_then_write_at_same_instant_splits() {
        // Intra-instruction order: the read observes the flip before the
        // write lands — e.g. `add r3, r3, r0`.
        let mut t = AccessTrace::new();
        t.record(REG3, 10, AccessKind::Read);
        t.record(REG3, 10, AccessKind::Write);
        let mut bm = BatchMachine::new(&t, None, 4);
        let id = bm.try_add_replica(vec![REG3_BIT], 5).unwrap();
        bm.run();
        assert_eq!(bm.fate(id), ReplicaFate::SplitOff { at: 10 });
    }

    #[test]
    fn write_then_read_at_same_instant_kills() {
        // The full write lands first (from clean inputs), so the read at
        // the same instant observes the golden value.
        let mut t = AccessTrace::new();
        t.record(REG3, 10, AccessKind::Write);
        t.record(REG3, 10, AccessKind::Read);
        let mut bm = BatchMachine::new(&t, None, 4);
        let id = bm.try_add_replica(vec![REG3_BIT], 5).unwrap();
        bm.run();
        assert_eq!(bm.fate(id), ReplicaFate::Converged { killed_at: 10 });
    }

    #[test]
    fn kill_and_live_touch_at_same_instant_splits() {
        // One instruction fully writes r3 but reads r4: the r4 flip is
        // observed, so the whole replica must leave lockstep.
        let t = trace_with(&[(REG3, 10, AccessKind::Write), (REG4, 10, AccessKind::Read)]);
        let mut bm = BatchMachine::new(&t, None, 4);
        let id = bm.try_add_replica(vec![REG3_BIT, REG4_BIT], 5).unwrap();
        bm.run();
        assert_eq!(bm.fate(id), ReplicaFate::SplitOff { at: 10 });
    }

    #[test]
    fn materialize_applies_only_surviving_flips() {
        let t = trace_with(&[(REG3, 10, AccessKind::Write), (REG4, 30, AccessKind::Read)]);
        let mut bm = BatchMachine::new(&t, None, 4);
        let id = bm.try_add_replica(vec![REG3_BIT, REG4_BIT], 5).unwrap();
        bm.run();
        let base = Machine::new();
        let m = bm.materialize(id, &base);
        // r3's flip was overwritten with the golden value (bit 5 stays 0);
        // r4's flip (bit 0) is live.
        assert_eq!(m.reg(3), base.reg(3));
        assert_eq!(m.reg(4), base.reg(4) ^ 1);
        assert!(m.state_equals_on(&base, &[REG3]));
        assert!(!m.state_equals_on(&base, &[REG4]));
    }
}
