//! The hardware error detection mechanisms (EDMs) of Table 1.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the processor's hardware error detection mechanisms.
///
/// The variants mirror Table 1 of the paper. `MasterSlaveComparator` exists
/// for completeness but, as in the paper, is not used in this study (the
/// target runs a single CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorMechanism {
    /// Bus time-out on external memory access.
    BusError,
    /// Access to non-existing or protected memory.
    AddressError,
    /// Attempt to execute a privileged instruction in user mode, or an
    /// illegal instruction.
    InstructionError,
    /// Attempt to jump, call or return to a target address outside the
    /// memory address space.
    JumpError,
    /// A run-time assertion (constraint check instruction) failed.
    ConstraintError,
    /// Attempt to follow a null pointer.
    AccessCheck,
    /// Attempt to access memory outside the task's stack in user mode.
    StorageError,
    /// Overflow of signed integer or float arithmetic operations.
    OverflowCheck,
    /// Underflow or denormalised result of float arithmetic operations.
    UnderflowCheck,
    /// Divide by zero (integer) or by ±0 (float).
    DivisionCheck,
    /// Illegal operation for float arithmetic involving 0 and ∞ (NaNs,
    /// ∞−∞, 0·∞, …).
    IllegalOperation,
    /// Uncorrectable EDAC error in data read from memory.
    DataError,
    /// A control-flow error (wrong sequence of instructions) occurred —
    /// detected by the signature-monitoring logic.
    ControlFlowError,
    /// Mismatch between master and slave processors (not used in this
    /// study).
    MasterSlaveComparator,
}

impl ErrorMechanism {
    /// All mechanisms, in the order Table 1 lists them.
    pub const ALL: [ErrorMechanism; 14] = [
        ErrorMechanism::BusError,
        ErrorMechanism::AddressError,
        ErrorMechanism::InstructionError,
        ErrorMechanism::JumpError,
        ErrorMechanism::ConstraintError,
        ErrorMechanism::AccessCheck,
        ErrorMechanism::StorageError,
        ErrorMechanism::OverflowCheck,
        ErrorMechanism::UnderflowCheck,
        ErrorMechanism::DivisionCheck,
        ErrorMechanism::IllegalOperation,
        ErrorMechanism::DataError,
        ErrorMechanism::ControlFlowError,
        ErrorMechanism::MasterSlaveComparator,
    ];

    /// The human-readable name used in the paper's tables.
    #[must_use]
    pub fn table_name(&self) -> &'static str {
        match self {
            ErrorMechanism::BusError => "Bus Error",
            ErrorMechanism::AddressError => "Address Error",
            ErrorMechanism::InstructionError => "Instruction Error",
            ErrorMechanism::JumpError => "Jump Error",
            ErrorMechanism::ConstraintError => "Constraint Check",
            ErrorMechanism::AccessCheck => "Access Check",
            ErrorMechanism::StorageError => "Storage Error",
            ErrorMechanism::OverflowCheck => "Overflow",
            ErrorMechanism::UnderflowCheck => "Underflow",
            ErrorMechanism::DivisionCheck => "Division Check",
            ErrorMechanism::IllegalOperation => "Illegal Operation",
            ErrorMechanism::DataError => "Data Error",
            ErrorMechanism::ControlFlowError => "Control Flow Errors",
            ErrorMechanism::MasterSlaveComparator => "Master/Slave Comparator Error",
        }
    }
}

impl fmt::Display for ErrorMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.table_name())
    }
}

/// A detected error: which mechanism fired and at which dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trap {
    /// The mechanism that detected the error.
    pub mechanism: ErrorMechanism,
    /// The dynamic instruction index at which the trap was raised.
    pub at_instruction: u64,
    /// The program counter of the trapping instruction.
    pub pc: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_mechanisms_enumerated() {
        assert_eq!(ErrorMechanism::ALL.len(), 14, "Table 1 has 14 rows");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ErrorMechanism::ALL.iter().map(|m| m.table_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn display_matches_table_name() {
        assert_eq!(ErrorMechanism::AddressError.to_string(), "Address Error");
    }
}
