//! The memory map and the EDAC-protected main memory.
//!
//! ```text
//! 0x0000_0000 .. 0x0000_0FFF   null page        (ACCESS CHECK)
//! 0x0000_1000 .. 0x0000_8FFF   code ROM         (fetch only; writes trap)
//! 0x0001_0000 .. 0x0001_0FFF   data RAM         (cacheable, EDAC parity)
//! 0x0002_0000 .. 0x0002_0FFF   stack segment    (cacheable, EDAC parity,
//!                                                bounds-checked in user mode)
//! 0x8000_0000 .. 0xFFFF_FFFF   external bus     (BUS ERROR: time-out)
//! everything else              unmapped         (ADDRESS ERROR)
//! ```
//!
//! Main memory carries one parity bit per 32-bit word (the EDAC of the
//! paper's DATA ERROR mechanism). The on-chip data cache is **unprotected** —
//! that asymmetry is the root cause of the paper's severe value failures.

use serde::{Deserialize, Serialize};

/// Base address of the code ROM.
pub const ROM_BASE: u32 = 0x0000_1000;
/// Size of the code ROM in bytes.
pub const ROM_SIZE: u32 = 0x8000;
/// Base address of the data RAM.
pub const RAM_BASE: u32 = 0x0001_0000;
/// Size of the data RAM in bytes. Kept small (as on a memory-constrained
/// embedded target) so that most corrupted cache tags point at unmapped
/// space and trip ADDRESS ERROR on write-back, as in the paper's Table 2.
pub const RAM_SIZE: u32 = 0x1000;
/// Base address of the stack segment.
pub const STACK_BASE: u32 = 0x0002_0000;
/// Size of the stack segment in bytes.
pub const STACK_SIZE: u32 = 0x1000;
/// First address of the external bus hole.
pub const BUS_BASE: u32 = 0x8000_0000;

/// The memory region an address decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// The protected null page (catches null-pointer dereferences).
    Null,
    /// Code ROM.
    Rom,
    /// Cacheable data RAM.
    Ram,
    /// Cacheable, bounds-checked stack segment.
    Stack,
    /// External bus: accesses time out.
    Bus,
    /// No device decodes this address.
    Unmapped,
}

/// Decodes `addr` into its [`Region`].
#[must_use]
pub fn region(addr: u32) -> Region {
    match addr {
        0x0000_0000..=0x0000_0FFF => Region::Null,
        a if (ROM_BASE..ROM_BASE + ROM_SIZE).contains(&a) => Region::Rom,
        a if (RAM_BASE..RAM_BASE + RAM_SIZE).contains(&a) => Region::Ram,
        a if (STACK_BASE..STACK_BASE + STACK_SIZE).contains(&a) => Region::Stack,
        a if a >= BUS_BASE => Region::Bus,
        _ => Region::Unmapped,
    }
}

/// Even parity of a 32-bit word (the EDAC check bit).
#[must_use]
pub fn parity(word: u32) -> bool {
    word.count_ones() % 2 == 1
}

/// Number of addressable data words (RAM then stack) — the memory half of
/// the golden-run access trace.
pub const NUM_DATA_WORDS: usize = ((RAM_SIZE + STACK_SIZE) / 4) as usize;

/// Dense trace index of an aligned data word: RAM words first, stack words
/// after. `None` outside RAM/stack — only those regions back cached data.
#[must_use]
pub fn word_key(addr: u32) -> Option<usize> {
    match region(addr) {
        Region::Ram => Some(((addr - RAM_BASE) / 4) as usize),
        Region::Stack => Some((RAM_SIZE / 4 + (addr - STACK_BASE) / 4) as usize),
        _ => None,
    }
}

/// Inverse of [`word_key`]: the aligned address of a dense data-word index.
/// `None` when `key` is out of range. Used by the lockstep engine to compare
/// individual delta words without walking the whole memory image.
#[must_use]
pub fn key_addr(key: usize) -> Option<u32> {
    let ram_words = (RAM_SIZE / 4) as usize;
    if key < ram_words {
        Some(RAM_BASE + (key as u32) * 4)
    } else if key < NUM_DATA_WORDS {
        Some(STACK_BASE + ((key - ram_words) as u32) * 4)
    } else {
        None
    }
}

/// Main memory: ROM plus EDAC-protected RAM and stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Memory {
    rom: Vec<u32>,
    ram: Vec<u32>,
    ram_parity: Vec<bool>,
    stack: Vec<u32>,
    stack_parity: Vec<bool>,
    /// Count of host-level ROM writes since construction. Lets the
    /// fast-replay engine detect a stale predecoded image with one integer
    /// compare instead of re-reading the run it is about to replay.
    rom_version: u64,
}

impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        // `rom_version` is a cache-coherence counter, not architectural
        // state: two memories holding identical images are equal no matter
        // how many ROM loads produced them.
        self.rom == other.rom
            && self.ram == other.ram
            && self.ram_parity == other.ram_parity
            && self.stack == other.stack
            && self.stack_parity == other.stack_parity
    }
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl Memory {
    /// Creates fresh memory: RAM/stack zeroed (with correct parity), ROM
    /// filled with `0xFFFF_FFFF` so falling through into unprogrammed code
    /// raises INSTRUCTION ERROR, as erased PROM would.
    #[must_use]
    pub fn new() -> Self {
        let rom_words = (ROM_SIZE / 4) as usize;
        let ram_words = (RAM_SIZE / 4) as usize;
        let stack_words = (STACK_SIZE / 4) as usize;
        Memory {
            rom: vec![0xFFFF_FFFF; rom_words],
            ram: vec![0; ram_words],
            ram_parity: vec![parity(0); ram_words],
            stack: vec![0; stack_words],
            stack_parity: vec![parity(0); stack_words],
            rom_version: 0,
        }
    }

    /// Writes one instruction word into ROM (program loading only).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside ROM or unaligned.
    pub fn load_rom_word(&mut self, addr: u32, word: u32) {
        assert_eq!(region(addr), Region::Rom, "load_rom_word outside ROM");
        assert_eq!(addr % 4, 0, "unaligned ROM load");
        self.rom[((addr - ROM_BASE) / 4) as usize] = word;
        self.rom_version += 1;
    }

    /// The host ROM-write counter — see the field doc. Predecoded block
    /// tables record it at build time and refuse to replay once it moves.
    #[must_use]
    pub fn rom_version(&self) -> u64 {
        self.rom_version
    }

    /// Fetches an instruction word from ROM; `None` if `addr` is outside
    /// ROM or unaligned (the caller raises the appropriate EDM).
    #[must_use]
    pub fn fetch(&self, addr: u32) -> Option<u32> {
        if region(addr) != Region::Rom || !addr.is_multiple_of(4) {
            return None;
        }
        Some(self.rom[((addr - ROM_BASE) / 4) as usize])
    }

    fn backing(&self, addr: u32) -> Option<(&Vec<u32>, &Vec<bool>, usize)> {
        match region(addr) {
            Region::Ram => Some((
                &self.ram,
                &self.ram_parity,
                ((addr - RAM_BASE) / 4) as usize,
            )),
            Region::Stack => Some((
                &self.stack,
                &self.stack_parity,
                ((addr - STACK_BASE) / 4) as usize,
            )),
            _ => None,
        }
    }

    /// Reads a data word together with its EDAC verdict (`true` = parity
    /// consistent). `None` if `addr` is not backed by RAM/stack or is
    /// unaligned.
    #[must_use]
    pub fn read_word(&self, addr: u32) -> Option<(u32, bool)> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        let (mem, par, idx) = self.backing(addr)?;
        let w = mem[idx];
        Some((w, parity(w) == par[idx]))
    }

    /// Reads the four words of the aligned 16-byte line at `base` together
    /// with their EDAC verdicts, resolving the backing region once. All
    /// regions are 16-byte aligned with 16-byte-multiple sizes, so a line
    /// never straddles two regions — the per-word result is exactly what
    /// four [`Memory::read_word`] calls would return. `None` if the line
    /// is not backed by RAM/stack.
    #[must_use]
    pub fn read_line(&self, base: u32) -> Option<([u32; 4], [bool; 4])> {
        debug_assert!(base.is_multiple_of(16), "read_line on unaligned base");
        let (mem, par, idx) = self.backing(base)?;
        let words: [u32; 4] = mem[idx..idx + 4].try_into().expect("line-sized slice");
        let pars: [bool; 4] = par[idx..idx + 4].try_into().expect("line-sized slice");
        let mut ok = [false; 4];
        for i in 0..4 {
            ok[i] = parity(words[i]) == pars[i];
        }
        Some((words, ok))
    }

    /// Writes the four words of the aligned 16-byte line at `base`,
    /// recomputing parity bits — the batched equivalent of four
    /// [`Memory::write_word`] calls (see [`Memory::read_line`] for why one
    /// region resolution is enough). Returns `false` if the line is not
    /// backed by writable data memory.
    pub fn write_line(&mut self, base: u32, words: &[u32; 4]) -> bool {
        debug_assert!(base.is_multiple_of(16), "write_line on unaligned base");
        let (mem, par, idx) = match region(base) {
            Region::Ram => (
                &mut self.ram,
                &mut self.ram_parity,
                ((base - RAM_BASE) / 4) as usize,
            ),
            Region::Stack => (
                &mut self.stack,
                &mut self.stack_parity,
                ((base - STACK_BASE) / 4) as usize,
            ),
            _ => return false,
        };
        mem[idx..idx + 4].copy_from_slice(words);
        for i in 0..4 {
            par[idx + i] = parity(words[i]);
        }
        true
    }

    /// Writes a data word, recomputing its parity bit. Returns `false` if
    /// the address is not writable data memory.
    pub fn write_word(&mut self, addr: u32, word: u32) -> bool {
        if !addr.is_multiple_of(4) {
            return false;
        }
        let (mem, par, idx) = match region(addr) {
            Region::Ram => (
                &mut self.ram,
                &mut self.ram_parity,
                ((addr - RAM_BASE) / 4) as usize,
            ),
            Region::Stack => (
                &mut self.stack,
                &mut self.stack_parity,
                ((addr - STACK_BASE) / 4) as usize,
            ),
            _ => return false,
        };
        mem[idx] = word;
        par[idx] = parity(word);
        true
    }

    /// Host-side initialisation of a data word (identical to
    /// [`Memory::write_word`], named for intent).
    pub fn poke(&mut self, addr: u32, word: u32) -> bool {
        self.write_word(addr, word)
    }

    /// `true` when the data contents (RAM + stack) of two memories are
    /// identical — used by the latent/overwritten classification.
    #[must_use]
    pub fn data_equals(&self, other: &Memory) -> bool {
        self.ram == other.ram && self.stack == other.stack
    }

    /// The full ROM image as a word slice, indexed by `(addr - ROM_BASE) / 4`.
    /// Used by the predecoded block engine to verify that the text it is
    /// about to replay still matches the image it was decoded from.
    #[must_use]
    pub(crate) fn rom_words(&self) -> &[u32] {
        &self.rom
    }

    /// The data word at dense index `key` (see [`word_key`]).
    ///
    /// # Panics
    ///
    /// Panics if `key >= NUM_DATA_WORDS`.
    #[must_use]
    pub(crate) fn data_word(&self, key: usize) -> u32 {
        let ram_words = (RAM_SIZE / 4) as usize;
        if key < ram_words {
            self.ram[key]
        } else {
            self.stack[key - ram_words]
        }
    }

    /// Copies one data word (and its stored parity bit) from `other`,
    /// addressed by dense index `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key >= NUM_DATA_WORDS`.
    pub(crate) fn copy_data_word_from(&mut self, other: &Memory, key: usize) {
        let ram_words = (RAM_SIZE / 4) as usize;
        if key < ram_words {
            self.ram[key] = other.ram[key];
            self.ram_parity[key] = other.ram_parity[key];
        } else {
            let k = key - ram_words;
            self.stack[k] = other.stack[k];
            self.stack_parity[k] = other.stack_parity[k];
        }
    }

    /// Dense word keys (see [`word_key`]) at which the data state of `self`
    /// and `other` differ. ROM and parity are excluded — parity is a pure
    /// function of the data words. The campaign layer uses this to
    /// precompute per-checkpoint write windows for the arena restore and
    /// the sparse convergence compare.
    #[must_use]
    pub fn data_diff_keys(&self, other: &Memory) -> Vec<u32> {
        let ram_words = self.ram.len();
        let ram = self
            .ram
            .iter()
            .zip(&other.ram)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(k, _)| k as u32);
        let stack = self
            .stack
            .iter()
            .zip(&other.stack)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(k, _)| (k + ram_words) as u32);
        ram.chain(stack).collect()
    }

    /// Bulk-copies the entire data state (RAM + stack + parity) from
    /// `other` without reallocating. ROM is untouched.
    pub(crate) fn copy_data_from(&mut self, other: &Memory) {
        self.ram.copy_from_slice(&other.ram);
        self.ram_parity.copy_from_slice(&other.ram_parity);
        self.stack.copy_from_slice(&other.stack);
        self.stack_parity.copy_from_slice(&other.stack_parity);
    }

    /// Absorbs the mutable data state (RAM and stack) into `h`. ROM is
    /// skipped — it is written only by program loading, never at run time —
    /// and the parity vectors are skipped because they are a pure function
    /// of the data words.
    pub(crate) fn digest_into(&self, h: &mut crate::digest::Fnv64) {
        h.write_u32_slice(&self.ram);
        h.write_u32_slice(&self.stack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_decoding() {
        assert_eq!(region(0x0000_0000), Region::Null);
        assert_eq!(region(0x0000_0FFF), Region::Null);
        assert_eq!(region(ROM_BASE), Region::Rom);
        assert_eq!(region(ROM_BASE + ROM_SIZE - 4), Region::Rom);
        assert_eq!(region(ROM_BASE + ROM_SIZE), Region::Unmapped);
        assert_eq!(region(RAM_BASE), Region::Ram);
        assert_eq!(region(STACK_BASE), Region::Stack);
        assert_eq!(region(0x0003_0000), Region::Unmapped);
        assert_eq!(region(0x8000_0000), Region::Bus);
        assert_eq!(region(0xFFFF_FFFC), Region::Bus);
    }

    #[test]
    fn parity_function() {
        assert!(!parity(0));
        assert!(parity(1));
        assert!(!parity(3));
        assert!(parity(0x8000_0000));
    }

    #[test]
    fn ram_roundtrip_with_parity() {
        let mut m = Memory::new();
        assert!(m.write_word(RAM_BASE + 8, 0xDEAD_BEEF));
        let (w, ok) = m.read_word(RAM_BASE + 8).unwrap();
        assert_eq!(w, 0xDEAD_BEEF);
        assert!(ok, "freshly written word has consistent parity");
    }

    #[test]
    fn stack_roundtrip() {
        let mut m = Memory::new();
        assert!(m.write_word(STACK_BASE + 0x100, 42));
        assert_eq!(m.read_word(STACK_BASE + 0x100).unwrap().0, 42);
    }

    #[test]
    fn misaligned_access_rejected() {
        let mut m = Memory::new();
        assert!(!m.write_word(RAM_BASE + 2, 1));
        assert!(m.read_word(RAM_BASE + 2).is_none());
        assert!(m.fetch(ROM_BASE + 1).is_none());
    }

    #[test]
    fn rom_fetch_and_protection() {
        let mut m = Memory::new();
        m.load_rom_word(ROM_BASE, 0x1234_5678);
        assert_eq!(m.fetch(ROM_BASE), Some(0x1234_5678));
        assert!(!m.write_word(ROM_BASE, 0), "ROM must not be data-writable");
        assert!(m.fetch(RAM_BASE).is_none(), "RAM is not fetchable");
    }

    #[test]
    #[should_panic(expected = "outside ROM")]
    fn rom_load_bounds_checked() {
        Memory::new().load_rom_word(RAM_BASE, 0);
    }

    #[test]
    fn data_equality() {
        let mut a = Memory::new();
        let b = Memory::new();
        assert!(a.data_equals(&b));
        a.write_word(RAM_BASE, 7);
        assert!(!a.data_equals(&b));
    }

    #[test]
    fn unmapped_reads_fail() {
        let m = Memory::new();
        assert!(m.read_word(0x0003_0000).is_none());
        assert!(m.read_word(0x9000_0000).is_none());
    }
}
